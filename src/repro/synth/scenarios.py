"""Canned traffic scenarios.

Reusable builders for the situations the examples and tests keep
constructing by hand: an IoT fleet on a firmware timer, a flash crowd
on one object, a URL-space scanner, a fleet with a rogue device.
Each returns time-sorted :class:`repro.synth.sessions.RequestEvent`
lists (or logs where noted) ready for `WorkloadBuilder.replay`-style
serving or direct analysis.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .clients import Client, ClientPopulation
from .domains import DomainProfile, Endpoint
from .periodic import PeriodicAgent, PeriodicObjectSpec
from .rng import substream
from .sessions import RequestEvent

__all__ = [
    "iot_fleet",
    "flash_crowd",
    "scanner_probe",
    "fleet_with_rogue",
]


def iot_fleet(
    domain: DomainProfile,
    endpoint: Endpoint,
    num_devices: int,
    period_s: float,
    duration_s: float,
    seed: int = 0,
    jitter_s: float = 0.25,
    drop_probability: float = 0.03,
    synchronized: bool = False,
) -> List[RequestEvent]:
    """A fleet of devices polling one endpoint on a firmware timer.

    ``synchronized=True`` gives every device the same phase (the
    thundering-herd configuration the phase analysis flags);
    otherwise phases are uniform.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    rng = substream(seed, "scenario", "iot")
    clients = ClientPopulation(
        num_devices, seed=seed, segment_mix={"embedded": 1.0}
    )
    spec = PeriodicObjectSpec(
        domain=domain,
        endpoint=endpoint,
        period_s=period_s,
        periodic_client_share=1.0,
    )
    shared_phase = rng.uniform(0, period_s)
    events: List[RequestEvent] = []
    for client in clients:
        agent = PeriodicAgent(
            client=client,
            spec=spec,
            phase_s=shared_phase if synchronized else rng.uniform(0, period_s),
            jitter_s=jitter_s,
            drop_probability=drop_probability,
            active_start=0.0,
            active_end=duration_s,
        )
        events.extend(agent.generate(rng))
    events.sort()
    return events


def flash_crowd(
    domain: DomainProfile,
    endpoint: Endpoint,
    num_requests: int,
    duration_s: float,
    seed: int = 0,
    num_clients: int = 300,
    ramp_fraction: float = 0.2,
) -> List[RequestEvent]:
    """A sudden crowd on one object: fast ramp, then sustained load.

    Arrival density ramps linearly over the first ``ramp_fraction``
    of the window and stays flat after — the breaking-news shape.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    rng = substream(seed, "scenario", "crowd")
    clients = ClientPopulation(
        num_clients, seed=seed, segment_mix={"mobile_app": 0.8,
                                             "mobile_browser": 0.2}
    ).clients
    ramp_end = duration_s * ramp_fraction
    events: List[RequestEvent] = []
    for _ in range(num_requests):
        # Inverse-CDF sample of the ramp-then-flat density.
        if rng.random() < ramp_fraction / (2 - ramp_fraction):
            timestamp = ramp_end * (rng.random() ** 0.5)
        else:
            timestamp = rng.uniform(ramp_end, duration_s)
        events.append(
            RequestEvent(timestamp, rng.choice(clients), domain, endpoint)
        )
    events.sort()
    return events


def scanner_probe(
    domain: DomainProfile,
    seed: int = 0,
    paths: Optional[Sequence[str]] = None,
    interval_s: float = 0.4,
) -> List[RequestEvent]:
    """A vulnerability scanner walking paths no app ever requests.

    Feed the resulting flow to
    :class:`repro.anomaly.SequenceAnomalyDetector` — every transition
    should score below threshold.
    """
    from ..logs.record import HttpMethod
    from .domains import EndpointKind

    rng = substream(seed, "scenario", "scanner")
    scanner = Client(
        ip_hash=f"{rng.getrandbits(64):016x}",
        user_agent="Mozilla/5.0 zgrab/0.x",
        segment="sdk",
        activity=1.0,
    )
    probe_paths = list(
        paths
        or (
            "/.env",
            "/wp-admin/setup.php",
            "/admin/login",
            "/.git/config",
            "/backup/db.sql",
            "/api/v1/../../etc/passwd",
            "/debug/vars",
            "/phpinfo.php",
        )
    )
    events: List[RequestEvent] = []
    now = 0.0
    for path in probe_paths:
        endpoint = Endpoint(
            url=path,
            kind=EndpointKind.CONTENT,
            method=HttpMethod.GET,
            cacheable=False,
            mime_type="application/json",
            median_bytes=300,
        )
        events.append(RequestEvent(now, scanner, domain, endpoint))
        now += rng.uniform(interval_s * 0.5, interval_s * 1.5)
    return events


def fleet_with_rogue(
    domain: DomainProfile,
    endpoint: Endpoint,
    num_devices: int,
    period_s: float,
    duration_s: float,
    rogue_speedup: float = 10.0,
    seed: int = 0,
) -> List[RequestEvent]:
    """A healthy timer fleet plus one device polling far too fast.

    The rogue is the last client in the stream's population; feed the
    events to :class:`repro.anomaly.PeriodicAnomalyMonitor` and it
    should be the only alert.
    """
    if rogue_speedup <= 1.0:
        raise ValueError("rogue_speedup must exceed 1")
    healthy = iot_fleet(
        domain, endpoint, num_devices, period_s, duration_s, seed=seed
    )
    rng = substream(seed, "scenario", "rogue")
    rogue_client = Client(
        ip_hash=f"{rng.getrandbits(64):016x}",
        user_agent="ESP8266HTTPClient/1.2.0",
        segment="embedded",
        activity=1.0,
    )
    spec = PeriodicObjectSpec(domain, endpoint, period_s / rogue_speedup, 1.0)
    agent = PeriodicAgent(
        client=rogue_client,
        spec=spec,
        phase_s=rng.uniform(0, period_s / rogue_speedup),
        jitter_s=0.1,
        drop_probability=0.0,
        active_start=0.0,
        active_end=duration_s,
    )
    events = healthy + agent.generate(rng)
    events.sort()
    return events
