"""Dataset self-validation against the paper's calibration targets.

Anyone regenerating datasets with custom knobs needs to know whether
the result still matches the paper's aggregates before trusting
downstream analyses.  :func:`validate_dataset` measures every §4
marginal on a built dataset and reports each against its
:class:`repro.synth.calibration.PaperTargets` value with a tolerance
and verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .calibration import PAPER, PaperTargets
from .workload import Dataset

__all__ = ["CalibrationCheck", "ValidationReport", "validate_dataset"]


@dataclass(frozen=True)
class CalibrationCheck:
    """One target vs measured comparison."""

    name: str
    target: float
    measured: float
    tolerance: float

    @property
    def deviation(self) -> float:
        return abs(self.measured - self.target)

    @property
    def passed(self) -> bool:
        return self.deviation <= self.tolerance

    def render(self) -> str:
        verdict = "ok  " if self.passed else "FAIL"
        return (
            f"[{verdict}] {self.name:38s} target {self.target:7.3f}  "
            f"measured {self.measured:7.3f}  (±{self.tolerance:.3f})"
        )


@dataclass
class ValidationReport:
    """All calibration checks for one dataset."""

    checks: List[CalibrationCheck]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[CalibrationCheck]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        lines = [check.render() for check in self.checks]
        lines.append(
            f"{sum(c.passed for c in self.checks)}/{len(self.checks)} "
            "calibration checks passed"
        )
        return "\n".join(lines)


def validate_dataset(
    dataset: Dataset,
    targets: Optional[PaperTargets] = None,
) -> ValidationReport:
    """Measure a dataset's §4 marginals against the paper targets.

    Tolerances are scale-aware defaults: wide enough for the sampling
    noise of ~50k-request datasets, tight enough to catch a
    mis-tuned knob.
    """
    # Imported lazily: repro.analysis depends on repro.synth for the
    # trend types, so a module-level import here would be circular.
    from ..analysis.cacheability import analyze_cacheability
    from ..analysis.characterize import characterize
    from ..analysis.trend import snapshot_ratio

    targets = targets or PAPER
    json_logs = [record for record in dataset.logs if record.is_json]
    source, request_type = characterize(json_logs, json_only=False)
    cache_stats, heatmap = analyze_cacheability(json_logs, json_only=False)
    device_shares = source.device_shares()

    checks: List[CalibrationCheck] = [
        CalibrationCheck(
            "device share: mobile",
            targets.device_mix["mobile"],
            device_shares.get("mobile", 0.0),
            0.05,
        ),
        CalibrationCheck(
            "device share: embedded",
            targets.device_mix["embedded"],
            device_shares.get("embedded", 0.0),
            0.04,
        ),
        CalibrationCheck(
            "device share: desktop",
            targets.device_mix["desktop"],
            device_shares.get("desktop", 0.0),
            0.04,
        ),
        CalibrationCheck(
            "device share: unknown",
            targets.device_mix["unknown"],
            device_shares.get("unknown", 0.0),
            0.05,
        ),
        CalibrationCheck(
            "non-browser fraction",
            targets.non_browser_fraction,
            source.non_browser_fraction,
            0.04,
        ),
        CalibrationCheck(
            "mobile-browser fraction",
            targets.mobile_browser_fraction,
            source.mobile_browser_fraction,
            0.02,
        ),
        CalibrationCheck(
            "GET fraction",
            targets.get_fraction,
            request_type.get_fraction,
            0.06,
        ),
        CalibrationCheck(
            "POST share of non-GET",
            targets.post_share_of_non_get,
            request_type.post_share_of_non_get,
            0.08,
        ),
        CalibrationCheck(
            "uncacheable JSON fraction",
            targets.uncacheable_fraction,
            cache_stats.uncacheable_fraction,
            0.09,
        ),
        CalibrationCheck(
            "never-cacheable domains",
            targets.domains_never_cacheable,
            heatmap.never_cacheable_share(),
            0.10,
        ),
        CalibrationCheck(
            "always-cacheable domains",
            targets.domains_always_cacheable,
            heatmap.always_cacheable_share(),
            0.10,
        ),
        CalibrationCheck(
            "planted periodic fraction",
            targets.periodic_request_fraction,
            dataset.ground_truth.periodic_fraction,
            0.02,
        ),
    ]
    ratio = snapshot_ratio(dataset.logs)
    if ratio != float("inf"):
        checks.append(
            CalibrationCheck(
                "JSON:HTML snapshot ratio",
                targets.json_html_ratio_2019,
                ratio,
                1.8,
            )
        )
    return ValidationReport(checks=checks)
