"""Geographic regions for multi-POP datasets.

The paper's limitations section calls for "longer datasets covering
more regions in order to explore geographic and temporal differences
in JSON traffic patterns" (§7).  This module supplies the geographic
axis: a region carries a timezone offset (which phases the diurnal
human-activity curve) and a share of the client population.  Edges
belong to regions; clients are served by an edge in their own region,
as CDN request routing does.

Enable by passing ``regions=DEFAULT_REGIONS`` (or your own) to
:class:`repro.synth.workload.WorkloadConfig`; single-region datasets
(the paper's long-term Seattle capture) simply omit it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Region", "DEFAULT_REGIONS", "assign_regions"]


@dataclass(frozen=True)
class Region:
    """One geographic service region."""

    name: str
    #: Offset of local time from the dataset clock, in hours.  The
    #: diurnal human-activity curve peaks in local evening, so two
    #: regions 9 timezones apart peak ~9 hours apart in dataset time.
    utc_offset_h: float
    #: Share of the client population homed here.
    client_share: float
    #: Edge machines deployed in this region's POPs.
    num_edges: int = 2

    def local_hour(self, timestamp: float, epoch: float) -> float:
        """Local hour-of-day for a dataset timestamp."""
        hours = (timestamp - epoch) / 3600.0 + self.utc_offset_h
        return hours % 24.0


#: A four-region deployment roughly mirroring global CDN traffic
#: distribution.
DEFAULT_REGIONS: Tuple[Region, ...] = (
    Region("na", utc_offset_h=-6.0, client_share=0.35, num_edges=3),
    Region("eu", utc_offset_h=+1.0, client_share=0.30, num_edges=3),
    Region("apac", utc_offset_h=+8.0, client_share=0.25, num_edges=2),
    Region("sa", utc_offset_h=-3.0, client_share=0.10, num_edges=1),
)


def assign_regions(
    rng, count: int, regions: Sequence[Region]
) -> List[Region]:
    """Assign clients to regions with exact-count quota sampling.

    Exact largest-remainder counts (not i.i.d. draws) keep regional
    traffic shares pinned at small population sizes, then a shuffle
    decorrelates region from every other client attribute.
    """
    if not regions:
        raise ValueError("regions must be non-empty")
    total_share = sum(region.client_share for region in regions)
    exact = [region.client_share / total_share * count for region in regions]
    counts = [int(value) for value in exact]
    leftovers = sorted(
        range(len(regions)), key=lambda i: exact[i] - counts[i], reverse=True
    )
    for index in leftovers[: count - sum(counts)]:
        counts[index] += 1
    pool: List[Region] = []
    for region, number in zip(regions, counts):
        pool.extend([region] * number)
    rng.shuffle(pool)
    return pool
