"""Periodic machine-to-machine traffic.

§5.1 finds 6.3% of JSON requests periodic, with period spikes on the
even timer grid (30s, 1m, 2m, 3m, 10m, 15m, 30m), and that for >20%
of periodic objects the majority of clients share the object's
period — the fingerprint of hardcoded poll intervals in app code and
device firmware.

This module generates exactly that mechanism: a *periodic object* is
an endpoint with a designed poll interval; a *periodic agent* is a
(client, object) pair firing on that timer with realistic impairments:

* random phase offset (devices don't boot simultaneously),
* per-request network jitter,
* occasional missed polls (sleep, connectivity loss),
* bounded duty cycles for foreground-app timers (a 30s poll runs
  while the app is open, not all day) vs all-day duty for
  IoT/infrastructure timers.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .clients import Client
from .domains import DomainProfile, Endpoint
from .sessions import RequestEvent

__all__ = ["PeriodicObjectSpec", "PeriodicAgent", "CANONICAL_PERIODS"]

#: The even timer grid of Figure 5 (seconds) and its sampling weights:
#: short foreground-app timers are common, long infrastructure timers
#: somewhat less so.
CANONICAL_PERIODS: Sequence[Tuple[float, float]] = (
    (30.0, 0.22),
    (60.0, 0.24),
    (120.0, 0.14),
    (180.0, 0.10),
    (600.0, 0.12),
    (900.0, 0.10),
    (1800.0, 0.08),
)


@dataclass(frozen=True)
class PeriodicObjectSpec:
    """A JSON object that machine agents poll on a fixed interval.

    Attributes
    ----------
    domain, endpoint:
        The polled object.
    period_s:
        The designed poll interval (the object's "intended" period).
    periodic_client_share:
        Fraction of this object's clients that actually poll on the
        timer; the rest touch the object sporadically
        (human-triggered refreshes), which is what makes Figure 6 a
        distribution instead of a vertical line.
    """

    domain: DomainProfile
    endpoint: Endpoint
    period_s: float
    periodic_client_share: float

    @property
    def object_id(self) -> str:
        return f"{self.domain.name}{self.endpoint.url}"


@dataclass(frozen=True)
class PeriodicAgent:
    """One (client, periodic object) timer loop."""

    client: Client
    spec: PeriodicObjectSpec
    #: Uniform phase offset within one period.
    phase_s: float
    #: Std-dev of per-request timing jitter (network + scheduler).
    jitter_s: float
    #: Probability any single poll is skipped.
    drop_probability: float
    #: Active window within the dataset (duty cycle).
    active_start: float
    active_end: float

    def generate(self, rng: random.Random) -> List[RequestEvent]:
        """Emit the agent's request events over its active window."""
        events: List[RequestEvent] = []
        period = self.spec.period_s
        tick = self.active_start + self.phase_s
        while tick < self.active_end:
            if rng.random() >= self.drop_probability:
                timestamp = tick + rng.gauss(0.0, self.jitter_s)
                if self.active_start <= timestamp < self.active_end:
                    events.append(
                        RequestEvent(
                            timestamp, self.client, self.spec.domain, self.spec.endpoint
                        )
                    )
            tick += period
        return events

    @property
    def expected_requests(self) -> float:
        window = max(0.0, self.active_end - self.active_start)
        return (window / self.spec.period_s) * (1.0 - self.drop_probability)


def choose_period(rng: random.Random) -> float:
    """Draw one canonical timer period."""
    periods = [period for period, _ in CANONICAL_PERIODS]
    weights = [weight for _, weight in CANONICAL_PERIODS]
    return rng.choices(periods, weights=weights, k=1)[0]


def choose_periodic_share(
    rng: random.Random,
    majority_share: float = 0.25,
    majority: Optional[bool] = None,
) -> float:
    """Draw an object's periodic-client share.

    A two-component mixture: ``majority_share`` of objects are
    firmware-style (almost every client on the timer, share ~
    U(0.70, 0.98)); the rest are app-style where background refresh is
    one feature among many (share ~ U(0.05, 0.50)).  This shapes the
    Figure 6 CDF so ~20% of periodic objects retain a >50% periodic
    majority *after* detection losses (per-client detection is not
    perfect, so the planted majority band sits above 0.5 with margin).
    Pass ``majority`` to force the component — the workload builder
    quota-schedules it because datasets plant only a few dozen
    periodic objects and a Bernoulli draw would make the Figure 6
    majority fraction swing wildly between seeds.
    """
    if majority is None:
        majority = rng.random() < majority_share
    if majority:
        return rng.uniform(0.70, 0.98)
    return rng.uniform(0.05, 0.50)


def agent_duty_window(
    rng: random.Random,
    period_s: float,
    window_start: float,
    window_end: float,
    min_requests: int = 12,
) -> Tuple[float, float]:
    """Pick an agent's active window inside the dataset window.

    Foreground-app timers (short periods) are active for a bounded
    session; infrastructure timers (>= 10 min periods) run the whole
    window.  The duty length is floored so each client-object flow
    clears the §5.1 ten-request filter.
    """
    total = window_end - window_start
    min_duration = period_s * (min_requests + 2)
    if period_s >= 600.0:
        # Infrastructure timers: long duty (median ~6 h) bounded by
        # reboots, sleep schedules, and connectivity.
        duration = rng.lognormvariate(math.log(6 * 3600.0), 0.5)
    else:
        # Foreground-app timers: duty is one app session (median ~30 min).
        duration = rng.lognormvariate(math.log(1800.0), 0.6)
    duration = min(total, max(min_duration, duration))
    latest_start = max(window_start, window_end - duration)
    start = rng.uniform(window_start, latest_start)
    return start, min(window_end, start + duration)
