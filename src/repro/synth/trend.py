"""Multi-year content-type trend model (Figure 1).

Figure 1 plots the ratio of JSON to HTML requests on the CDN from
2016 through 2019, reaching >4x at the end of the observation period.
The underlying mechanism the paper describes is the migration of
applications from server-rendered HTML to API-backed clients (§2.2):
HTML volume grows slowly with overall Internet growth while JSON
volume compounds much faster.

The model emits monthly request volumes per content type; the
analysis side (:mod:`repro.analysis.trend`) computes the ratio series
exactly as it would from yearly log aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from .rng import substream

__all__ = ["MonthlyVolume", "TrendModel"]


@dataclass(frozen=True)
class MonthlyVolume:
    """Aggregate request counts for one month."""

    year: int
    month: int
    counts: Mapping[str, int]

    @property
    def label(self) -> str:
        return f"{self.year}-{self.month:02d}"

    def ratio(self, numerator: str, denominator: str) -> float:
        bottom = self.counts.get(denominator, 0)
        if bottom == 0:
            return math.inf
        return self.counts.get(numerator, 0) / bottom


class TrendModel:
    """Monthly content-type volumes, 2016-01 through mid-2019.

    Parameters
    ----------
    seed:
        Dataset seed (adds realistic month-to-month noise).
    base_monthly_requests:
        HTML request volume in the first month; everything else is
        relative to it.
    json_start_ratio:
        JSON:HTML ratio at the start of the window (paper's Figure 1
        starts near parity).
    json_end_ratio:
        Target ratio at the end of the window (>4x).
    """

    CONTENT_TYPES: Sequence[str] = (
        "application/json",
        "text/html",
        "text/css",
        "application/javascript",
        "image/jpeg",
    )

    def __init__(
        self,
        seed: int = 0,
        base_monthly_requests: int = 1_000_000,
        json_start_ratio: float = 0.9,
        json_end_ratio: float = 4.3,
        start: Tuple[int, int] = (2016, 1),
        end: Tuple[int, int] = (2019, 6),
    ) -> None:
        if json_start_ratio <= 0 or json_end_ratio <= json_start_ratio:
            raise ValueError("need 0 < json_start_ratio < json_end_ratio")
        self._rng = substream(seed, "trend")
        self._base = base_monthly_requests
        self._start_ratio = json_start_ratio
        self._end_ratio = json_end_ratio
        self._start = start
        self._end = end

    # -- model ------------------------------------------------------------

    def months(self) -> List[Tuple[int, int]]:
        """All (year, month) pairs in the window, inclusive."""
        out: List[Tuple[int, int]] = []
        year, month = self._start
        while (year, month) <= self._end:
            out.append((year, month))
            month += 1
            if month > 12:
                year, month = year + 1, 1
        return out

    def series(self) -> List[MonthlyVolume]:
        """The full monthly volume series with sampling noise."""
        months = self.months()
        horizon = len(months) - 1
        volumes: List[MonthlyVolume] = []
        for index, (year, month) in enumerate(months):
            progress = index / horizon if horizon else 1.0
            # HTML grows slowly (~10%/yr); JSON's ratio compounds
            # geometrically from start_ratio to end_ratio.
            html = self._base * (1.10 ** (index / 12.0))
            ratio = self._start_ratio * (
                (self._end_ratio / self._start_ratio) ** progress
            )
            json_volume = html * ratio
            noise = lambda: self._rng.uniform(0.96, 1.04)
            counts: Dict[str, int] = {
                "application/json": int(json_volume * noise()),
                "text/html": int(html * noise()),
                "text/css": int(html * 0.8 * noise()),
                "application/javascript": int(html * 1.5 * noise()),
                "image/jpeg": int(html * 2.5 * noise()),
            }
            volumes.append(MonthlyVolume(year=year, month=month, counts=counts))
        return volumes

    def ratio_series(self) -> List[Tuple[str, float]]:
        """(month label, JSON:HTML ratio) pairs — the Figure 1 line."""
        return [
            (volume.label, volume.ratio("application/json", "text/html"))
            for volume in self.series()
        ]
