"""Customer-domain population model.

CDN customers differ along exactly the axes the paper measures:
industry category (Figure 4), per-object cacheability policy, API
shape (manifest/content/telemetry endpoints), and popularity.  This
module builds a reproducible population of
:class:`DomainProfile` objects embodying those axes.

Calibration (see :mod:`repro.synth.calibration`):

* ~50% of domains never cache, ~30% always cache, the rest are mixed
  (§4: "nearly 50% of domains serve content that is never cacheable
  and another 30% serve content that is always cacheable").
* Financial Services, Streaming, and Gaming skew heavily uncacheable
  (one-time-use / personalized content); News/Media, Sports, and
  Entertainment skew cacheable (static content).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.taxonomy import IndustryCategory
from ..logs.record import HttpMethod
from .rng import substream, weighted_choice, zipf_weights

__all__ = [
    "CachePolicyKind",
    "CachePolicy",
    "EndpointKind",
    "Endpoint",
    "DomainProfile",
    "DomainPopulation",
    "CATEGORY_POLICY_MIX",
    "CATEGORY_DOMAIN_SHARE",
]


class CachePolicyKind(str, enum.Enum):
    """Domain-level cacheability configuration classes."""

    ALWAYS = "always"
    NEVER = "never"
    MIXED = "mixed"


@dataclass(frozen=True)
class CachePolicy:
    """Customer cache configuration for one domain.

    ``mixed_uncacheable_share`` only matters for MIXED domains: the
    fraction of the domain's objects marked no-store.
    """

    kind: CachePolicyKind
    ttl_seconds: float = 300.0
    mixed_uncacheable_share: float = 0.30

    def object_cacheable(self, object_url: str) -> bool:
        """Stable per-object cacheability decision.

        MIXED domains decide per object via a hash of the URL so the
        decision is stable across the dataset without carrying state.
        """
        if self.kind is CachePolicyKind.ALWAYS:
            return True
        if self.kind is CachePolicyKind.NEVER:
            return False
        digest = hashlib.md5(object_url.encode("utf-8")).digest()
        return (digest[0] / 255.0) >= self.mixed_uncacheable_share


class EndpointKind(str, enum.Enum):
    """Functional role of an API endpoint.

    The kinds drive request method, response size, cacheability and —
    crucially for §5 — the access pattern: MANIFEST/CONTENT form the
    session graph, TELEMETRY/POLL carry the periodic machine traffic.
    """

    MANIFEST = "manifest"
    CONTENT = "content"
    SEARCH = "search"
    CONFIG = "config"
    TELEMETRY = "telemetry"
    POLL = "poll"
    PAGE = "page"  # text/html document (browser traffic)


@dataclass(frozen=True)
class Endpoint:
    """One concrete requestable object on a domain."""

    url: str
    kind: EndpointKind
    method: HttpMethod
    cacheable: bool
    mime_type: str = "application/json"
    #: Median response size in bytes (lognormal jitter applied later).
    median_bytes: int = 2_000


#: Per-category (never, always, mixed) policy probabilities, chosen so
#: the population-weighted averages land on the paper's 50/30/20 split
#: while preserving the per-industry story of Figure 4.
CATEGORY_POLICY_MIX: Mapping[IndustryCategory, Tuple[float, float, float]] = {
    IndustryCategory.NEWS_MEDIA: (0.10, 0.75, 0.15),
    IndustryCategory.SPORTS: (0.15, 0.70, 0.15),
    IndustryCategory.ENTERTAINMENT: (0.15, 0.65, 0.20),
    IndustryCategory.FINANCIAL: (0.90, 0.02, 0.08),
    IndustryCategory.STREAMING: (0.80, 0.05, 0.15),
    IndustryCategory.GAMING: (0.80, 0.05, 0.15),
    IndustryCategory.ECOMMERCE: (0.55, 0.15, 0.30),
    IndustryCategory.SOCIAL: (0.70, 0.10, 0.20),
    IndustryCategory.TECHNOLOGY: (0.40, 0.35, 0.25),
    IndustryCategory.TRAVEL: (0.50, 0.25, 0.25),
    IndustryCategory.ADVERTISING: (0.60, 0.15, 0.25),
}

#: Share of the domain population per category.
CATEGORY_DOMAIN_SHARE: Mapping[IndustryCategory, float] = {
    IndustryCategory.NEWS_MEDIA: 0.12,
    IndustryCategory.SPORTS: 0.08,
    IndustryCategory.ENTERTAINMENT: 0.10,
    IndustryCategory.FINANCIAL: 0.10,
    IndustryCategory.STREAMING: 0.08,
    IndustryCategory.GAMING: 0.10,
    IndustryCategory.ECOMMERCE: 0.12,
    IndustryCategory.SOCIAL: 0.06,
    IndustryCategory.TECHNOLOGY: 0.14,
    IndustryCategory.TRAVEL: 0.05,
    IndustryCategory.ADVERTISING: 0.05,
}

_NAME_PREFIXES = [
    "fast", "bright", "nova", "apex", "blue", "prime", "pulse", "swift",
    "meta", "hyper", "core", "vivid", "solid", "urban", "astro", "zen",
]
_NAME_STEMS: Mapping[IndustryCategory, Sequence[str]] = {
    IndustryCategory.NEWS_MEDIA: ("news", "press", "wire", "daily"),
    IndustryCategory.SPORTS: ("score", "league", "match", "sport"),
    IndustryCategory.ENTERTAINMENT: ("show", "cinema", "fun", "clips"),
    IndustryCategory.FINANCIAL: ("bank", "pay", "trade", "ledger"),
    IndustryCategory.STREAMING: ("stream", "video", "tube", "play"),
    IndustryCategory.GAMING: ("game", "quest", "arena", "pixel"),
    IndustryCategory.ECOMMERCE: ("shop", "cart", "market", "deal"),
    IndustryCategory.SOCIAL: ("social", "chat", "friend", "feed"),
    IndustryCategory.TECHNOLOGY: ("cloud", "dev", "stack", "api"),
    IndustryCategory.TRAVEL: ("trip", "fly", "hotel", "tour"),
    IndustryCategory.ADVERTISING: ("ads", "track", "metric", "pixel"),
}

#: Median response bytes by endpoint kind.  The JSON mix is size-
#: calibrated so aggregate JSON quantiles sit well below HTML's, with
#: an especially light upper tail (§4: 24% / 87% smaller at p50/p75).
_KIND_MEDIAN_BYTES: Mapping[EndpointKind, int] = {
    EndpointKind.MANIFEST: 9_000,
    EndpointKind.CONTENT: 12_000,
    EndpointKind.SEARCH: 5_000,
    EndpointKind.CONFIG: 2_500,
    EndpointKind.TELEMETRY: 250,
    EndpointKind.POLL: 1_100,
    EndpointKind.PAGE: 30_000,
}


@dataclass(frozen=True)
class DomainProfile:
    """One CDN customer domain and its API surface."""

    name: str
    category: IndustryCategory
    policy: CachePolicy
    popularity: float
    manifests: Tuple[Endpoint, ...]
    contents: Tuple[Endpoint, ...]
    searches: Tuple[Endpoint, ...]
    configs: Tuple[Endpoint, ...]
    telemetry: Tuple[Endpoint, ...]
    polls: Tuple[Endpoint, ...]
    pages: Tuple[Endpoint, ...]

    @property
    def json_endpoints(self) -> Tuple[Endpoint, ...]:
        return (
            self.manifests
            + self.contents
            + self.searches
            + self.configs
            + self.telemetry
            + self.polls
        )

    @property
    def periodic_endpoints(self) -> Tuple[Endpoint, ...]:
        """Endpoints that machine agents hit on timers (§5.1)."""
        return self.telemetry + self.polls


def _make_endpoint(
    domain: str,
    url: str,
    kind: EndpointKind,
    method: HttpMethod,
    policy: CachePolicy,
    mime_type: str = "application/json",
    cacheable_override: Optional[bool] = None,
) -> Endpoint:
    cacheable = (
        cacheable_override
        if cacheable_override is not None
        else policy.object_cacheable(f"{domain}{url}")
    )
    return Endpoint(
        url=url,
        kind=kind,
        method=method,
        cacheable=cacheable,
        mime_type=mime_type,
        median_bytes=_KIND_MEDIAN_BYTES[kind],
    )


class DomainPopulation:
    """A reproducible population of customer domains.

    Parameters
    ----------
    num_domains:
        Population size (~5K short-term, ~170 long-term in the paper).
    seed:
        Dataset seed; all draws derive from it.
    zipf_exponent:
        Skew of domain popularity (traffic share).
    """

    def __init__(
        self,
        num_domains: int,
        seed: int = 0,
        zipf_exponent: float = 0.55,
    ) -> None:
        if num_domains <= 0:
            raise ValueError("num_domains must be positive")
        self.seed = seed
        rng = substream(seed, "domains")
        categories = list(CATEGORY_DOMAIN_SHARE)
        category_weights = [CATEGORY_DOMAIN_SHARE[c] for c in categories]
        popularity = zipf_weights(num_domains, zipf_exponent)
        # Cap single-domain traffic share: the population here is a
        # small sample of a CDN's customer base, and letting one
        # sampled domain carry >3x the average share makes every
        # traffic-weighted marginal hostage to that domain's random
        # policy draw.
        ceiling = 3.0 / num_domains
        popularity = [min(weight, ceiling) for weight in popularity]
        total_weight = sum(popularity)
        popularity = [weight / total_weight for weight in popularity]
        # Shuffle popularity ranks so popularity is independent of
        # category/policy — keeps the request-level cacheability near
        # its analytic expectation.
        rng.shuffle(popularity)

        chosen_categories = [
            weighted_choice(rng, categories, category_weights)
            for _ in range(num_domains)
        ]
        policy_kinds = self._assign_policies(rng, chosen_categories, popularity)
        self.domains: List[DomainProfile] = []
        used_names: set = set()
        for index in range(num_domains):
            self.domains.append(
                self._build_domain(
                    rng,
                    index,
                    chosen_categories[index],
                    policy_kinds[index],
                    popularity[index],
                    used_names,
                )
            )

    @staticmethod
    def _assign_policies(
        rng,
        categories: List[IndustryCategory],
        popularity: List[float],
    ) -> List[CachePolicyKind]:
        """Count- and weight-balanced policy assignment.

        Two constraints, both of which an i.i.d. per-domain draw
        violates at small population sizes:

        * each category keeps *exactly* its designed policy counts
          (largest-remainder rounding of CATEGORY_POLICY_MIX) — this
          pins the Figure 4 heatmap and its 50/30/20 marginals;
        * the *popularity-weighted* policy shares track the count
          shares — this pins the request-level ~55% uncacheable
          fraction, which would otherwise swing ±10pp with the random
          policies of a few heavy domains.

        Domains are processed in descending popularity; each takes,
        among policy kinds its category still has quota for, the kind
        whose weighted share lags its target the most.
        """
        kinds: List[Optional[CachePolicyKind]] = [None] * len(categories)
        by_category: Dict[IndustryCategory, List[int]] = {}
        for index, category in enumerate(categories):
            by_category.setdefault(category, []).append(index)
        policy_order = (
            CachePolicyKind.NEVER,
            CachePolicyKind.ALWAYS,
            CachePolicyKind.MIXED,
        )

        remaining: Dict[IndustryCategory, Dict[CachePolicyKind, int]] = {}
        total_counts = {kind: 0 for kind in policy_order}
        for category, members in by_category.items():
            shares = CATEGORY_POLICY_MIX[category]
            exact = [share * len(members) for share in shares]
            counts = [int(value) for value in exact]
            leftovers = sorted(
                range(3), key=lambda i: exact[i] - counts[i], reverse=True
            )
            for i in leftovers[: len(members) - sum(counts)]:
                counts[i] += 1
            remaining[category] = dict(zip(policy_order, counts))
            for kind, count in zip(policy_order, counts):
                total_counts[kind] += count

        total = len(categories)
        targets = {kind: total_counts[kind] / total for kind in policy_order}
        assigned_weight = {kind: 0.0 for kind in policy_order}
        processed_weight = 0.0
        order = sorted(
            range(total), key=lambda i: popularity[i], reverse=True
        )
        for index in order:
            category = categories[index]
            weight = popularity[index]
            processed_weight += weight
            available = [
                kind for kind in policy_order if remaining[category][kind] > 0
            ]
            kind = max(
                available,
                key=lambda k: targets[k] * processed_weight - assigned_weight[k],
            )
            remaining[category][kind] -= 1
            assigned_weight[kind] += weight
            kinds[index] = kind
        return kinds  # type: ignore[return-value]

    def _build_domain(
        self,
        rng,
        index: int,
        category: IndustryCategory,
        kind: CachePolicyKind,
        popularity: float,
        used_names: set,
    ) -> DomainProfile:
        name = self._domain_name(rng, index, category, used_names)
        ttl = rng.choice([60.0, 120.0, 300.0, 600.0, 3600.0])
        policy = CachePolicy(kind=kind, ttl_seconds=ttl)

        version = rng.choice([1, 1, 2, 2, 3])
        base = f"/api/v{version}"

        manifests = tuple(
            _make_endpoint(name, url, EndpointKind.MANIFEST, HttpMethod.GET, policy)
            for url in (
                f"{base}/home",
                *(f"{base}/stories?page={page}" for page in range(1, rng.randint(2, 5))),
            )
        )
        num_contents = max(10, int(rng.lognormvariate(3.6, 0.8)))
        contents = tuple(
            _make_endpoint(
                name,
                f"{base}/item/{item_id}",
                EndpointKind.CONTENT,
                HttpMethod.GET,
                policy,
            )
            for item_id in self._content_ids(rng, num_contents)
        )
        searches = tuple(
            _make_endpoint(
                name,
                f"{base}/search?q={term}",
                EndpointKind.SEARCH,
                HttpMethod.GET,
                policy,
            )
            for term in ("trending", "latest", "popular")[: rng.randint(1, 3)]
        )
        configs = (
            _make_endpoint(
                name, f"{base}/config", EndpointKind.CONFIG, HttpMethod.GET, policy
            ),
        )
        # Telemetry uploads: mostly POST; cacheability of the (ack)
        # response follows customer policy like any other object, so
        # periodic traffic ends up partially cacheable as observed
        # (56.2% of it uncacheable, §5.1).
        telemetry = tuple(
            _make_endpoint(
                name,
                f"{base}/{suffix}",
                EndpointKind.TELEMETRY,
                HttpMethod.POST,
                policy,
            )
            for suffix in ("telemetry", "events/batch")[: rng.randint(1, 2)]
        )
        polls = tuple(
            _make_endpoint(
                name, f"{base}/{suffix}", EndpointKind.POLL, HttpMethod.GET, policy
            )
            for suffix in ("poll", "notifications", "scores/live")[: rng.randint(1, 3)]
        )
        pages = tuple(
            _make_endpoint(
                name,
                url,
                EndpointKind.PAGE,
                HttpMethod.GET,
                policy,
                mime_type="text/html",
            )
            for url in ("/", "/section/top", "/section/local")[: rng.randint(1, 3)]
        )
        return DomainProfile(
            name=name,
            category=category,
            policy=policy,
            popularity=popularity,
            manifests=manifests,
            contents=contents,
            searches=searches,
            configs=configs,
            telemetry=telemetry,
            polls=polls,
            pages=pages,
        )

    @staticmethod
    def _content_ids(rng, count: int) -> List[int]:
        """Realistic-looking sparse numeric object ids."""
        start = rng.randint(1_000, 900_000)
        ids: List[int] = []
        current = start
        for _ in range(count):
            current += rng.randint(1, 97)
            ids.append(current)
        return ids

    @staticmethod
    def _domain_name(rng, index: int, category: IndustryCategory, used: set) -> str:
        for _ in range(20):
            prefix = rng.choice(_NAME_PREFIXES)
            stem = rng.choice(_NAME_STEMS[category])
            candidate = f"{prefix}{stem}.example.com"
            if candidate not in used:
                used.add(candidate)
                return candidate
        candidate = f"customer-{index:05d}.example.com"
        used.add(candidate)
        return candidate

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.domains)

    def __iter__(self):
        return iter(self.domains)

    def popularity_weights(self) -> List[float]:
        total = sum(domain.popularity for domain in self.domains)
        return [domain.popularity / total for domain in self.domains]

    def policy_kind_shares(self) -> Dict[CachePolicyKind, float]:
        """Domain-level policy mix (the Figure 4 marginals)."""
        counts: Dict[CachePolicyKind, int] = {kind: 0 for kind in CachePolicyKind}
        for domain in self.domains:
            counts[domain.policy.kind] += 1
        return {kind: counts[kind] / len(self.domains) for kind in CachePolicyKind}

    def by_category(self) -> Dict[IndustryCategory, List[DomainProfile]]:
        grouped: Dict[IndustryCategory, List[DomainProfile]] = {}
        for domain in self.domains:
            grouped.setdefault(domain.category, []).append(domain)
        return grouped
