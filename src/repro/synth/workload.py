"""Dataset builders: the stand-ins for the paper's two log collections.

Table 2 defines the datasets: a *short-term* capture (10 minutes,
whole network, ~5K domains) used for characterization (§4), and a
*long-term* capture (24 hours, one metro's edges, ~170 domains) used
for pattern mining (§5).  :func:`short_term_config` and
:func:`long_term_config` reproduce those shapes at laptop scale; the
absolute request counts are a knob because every analysis here is a
fraction or a distribution, not an absolute count.

Build pipeline::

    populations (domains, clients)
        → request events (sessions + periodic agents + sporadic flows)
        → time-sorted replay through simulated edge servers
        → RequestLog dataset + generation ground truth

Ground truth (which flows were truly periodic, each object's designed
period) is kept alongside the logs so detector tests can score
against *known* answers, something the paper could not do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cdn.cache import LruTtlCache
from ..cdn.edge import EdgeServer, ServedRequest
from ..cdn.network import LatencyModel
from ..cdn.origin import OriginFleet
from ..logs.record import RequestLog
from .clients import Client, ClientPopulation
from .domains import DomainPopulation, DomainProfile, Endpoint
from .periodic import (
    PeriodicAgent,
    PeriodicObjectSpec,
    agent_duty_window,
    choose_period,
    choose_periodic_share,
)
from .regions import Region
from .rng import substream, zipf_weights
from .sessions import RequestEvent, SessionConfig, SessionGenerator
from .sizes import SizeModel

__all__ = [
    "WorkloadConfig",
    "GroundTruth",
    "Dataset",
    "WorkloadBuilder",
    "short_term_config",
    "long_term_config",
    "EPOCH_2019",
]

#: 2019-06-01 00:00:00 UTC — the datasets' nominal capture epoch.
EPOCH_2019 = 1_559_347_200.0


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic dataset.

    ``total_requests`` targets the number of **JSON** requests, since
    the paper's datasets are JSON-filtered log collections ("35
    million JSON requests", §1).  Browser traffic adds HTML and
    static-asset logs on top of the JSON budget.
    """

    total_requests: int
    duration_s: float
    num_domains: int
    num_clients: int
    seed: int = 0
    #: Target share of requests from periodic machine agents (§5.1).
    periodic_fraction: float = 0.063
    num_edges: int = 4
    start_time: float = EPOCH_2019
    session: SessionConfig = field(default_factory=SessionConfig)
    #: Apply a diurnal human-activity curve (day-long datasets only).
    diurnal: bool = False
    cache_capacity_bytes: int = 1 << 30
    #: Geographic regions (see :mod:`repro.synth.regions`).  None is
    #: a single implicit region (the paper's long-term Seattle
    #: capture); a tuple of regions gives each its own edges and
    #: phases the diurnal curve by local time.
    regions: Optional[Tuple["Region", ...]] = None

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration_s


def short_term_config(
    total_requests: int = 250_000, seed: int = 0, **overrides
) -> WorkloadConfig:
    """The short-term dataset shape: 10 minutes, wide domain coverage.

    Paper scale is 25M logs over ~5K domains; default reproduction
    scale is 250K logs over 1,200 domains (same logs-per-domain
    order).
    """
    num_domains = overrides.pop("num_domains", max(50, total_requests // 200))
    return WorkloadConfig(
        total_requests=total_requests,
        duration_s=600.0,
        num_domains=num_domains,
        num_clients=overrides.pop("num_clients", max(200, total_requests // 12)),
        seed=seed,
        num_edges=overrides.pop("num_edges", 8),
        diurnal=False,
        **overrides,
    )


def long_term_config(
    total_requests: int = 200_000, seed: int = 0, **overrides
) -> WorkloadConfig:
    """The long-term dataset shape: 24 hours, ~170 domains, 3 edges."""
    return WorkloadConfig(
        total_requests=total_requests,
        duration_s=86_400.0,
        num_domains=overrides.pop("num_domains", 170),
        num_clients=overrides.pop("num_clients", max(100, total_requests // 60)),
        seed=seed,
        num_edges=overrides.pop("num_edges", 3),
        diurnal=True,
        **overrides,
    )


@dataclass
class GroundTruth:
    """What the generator actually planted (for detector scoring)."""

    #: Designed periodic objects, keyed by object id.
    periodic_specs: Dict[str, PeriodicObjectSpec] = field(default_factory=dict)
    #: (client_id, object_id) pairs that ran on a timer.
    periodic_flows: set = field(default_factory=set)
    periodic_request_count: int = 0
    session_request_count: int = 0
    #: JSON requests already emitted per client segment by the
    #: periodic phase (periodic + sporadic flows).
    periodic_segment_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return self.periodic_request_count + self.session_request_count

    @property
    def periodic_fraction(self) -> float:
        total = self.total_requests
        return self.periodic_request_count / total if total else 0.0


@dataclass
class Dataset:
    """A built dataset: logs plus everything needed to interpret them."""

    config: WorkloadConfig
    logs: List[RequestLog]
    domains: DomainPopulation
    clients: ClientPopulation
    ground_truth: GroundTruth

    def __len__(self) -> int:
        return len(self.logs)


class WorkloadBuilder:
    """Builds one dataset from a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self.domains = DomainPopulation(config.num_domains, seed=config.seed)
        self.clients = ClientPopulation(
            config.num_clients, seed=config.seed, regions=config.regions
        )
        self._regions_by_name = {
            region.name: region for region in (config.regions or ())
        }

    # -- event generation -------------------------------------------------------

    def build_events(self) -> Tuple[List[RequestEvent], GroundTruth]:
        """Generate the full, time-sorted request-event stream."""
        truth = GroundTruth()
        events: List[RequestEvent] = []
        events.extend(self._periodic_events(truth))
        events.extend(self._session_events(truth))
        events.sort()
        return events, truth

    def build(self) -> Dataset:
        """Generate events and replay them through the edge fleet."""
        events, truth = self.build_events()
        logs = [served.log for served in self.replay(events)]
        return Dataset(
            config=self.config,
            logs=logs,
            domains=self.domains,
            clients=self.clients,
            ground_truth=truth,
        )

    def replay(self, events: Sequence[RequestEvent]) -> List[ServedRequest]:
        """Serve a sorted event stream on per-POP edge servers.

        Single-region datasets spread clients over ``num_edges``
        machines; multi-region datasets deploy each region's own
        edges and route every client to an edge in its home region,
        as CDN request routing does.
        """
        config = self.config
        origins = OriginFleet()
        size_model = SizeModel(substream(config.seed, "sizes"))

        def make_edge(edge_id: str) -> EdgeServer:
            return EdgeServer(
                edge_id=edge_id,
                cache=LruTtlCache(config.cache_capacity_bytes),
                origins=origins,
                latency_model=LatencyModel(substream(config.seed, "latency", edge_id)),
                size_model=size_model,
                rng=substream(config.seed, "edge", edge_id),
            )

        edges_by_region: Dict[str, List[EdgeServer]] = {}
        if config.regions:
            for region in config.regions:
                edges_by_region[region.name] = [
                    make_edge(f"{region.name}-edge-{index}")
                    for index in range(region.num_edges)
                ]
        else:
            edges_by_region[""] = [
                make_edge(f"edge-{index}") for index in range(config.num_edges)
            ]

        served: List[ServedRequest] = []
        for event in events:
            pool = edges_by_region.get(
                event.client.region, next(iter(edges_by_region.values()))
            )
            # Stable client→edge mapping (string hash() is seeded per
            # process and would break reproducibility).
            edge = pool[int(event.client.ip_hash[:8], 16) % len(pool)]
            served.append(edge.serve(event))
        return served

    # -- periodic traffic ------------------------------------------------------

    def _periodic_events(self, truth: GroundTruth) -> List[RequestEvent]:
        config = self.config
        rng = substream(config.seed, "periodic")
        budget = int(config.total_requests * config.periodic_fraction)
        if budget <= 0:
            return []

        machine_clients = [
            client
            for client in self.clients
            if client.segment in ("mobile_app", "embedded", "sdk", "no_ua")
        ]
        if not machine_clients:
            return []

        # Periodic objects come from the most popular domains first —
        # the paper's periodic objects sit in the top 25% of objects.
        # Endpoint choice is weighted toward telemetry uploads so that
        # periodic traffic is ~78% upload as observed (§5.1).
        ranked = sorted(self.domains, key=lambda d: d.popularity, reverse=True)
        pools: List[Tuple[DomainProfile, List[Endpoint], List[Endpoint]]] = []
        for domain in ranked:
            uploads = [ep for ep in domain.periodic_endpoints if ep.method.is_upload()]
            downloads = [
                ep for ep in domain.periodic_endpoints if not ep.method.is_upload()
            ]
            rng.shuffle(uploads)
            rng.shuffle(downloads)
            pools.append((domain, uploads, downloads))

        # A period only makes sense when the window fits >= 12 ticks —
        # shorter flows cannot clear the ten-request filter (§5.1).
        max_period = config.duration_s / 12.0

        events: List[RequestEvent] = []
        emitted = 0
        upload_emitted = 0
        client_cursor = 0
        pool_cursor = 0
        majority_objects = 0
        while emitted < budget and any(up or down for _, up, down in pools):
            domain, uploads, downloads = pools[pool_cursor % len(pools)]
            pool_cursor += 1
            # Request-level quota: keep the periodic traffic ~78%
            # upload (§5.1) regardless of how few objects fit the
            # budget.
            want_upload = upload_emitted < 0.78 * max(emitted, 1)
            if want_upload and uploads:
                endpoint = uploads.pop()
            elif downloads:
                endpoint = downloads.pop()
            elif uploads:
                endpoint = uploads.pop()
            else:
                continue
            period = choose_period(rng)
            for _ in range(8):
                if period <= max_period:
                    break
                period = choose_period(rng)
            if period > max_period:
                continue
            # Quota-schedule the firmware-style (majority-periodic)
            # objects: ~25% of planted objects, deterministically
            # spread, so the Figure 6 majority fraction is stable at
            # dataset scale.
            planted = len(truth.periodic_specs)
            force_majority = majority_objects < 0.25 * (planted + 1) - 0.5
            if force_majority:
                majority_objects += 1
            share = choose_periodic_share(rng, majority=force_majority)
            spec = PeriodicObjectSpec(
                domain=domain,
                endpoint=endpoint,
                period_s=period,
                periodic_client_share=share,
            )
            num_clients = rng.randint(12, 24)
            num_periodic = max(1, round(num_clients * share))
            num_sporadic = num_clients - num_periodic
            truth.periodic_specs[spec.object_id] = spec

            for _ in range(num_periodic):
                client = machine_clients[client_cursor % len(machine_clients)]
                client_cursor += 1
                start, end = agent_duty_window(
                    rng, period, config.start_time, config.end_time
                )
                agent = PeriodicAgent(
                    client=client,
                    spec=spec,
                    phase_s=rng.uniform(0.0, period),
                    jitter_s=rng.uniform(0.05, 0.40),
                    drop_probability=rng.uniform(0.01, 0.08),
                    active_start=start,
                    active_end=end,
                )
                agent_events = agent.generate(rng)
                events.extend(agent_events)
                emitted += len(agent_events)
                if endpoint.method.is_upload():
                    upload_emitted += len(agent_events)
                truth.periodic_flows.add((client.client_key, spec.object_id))
                truth.periodic_segment_counts[client.segment] = (
                    truth.periodic_segment_counts.get(client.segment, 0)
                    + len(agent_events)
                )

            # Sporadic (human-triggered) clients of the same object:
            # enough requests to clear the flow filter, but Poisson
            # times — no period for the detector to find.
            for _ in range(num_sporadic):
                client = machine_clients[client_cursor % len(machine_clients)]
                client_cursor += 1
                # Sporadic flows must clear the ten-request filter in
                # day-long datasets; in short captures they are simply
                # background noise on the object.
                if config.duration_s >= 3_600:
                    count = rng.randint(10, 16)
                else:
                    count = rng.randint(2, 5)
                for _ in range(count):
                    timestamp = rng.uniform(config.start_time, config.end_time)
                    events.append(RequestEvent(timestamp, client, domain, endpoint))
                truth.session_request_count += count
                truth.periodic_segment_counts[client.segment] = (
                    truth.periodic_segment_counts.get(client.segment, 0) + count
                )

        truth.periodic_request_count = emitted
        return events

    # -- human/session traffic ------------------------------------------------------

    def _session_events(self, truth: GroundTruth) -> List[RequestEvent]:
        """Fill the JSON budget with session traffic, segment by segment.

        Scheduling is deficit-driven: each segment has a target JSON
        request count (:data:`repro.synth.clients.DEFAULT_SEGMENT_MIX`
        share × total budget, minus what periodic traffic already
        consumed on that segment), and the next session always goes to
        the segment furthest below target.  This self-corrects for the
        very different JSON yields of session types (a browser session
        emits mostly HTML/assets; an app session is pure JSON).
        """
        config = self.config
        rng = substream(config.seed, "sessions")
        generator = SessionGenerator(
            substream(config.seed, "sessions", "chain"), config.session
        )
        budget = config.total_requests - truth.periodic_request_count
        if budget <= 0:
            return []

        domain_list = list(self.domains)
        domain_weights = self.domains.popularity_weights()
        by_segment = self.clients.by_segment()
        segment_weights = {
            name: [client.activity for client in group]
            for name, group in by_segment.items()
        }
        total_share = sum(
            share for name, share in self._segment_shares().items() if name in by_segment
        )
        targets: Dict[str, float] = {
            name: share / total_share * config.total_requests
            for name, share in self._segment_shares().items()
            if name in by_segment
        }
        emitted: Dict[str, int] = {name: 0 for name in targets}
        # Periodic traffic already spent part of some segments' budget.
        for segment, count in truth.periodic_segment_counts.items():
            if segment in emitted:
                emitted[segment] += count

        app_affinity: Dict[str, List[DomainProfile]] = {}
        events: List[RequestEvent] = []
        session_json = 0
        total_emitted = lambda: sum(emitted.values())
        while total_emitted() < config.total_requests:
            segment = max(targets, key=lambda name: targets[name] - emitted[name])
            if targets[segment] - emitted[segment] <= 0:
                break
            group = by_segment[segment]
            client = rng.choices(group, weights=segment_weights[segment], k=1)[0]
            domain = self._pick_domain(rng, client, domain_list, domain_weights,
                                       app_affinity)
            start = self._pick_start_time(rng, client)
            if segment in ("mobile_browser", "desktop_browser"):
                session = generator.browser_session(client, domain, start)
            elif segment == "sdk":
                session = generator.script_burst(client, domain, start)
            else:
                session = generator.app_session(client, domain, start)
            session = [
                event for event in session if event.timestamp < config.end_time
            ]
            events.extend(session)
            json_count = sum(
                1
                for event in session
                if event.endpoint.mime_type == "application/json"
            )
            emitted[segment] += json_count
            session_json += json_count
        truth.session_request_count += session_json
        return events

    @staticmethod
    def _segment_shares() -> Dict[str, float]:
        from .clients import DEFAULT_SEGMENT_MIX

        total = sum(DEFAULT_SEGMENT_MIX.values())
        return {name: share / total for name, share in DEFAULT_SEGMENT_MIX.items()}

    def _pick_domain(
        self,
        rng,
        client: Client,
        domain_list: List[DomainProfile],
        domain_weights: List[float],
        app_affinity: Dict[str, List[DomainProfile]],
    ) -> DomainProfile:
        # Browsers roam; apps are installed.
        if client.segment in ("mobile_browser", "desktop_browser", "sdk"):
            return rng.choices(domain_list, weights=domain_weights, k=1)[0]
        key = client.client_key
        installed = app_affinity.get(key)
        if installed is None:
            count = rng.randint(1, 3)
            installed = [
                rng.choices(domain_list, weights=domain_weights, k=1)[0]
                for _ in range(count)
            ]
            app_affinity[key] = installed
        return rng.choice(installed)

    def _pick_start_time(self, rng, client: Client) -> float:
        config = self.config
        if not config.diurnal:
            return rng.uniform(config.start_time, config.end_time)
        # Rejection-sample against a day curve peaking in the local
        # evening; the client's region phases "local".
        region = self._regions_by_name.get(client.region)
        offset = region.utc_offset_h if region is not None else 0.0
        while True:
            timestamp = rng.uniform(config.start_time, config.end_time)
            hour = ((timestamp - config.start_time) / 3600.0 + offset) % 24.0
            # Peak at 20:00 local, trough in the early morning.
            weight = 0.35 + 0.65 * (0.5 - 0.5 * math.cos(2 * math.pi * (hour - 8) / 24))
            if rng.random() < weight:
                return timestamp
