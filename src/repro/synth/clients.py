"""Client population model.

A client is one (device, software stack) pair: a phone running a
native app, a desktop browser, a console, an IoT node, a server-side
script.  The population's segment mix is calibrated so that the
*request-level* device and browser shares land on the paper's
Figure 3 numbers once the workload weights each segment's activity.

Segment request-share calibration (fractions of JSON requests):

========  =====================  ======
segment   device                 share
========  =====================  ======
mobile_app      mobile           0.525
mobile_browser  mobile           0.025
desktop_browser desktop          0.085
embedded        embedded         0.120
sdk             unknown          0.040
no_ua           unknown          0.170
malformed       unknown          0.035
========  =====================  ======

→ mobile 55%, embedded 12%, desktop ~9%, unknown ~24.5%, browser
traffic ~11%, matching §4 within sampling noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..logs.anonymize import IpAnonymizer
from ..logs.record import client_key as log_client_key
from ..useragent.strings import (
    make_desktop_browser_ua,
    make_embedded_ua,
    make_malformed_ua,
    make_mobile_app_ua,
    make_mobile_browser_ua,
    make_sdk_ua,
)
from .rng import substream

__all__ = ["ClientSegment", "Client", "ClientPopulation", "DEFAULT_SEGMENT_MIX"]

#: (segment name, request-share weight)
DEFAULT_SEGMENT_MIX: Mapping[str, float] = {
    "mobile_app": 0.525,
    "mobile_browser": 0.025,
    "desktop_browser": 0.085,
    "embedded": 0.120,
    "sdk": 0.040,
    "no_ua": 0.170,
    "malformed": 0.035,
}

#: Segments that behave like interactive humans (session traffic) vs
#: machine agents (periodic / scripted traffic).  Mixed segments can
#: do both: a mobile app has a human in front of it *and* a background
#: refresh timer.
_HUMAN_SEGMENTS = frozenset(
    {"mobile_app", "mobile_browser", "desktop_browser", "embedded"}
)


@dataclass(frozen=True)
class ClientSegment:
    """Static description of a population segment."""

    name: str
    weight: float


@dataclass(frozen=True)
class Client:
    """One traffic-generating client."""

    ip_hash: str
    user_agent: Optional[str]
    segment: str
    #: Relative request volume of this client within its segment.
    activity: float
    #: Geographic region name; empty for single-region datasets.
    region: str = ""

    @property
    def is_human_capable(self) -> bool:
        return self.segment in _HUMAN_SEGMENTS

    @property
    def client_key(self) -> str:
        """Identifier matching :attr:`repro.logs.RequestLog.client_id`."""
        return log_client_key(self.ip_hash, self.user_agent)


class ClientPopulation:
    """Reproducible population of clients with the calibrated mix.

    Parameters
    ----------
    num_clients:
        Total clients to create.
    seed:
        Dataset seed.
    segment_mix:
        Override of :data:`DEFAULT_SEGMENT_MIX` (weights need not be
        normalized).
    """

    def __init__(
        self,
        num_clients: int,
        seed: int = 0,
        segment_mix: Optional[Mapping[str, float]] = None,
        regions: Optional[Sequence["Region"]] = None,
    ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        mix = dict(segment_mix or DEFAULT_SEGMENT_MIX)
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("segment mix weights must sum to a positive value")
        self.segments: List[ClientSegment] = [
            ClientSegment(name, weight / total) for name, weight in mix.items()
        ]
        rng = substream(seed, "clients")
        ua_rng = substream(seed, "clients", "ua")
        anonymizer = IpAnonymizer(substream(seed, "clients", "ipkey").randbytes(32))
        if regions:
            from .regions import assign_regions

            region_assignment = assign_regions(
                substream(seed, "clients", "regions"), num_clients, regions
            )
        else:
            region_assignment = None

        self.clients: List[Client] = []
        names = [segment.name for segment in self.segments]
        weights = [segment.weight for segment in self.segments]
        for index in range(num_clients):
            segment = rng.choices(names, weights=weights, k=1)[0]
            ip = f"10.{rng.randint(0, 255)}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"
            # Collisions across clients are fine (NAT exists); the
            # client key is (ip hash, UA) as in the paper.
            self.clients.append(
                Client(
                    ip_hash=anonymizer.anonymize(ip),
                    user_agent=self._make_ua(ua_rng, segment),
                    segment=segment,
                    activity=max(0.05, rng.lognormvariate(0.0, 0.6)),
                    region=(
                        region_assignment[index].name
                        if region_assignment
                        else ""
                    ),
                )
            )

    @staticmethod
    def _make_ua(rng: random.Random, segment: str) -> Optional[str]:
        if segment == "no_ua":
            return None
        factory = {
            "mobile_app": make_mobile_app_ua,
            "mobile_browser": make_mobile_browser_ua,
            "desktop_browser": make_desktop_browser_ua,
            "embedded": make_embedded_ua,
            "sdk": make_sdk_ua,
            "malformed": make_malformed_ua,
        }[segment]
        return factory(rng)

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.clients)

    def __iter__(self):
        return iter(self.clients)

    def by_segment(self) -> Dict[str, List[Client]]:
        grouped: Dict[str, List[Client]] = {}
        for client in self.clients:
            grouped.setdefault(client.segment, []).append(client)
        return grouped

    def segment_counts(self) -> Dict[str, int]:
        return {name: len(group) for name, group in self.by_segment().items()}
