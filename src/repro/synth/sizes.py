"""Response-size models.

Sizes are lognormal around each endpoint's median with a per-kind
shape parameter.  The JSON traffic mix (many tiny telemetry acks and
poll bodies, fewer mid-size manifests/content) yields the aggregate
pattern the paper reports: JSON is modestly smaller than HTML at the
median but drastically smaller at the 75th percentile, because JSON
lacks HTML's heavy document tail.

A yearly scale factor models the ~28% mean JSON size decrease the
paper observes between 2016 and 2019 (§4, Response Type).
"""

from __future__ import annotations

import math
import random
from typing import Mapping

from .domains import Endpoint, EndpointKind

__all__ = ["SizeModel", "KIND_SIGMA", "json_size_scale"]

#: Lognormal shape by endpoint kind.  PAGE (HTML) is intentionally
#: heavy-tailed: CDN HTML spans tiny fragments to megabyte documents.
KIND_SIGMA: Mapping[EndpointKind, float] = {
    EndpointKind.MANIFEST: 0.55,
    EndpointKind.CONTENT: 0.80,
    EndpointKind.SEARCH: 0.60,
    EndpointKind.CONFIG: 0.45,
    EndpointKind.TELEMETRY: 0.40,
    EndpointKind.POLL: 0.50,
    EndpointKind.PAGE: 0.80,
}

#: HTML documents are a two-population mixture: light server-rendered
#: fragments/redirect pages and heavy full documents.  The mixture is
#: what produces the paper's asymmetric comparison — JSON is only
#: modestly smaller than HTML at the median but ~87% smaller at p75,
#: because HTML's upper quartile is dominated by heavy documents.
#: (weight, median bytes, sigma)
HTML_MIXTURE = ((0.60, 5_000, 0.70), (0.40, 150_000, 0.90))

_BASE_YEAR = 2016
_JSON_YEARLY_DECAY = 0.104  # (1 - 0.104)^3 ≈ 0.72 → 28% smaller by 2019


def json_size_scale(year: float) -> float:
    """Mean-size multiplier for JSON responses in a given year.

    Normalized to 1.0 in 2019 (the datasets' epoch); earlier years are
    proportionally larger so the 2016→2019 decrease is ~28%.
    """
    return (1.0 - _JSON_YEARLY_DECAY) ** (year - 2019)


class SizeModel:
    """Samples response sizes for endpoints.

    Parameters
    ----------
    rng:
        Dedicated random substream.
    year:
        Dataset epoch year; scales JSON sizes per the observed trend.
    """

    def __init__(self, rng: random.Random, year: float = 2019.0) -> None:
        self._rng = rng
        self._json_scale = json_size_scale(year)

    def sample(self, endpoint: Endpoint) -> int:
        """Draw one response size in bytes for this endpoint."""
        if endpoint.mime_type == "text/html":
            return self._sample_html()
        sigma = KIND_SIGMA[endpoint.kind]
        mu = math.log(endpoint.median_bytes)
        size = self._rng.lognormvariate(mu, sigma)
        if endpoint.mime_type == "application/json":
            size *= self._json_scale
        return max(64, int(size))

    def _sample_html(self) -> int:
        roll = self._rng.random()
        cumulative = 0.0
        weight, median, sigma = HTML_MIXTURE[-1]
        for weight, median, sigma in HTML_MIXTURE:
            cumulative += weight
            if roll < cumulative:
                break
        return max(256, int(self._rng.lognormvariate(math.log(median), sigma)))

    def sample_request_body(self, endpoint: Endpoint) -> int:
        """Request-body bytes for upload endpoints (0 for downloads)."""
        if not endpoint.method.is_upload():
            return 0
        # Telemetry batches: a few hundred bytes to a few KB.
        return max(32, int(self._rng.lognormvariate(math.log(900), 0.7)))
