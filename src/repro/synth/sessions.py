"""Human-triggered session traffic.

Models the paper's Table 1 pattern: an application first fetches a
JSON *manifest* (story list, home feed), then fetches *content*
objects referenced by it, occasionally searching, paging, and
uploading telemetry.  Browser sessions interleave HTML page loads
with a smaller number of JSON API calls (server-side-rendered sites
dominate browser HTML, which is why browsers contribute only ~12% of
JSON traffic while HTML volume stays at ~1/4 of JSON volume).

The navigation structure is an explicit Markov chain over endpoint
roles.  Its transition weights are the knob that calibrates the
Table 3 ngram accuracies: the more deterministic the chain, the more
predictable the next URL.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from .clients import Client
from .domains import DomainProfile, Endpoint, EndpointKind
from .rng import zipf_weights

__all__ = ["RequestEvent", "SessionConfig", "SessionGenerator"]


@dataclass(frozen=True, order=True)
class RequestEvent:
    """One request issued by a client, before edge-server processing.

    Ordering compares timestamps only, so event streams from multiple
    generators can be merged with a plain sort.
    """

    timestamp: float
    client: Client = field(compare=False)
    domain: DomainProfile = field(compare=False)
    endpoint: Endpoint = field(compare=False)


@dataclass(frozen=True)
class SessionConfig:
    """Tunable knobs of the session Markov chain.

    The defaults are calibrated against Table 3; see
    ``benchmarks/test_tab3_ngram.py``.
    """

    #: Probability an app session begins with the config fetch.
    config_first: float = 0.70
    #: Probability an app session reports a launch analytics event.
    launch_telemetry: float = 0.30
    #: Mean think time between human actions (lognormal median, s).
    think_median_s: float = 8.0
    think_sigma: float = 0.9
    #: Hard cap on session length, a safety net for the Markov walk.
    max_steps: int = 40
    #: Zipf exponent for content choice within a manifest window.
    content_zipf: float = 1.6
    #: Size of the "featured" window a manifest exposes.
    featured_window: int = 10
    #: Mean JSON API calls per browser page load.
    browser_json_per_page: float = 0.5
    #: Static sub-resources (CSS/JS/image) per browser page load.
    browser_assets_per_page: int = 2


# Static asset flavors browsers pull alongside HTML documents.
_ASSET_MIMES = ("text/css", "application/javascript", "image/jpeg")


class SessionGenerator:
    """Generates request-event sequences for one client session.

    One generator instance owns one RNG substream; sessions produced
    by it are reproducible given the construction seed.
    """

    def __init__(self, rng: random.Random, config: Optional[SessionConfig] = None) -> None:
        self._rng = rng
        self.config = config or SessionConfig()

    # -- public API --------------------------------------------------------

    def app_session(
        self, client: Client, domain: DomainProfile, start_time: float
    ) -> List[RequestEvent]:
        """A native-app session: pure JSON, manifest→content pattern."""
        events: List[RequestEvent] = []
        now = start_time
        rng = self._rng
        cfg = self.config

        state: Tuple[str, int] = ("home", 0)
        if rng.random() < cfg.config_first and domain.configs:
            events.append(RequestEvent(now, client, domain, domain.configs[0]))
            now += self._subsecond_delay()
        events.append(RequestEvent(now, client, domain, domain.manifests[0]))
        # Launch analytics: many apps report an open/visit event.
        if rng.random() < cfg.launch_telemetry and domain.telemetry:
            events.append(
                RequestEvent(now + self._subsecond_delay(), client, domain,
                             domain.telemetry[0])
            )

        for _ in range(cfg.max_steps):
            now += self._think_time()
            nxt = self._next_state(domain, state)
            if nxt is None:
                break
            state, endpoint = nxt
            events.append(RequestEvent(now, client, domain, endpoint))
        return events

    def browser_session(
        self, client: Client, domain: DomainProfile, start_time: float
    ) -> List[RequestEvent]:
        """A browser session: HTML pages, assets, and sparse JSON."""
        events: List[RequestEvent] = []
        now = start_time
        rng = self._rng
        cfg = self.config
        num_pages = 1 + min(self._geometric(0.45), 8)
        for _ in range(num_pages):
            page = rng.choice(domain.pages)
            events.append(RequestEvent(now, client, domain, page))
            asset_time = now
            for index in range(cfg.browser_assets_per_page):
                asset_time += rng.uniform(0.02, 0.2)
                asset = Endpoint(
                    url=f"/static/asset-{index}.{'css' if index == 0 else 'js'}",
                    kind=EndpointKind.PAGE,
                    method=page.method,
                    cacheable=True,
                    mime_type=_ASSET_MIMES[index % len(_ASSET_MIMES)],
                    median_bytes=18_000,
                )
                events.append(RequestEvent(asset_time, client, domain, asset))
            json_calls = self._poisson(cfg.browser_json_per_page)
            call_time = now
            for _ in range(json_calls):
                call_time += rng.uniform(0.05, 0.6)
                endpoint = self._browser_json_endpoint(domain)
                events.append(RequestEvent(call_time, client, domain, endpoint))
            now += self._think_time()
        return events

    def script_burst(
        self, client: Client, domain: DomainProfile, start_time: float
    ) -> List[RequestEvent]:
        """An SDK/script burst: rapid API sweeps and webhook uploads."""
        events: List[RequestEvent] = []
        now = start_time
        rng = self._rng
        count = 2 + self._geometric(0.25)
        for _ in range(min(count, 30)):
            if rng.random() < 0.40 and domain.telemetry:
                endpoint = rng.choice(domain.telemetry)
            elif domain.contents:
                endpoint = rng.choice(domain.contents)
            else:
                endpoint = domain.manifests[0]
            events.append(RequestEvent(now, client, domain, endpoint))
            now += rng.uniform(0.05, 1.5)
        return events

    # -- Markov chain -------------------------------------------------------

    def _next_state(
        self, domain: DomainProfile, state: Tuple[str, int]
    ) -> Optional[Tuple[Tuple[str, int], Endpoint]]:
        """One step of the navigation chain.

        States: ``("home", 0)``, ``("stories", page)``,
        ``("content", index)``, ``("search", 0)``, ``("telemetry", 0)``.
        Returns None to end the session.
        """
        rng = self._rng
        kind, position = state
        roll = rng.random()

        if kind == "home":
            if roll < 0.62:
                return self._stories_state(domain, 1)
            if roll < 0.84:
                return self._content_state(domain, window_start=0)
            if roll < 0.90 and domain.searches:
                return ("search", 0), rng.choice(domain.searches)
            return None

        if kind == "stories":
            if roll < 0.66:
                return self._content_state(
                    domain, window_start=(position - 1) * self.config.featured_window
                )
            if roll < 0.80:
                return self._stories_state(domain, position + 1)
            if roll < 0.88:
                return ("home", 0), domain.manifests[0]
            return None

        if kind == "content":
            if roll < 0.50:
                # "Related article" navigation: deterministic given the
                # current item — the raw-URL-predictable core of the
                # manifest pattern.
                nxt = (position + 1) % len(domain.contents)
                return ("content", nxt), domain.contents[nxt]
            if roll < 0.70:
                return self._stories_state(domain, 1)
            if roll < 0.82:
                return self._content_state(domain, window_start=0)
            if roll < 0.88 and domain.telemetry:
                return ("telemetry", 0), domain.telemetry[0]
            return None

        if kind == "search":
            if roll < 0.62:
                return self._content_state(domain, window_start=0)
            if roll < 0.80:
                return ("home", 0), domain.manifests[0]
            return None

        if kind == "telemetry":
            if roll < 0.55:
                return ("home", 0), domain.manifests[0]
            return None

        return None

    def _stories_state(
        self, domain: DomainProfile, page: int
    ) -> Tuple[Tuple[str, int], Endpoint]:
        stories = domain.manifests[1:] or domain.manifests
        index = min(page - 1, len(stories) - 1)
        return ("stories", index + 1), stories[index]

    def _content_state(
        self, domain: DomainProfile, window_start: int
    ) -> Tuple[Tuple[str, int], Endpoint]:
        """Pick a content item from a manifest's featured window."""
        window = self.config.featured_window
        start = window_start % max(1, len(domain.contents))
        indices = [
            (start + offset) % len(domain.contents) for offset in range(window)
        ]
        weights = zipf_weights(len(indices), self.config.content_zipf)
        index = self._rng.choices(indices, weights=weights, k=1)[0]
        return ("content", index), domain.contents[index]

    def _browser_json_endpoint(self, domain: DomainProfile) -> Endpoint:
        rng = self._rng
        roll = rng.random()
        if roll < 0.4:
            return domain.manifests[0]
        if roll < 0.7 and domain.configs:
            return domain.configs[0]
        return rng.choice(domain.contents)

    # -- timing helpers ------------------------------------------------------

    def _think_time(self) -> float:
        return self._rng.lognormvariate(
            math.log(self.config.think_median_s), self.config.think_sigma
        )

    def _subsecond_delay(self) -> float:
        return self._rng.uniform(0.05, 0.8)

    def _geometric(self, p: float) -> int:
        """Number of failures before first success; mean (1-p)/p."""
        count = 0
        while self._rng.random() > p and count < 100:
            count += 1
        return count

    def _poisson(self, lam: float) -> int:
        """Knuth's method; lam is small here so this is fast."""
        threshold = math.exp(-lam)
        count, product = 0, self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count
