"""The paper's headline numbers, as explicit calibration targets.

Everything the evaluation reports is collected here so that (a) the
generator's parameters are visibly derived from the paper rather than
buried in magic constants, and (b) benchmarks can print
paper-vs-measured rows from a single source of truth.

All fractions are of *JSON* traffic unless noted otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

__all__ = ["PaperTargets", "PAPER"]


@dataclass(frozen=True)
class PaperTargets:
    """Numbers reported in the paper (section noted per field)."""

    # -- Figure 1 / §1 ---------------------------------------------------
    #: JSON:HTML request ratio at the end of the observation window.
    json_html_ratio_2019: float = 4.0
    #: Observation window of the trend series.
    trend_years: Tuple[int, int] = (2016, 2019)

    # -- Table 2 ----------------------------------------------------------
    short_term_logs: int = 25_000_000
    short_term_duration_s: float = 600.0
    short_term_domains: int = 5_000
    long_term_logs: int = 10_000_000
    long_term_duration_s: float = 86_400.0
    long_term_domains: int = 170

    # -- Figure 3 / §4 traffic source --------------------------------------
    #: Request share by device type.
    device_mix: Mapping[str, float] = field(
        default_factory=lambda: {
            "mobile": 0.55,
            "embedded": 0.12,
            "desktop": 0.09,
            "unknown": 0.24,
        }
    )
    #: Unique user-agent *string* share by device type.
    ua_string_mix: Mapping[str, float] = field(
        default_factory=lambda: {
            "mobile": 0.73,
            "embedded": 0.17,
            "desktop": 0.03,
            "unknown": 0.07,
        }
    )
    #: Share of JSON traffic not from browsers.
    non_browser_fraction: float = 0.88
    #: Mobile browser traffic as share of all JSON requests.
    mobile_browser_fraction: float = 0.025
    #: Native mobile app share ("at least 52%").
    mobile_app_fraction_min: float = 0.52

    # -- §4 request type ----------------------------------------------------
    get_fraction: float = 0.84
    #: Of the non-GET remainder, the POST share.
    post_share_of_non_get: float = 0.96

    # -- §4 response type ----------------------------------------------------
    uncacheable_fraction: float = 0.55
    #: Domain-level cacheability: never / always cacheable shares.
    domains_never_cacheable: float = 0.50
    domains_always_cacheable: float = 0.30
    #: JSON size vs HTML size: relative reduction at p50 and p75.
    json_vs_html_p50_smaller: float = 0.24
    json_vs_html_p75_smaller: float = 0.87
    #: Mean JSON response-size reduction since 2016.
    json_size_decrease_since_2016: float = 0.28

    # -- §5.1 periodicity ------------------------------------------------
    periodic_request_fraction: float = 0.063
    #: Canonical period spikes in Figure 5 (seconds).
    canonical_periods_s: Tuple[float, ...] = (30, 60, 120, 180, 600, 900, 1800)
    #: Figure 6: fraction of periodic objects where >50% of clients are
    #: periodic with the object's period.
    objects_with_majority_periodic_clients: float = 0.20
    periodic_uncacheable_fraction: float = 0.562
    periodic_upload_fraction: float = 0.78
    #: Detection parameters (§5.1 "Choosing Parameters").
    permutations_x: int = 100
    sampling_rate_s: float = 1.0
    #: Flow filters.
    min_requests_per_client_flow: int = 10
    min_clients_per_object_flow: int = 10

    # -- §5.2 / Table 3 ----------------------------------------------------
    #: Top-K accuracy for N=1: {K: (clustered, actual)}.
    ngram_accuracy: Mapping[int, Tuple[float, float]] = field(
        default_factory=lambda: {
            1: (0.65, 0.45),
            5: (0.84, 0.64),
            10: (0.87, 0.69),
        }
    )
    #: Accuracy gain ceiling from raising N to 5.
    ngram_n5_max_gain: float = 0.05


PAPER = PaperTargets()
