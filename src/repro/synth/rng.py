"""Deterministic random-stream management for the traffic generator.

Every stochastic component gets its own named substream derived from
the dataset seed, so that (a) the same seed always produces the same
dataset and (b) changing one component's draw count does not perturb
the others — essential for ablations that must hold the rest of the
workload fixed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

__all__ = ["substream", "weighted_choice", "zipf_weights"]

T = TypeVar("T")


def substream(seed: int, *names: str) -> random.Random:
    """Return an independent :class:`random.Random` for a named purpose.

    The substream seed is a hash of the dataset seed and the name
    path, so ``substream(42, "clients")`` and ``substream(42,
    "domains")`` are statistically independent but each fully
    reproducible.
    """
    hasher = hashlib.sha256(str(seed).encode("ascii"))
    for name in names:
        hasher.update(b"/")
        hasher.update(name.encode("utf-8"))
    return random.Random(int.from_bytes(hasher.digest()[:8], "big"))


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """One weighted draw; thin wrapper kept for call-site clarity."""
    return rng.choices(items, weights=weights, k=1)[0]


def zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Zipf-like popularity weights for ``count`` ranked items.

    Web object and domain popularity is famously heavy-tailed; the
    generator uses these weights wherever "some things are much more
    popular than others" is the realistic default.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    weights = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(weights)
    return [weight / total for weight in weights]
