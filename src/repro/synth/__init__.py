"""Synthetic CDN traffic substrate.

The stand-in for the paper's proprietary Akamai logs (see DESIGN.md
§2 for the substitution argument).  Domain and client populations,
human session traffic, periodic machine traffic, response-size and
multi-year trend models, and the two Table 2 dataset builders.
"""

from .calibration import PAPER, PaperTargets
from .clients import DEFAULT_SEGMENT_MIX, Client, ClientPopulation, ClientSegment
from .domains import (
    CATEGORY_DOMAIN_SHARE,
    CATEGORY_POLICY_MIX,
    CachePolicy,
    CachePolicyKind,
    DomainPopulation,
    DomainProfile,
    Endpoint,
    EndpointKind,
)
from .periodic import CANONICAL_PERIODS, PeriodicAgent, PeriodicObjectSpec
from .regions import DEFAULT_REGIONS, Region, assign_regions
from .rng import substream, weighted_choice, zipf_weights
from .scenarios import fleet_with_rogue, flash_crowd, iot_fleet, scanner_probe
from .sessions import RequestEvent, SessionConfig, SessionGenerator
from .sizes import KIND_SIGMA, SizeModel, json_size_scale
from .trend import MonthlyVolume, TrendModel
from .validation import CalibrationCheck, ValidationReport, validate_dataset
from .workload import (
    EPOCH_2019,
    Dataset,
    GroundTruth,
    WorkloadBuilder,
    WorkloadConfig,
    long_term_config,
    short_term_config,
)

__all__ = [
    "PAPER",
    "PaperTargets",
    "Client",
    "ClientPopulation",
    "ClientSegment",
    "DEFAULT_SEGMENT_MIX",
    "CachePolicy",
    "CachePolicyKind",
    "DomainPopulation",
    "DomainProfile",
    "Endpoint",
    "EndpointKind",
    "CATEGORY_POLICY_MIX",
    "CATEGORY_DOMAIN_SHARE",
    "PeriodicAgent",
    "PeriodicObjectSpec",
    "CANONICAL_PERIODS",
    "Region",
    "DEFAULT_REGIONS",
    "assign_regions",
    "iot_fleet",
    "flash_crowd",
    "scanner_probe",
    "fleet_with_rogue",
    "substream",
    "weighted_choice",
    "zipf_weights",
    "RequestEvent",
    "SessionConfig",
    "SessionGenerator",
    "SizeModel",
    "KIND_SIGMA",
    "json_size_scale",
    "CalibrationCheck",
    "ValidationReport",
    "validate_dataset",
    "MonthlyVolume",
    "TrendModel",
    "Dataset",
    "GroundTruth",
    "WorkloadBuilder",
    "WorkloadConfig",
    "short_term_config",
    "long_term_config",
    "EPOCH_2019",
]
