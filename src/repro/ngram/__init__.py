"""Request prediction (§5.2): URL tokenization and clustering, the
backoff ngram model, and the Table 3 evaluation harness.
"""

from .baseline import PerClientRecencyPredictor, PopularityPredictor
from .clustering import UrlClusterer, cluster_segment, cluster_url
from .evaluate import (
    AccuracyResult,
    build_client_sequences,
    build_timed_client_sequences,
    evaluate_topk,
    run_table3,
    split_clients,
)
from .model import BackoffNgramModel
from .timing import GapStats, TimedNgramModel, TimedPrediction
from .tokenize import TokenizedUrl, tokenize_url

__all__ = [
    "TokenizedUrl",
    "tokenize_url",
    "cluster_segment",
    "cluster_url",
    "UrlClusterer",
    "BackoffNgramModel",
    "PopularityPredictor",
    "PerClientRecencyPredictor",
    "TimedNgramModel",
    "TimedPrediction",
    "GapStats",
    "build_timed_client_sequences",
    "build_client_sequences",
    "split_clients",
    "AccuracyResult",
    "evaluate_topk",
    "run_table3",
]
