"""URL clustering (Klotski-style argument clustering, §5.2).

Raw URLs embed per-object and per-client identifiers —
``/api/v1/item/48121``, ``/search?q=trending&uid=8f3a`` — which
fragment the transition statistics.  Clustering replaces identifier-
like parts with typed placeholders so that structurally identical
requests share one token:

``/api/v1/item/48121``  →  ``/api/v1/item/<num>``
``/search?q=trending``  →  ``/search?q=<str>``

The paper evaluates the ngram model on both raw and clustered URLs
(Table 3); clustered accuracy is higher because it captures the
application's *screen graph* rather than individual objects.
"""

from __future__ import annotations

import re
from typing import Tuple

from .tokenize import TokenizedUrl, tokenize_url

__all__ = ["cluster_segment", "cluster_url", "UrlClusterer"]

_NUM_RE = re.compile(r"^\d+$")
_HEX_RE = re.compile(r"^[0-9a-fA-F]{8,}$")
_UUID_RE = re.compile(
    r"^[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}"
    r"-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}$"
)
_MIXED_ID_RE = re.compile(r"^(?=.*\d)[A-Za-z0-9_-]{6,}$")


_PLACEHOLDER_RE = re.compile(r"^<[a-z]+>$")


def cluster_segment(segment: str) -> str:
    """Map one path segment to its cluster token (idempotent)."""
    if _PLACEHOLDER_RE.match(segment):
        return segment
    if _NUM_RE.match(segment):
        return "<num>"
    if _UUID_RE.match(segment):
        return "<uuid>"
    if _HEX_RE.match(segment):
        return "<hex>"
    if _MIXED_ID_RE.match(segment):
        return "<id>"
    return segment


def _cluster_arg_value(value: str) -> str:
    if value == "" or _PLACEHOLDER_RE.match(value):
        return value
    if _NUM_RE.match(value):
        return "<num>"
    if _UUID_RE.match(value):
        return "<uuid>"
    if _HEX_RE.match(value):
        return "<hex>"
    return "<str>"


def cluster_url(url: str) -> str:
    """Cluster a URL: typed path segments, typed + sorted query args.

    Argument *names* are structure and survive; argument *values* are
    data and are typed away.  Args are sorted by name so permutations
    of the same argument set cluster together.
    """
    tokenized = tokenize_url(url)
    segments = tuple(cluster_segment(s) for s in tokenized.path_segments)
    args = tuple(
        sorted(
            (key, _cluster_arg_value(value))
            for key, value in tokenized.query_args
        )
    )
    return TokenizedUrl(path_segments=segments, query_args=args).render()


class UrlClusterer:
    """Memoizing clusterer for dataset-scale runs.

    The same URLs repeat millions of times in real logs; memoizing the
    pure function is a large constant-factor win.
    """

    def __init__(self, max_entries: int = 200_000) -> None:
        self._memo: dict = {}
        self._max_entries = max_entries

    def __call__(self, url: str) -> str:
        cached = self._memo.get(url)
        if cached is not None:
            return cached
        result = cluster_url(url)
        if len(self._memo) >= self._max_entries:
            self._memo.clear()
        self._memo[url] = result
        return result
