"""Ngram evaluation harness: the Table 3 methodology.

§5.2: split the JSON dataset *by unique clients* into training and
testing sets; build per-client request flows; train on the training
clients' transitions; measure top-K next-URL accuracy on the test
clients, for raw and clustered URLs.  Cookies and request bodies are
never used — the URL is the whole feature, as in the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..logs.record import RequestLog
from .clustering import UrlClusterer
from .model import BackoffNgramModel

__all__ = [
    "build_client_sequences",
    "build_timed_client_sequences",
    "split_clients",
    "AccuracyResult",
    "evaluate_topk",
    "accuracy_by_position",
    "run_table3",
]


def build_client_sequences(
    logs: Iterable[RequestLog],
    clustered: bool = False,
    json_only: bool = True,
    include_domain: bool = True,
) -> Dict[str, List[str]]:
    """Per-client, time-ordered request-token sequences.

    Tokens are ``domain + url`` (a URL only makes sense per customer)
    with optional clustering applied to the URL part.
    """
    clusterer = UrlClusterer() if clustered else None
    buffered: Dict[str, List[Tuple[float, str]]] = {}
    for record in logs:
        if json_only and not record.is_json:
            continue
        url = clusterer(record.url) if clusterer else record.url
        token = f"{record.domain}{url}" if include_domain else url
        buffered.setdefault(record.client_id, []).append(
            (record.timestamp, token)
        )
    return {
        client: [token for _, token in sorted(entries)]
        for client, entries in buffered.items()
    }


def build_timed_client_sequences(
    logs: Iterable[RequestLog],
    clustered: bool = False,
    json_only: bool = True,
) -> Dict[str, List[Tuple[float, str]]]:
    """Per-client (timestamp, token) sequences for timing-aware models."""
    clusterer = UrlClusterer() if clustered else None
    buffered: Dict[str, List[Tuple[float, str]]] = {}
    for record in logs:
        if json_only and not record.is_json:
            continue
        url = clusterer(record.url) if clusterer else record.url
        buffered.setdefault(record.client_id, []).append(
            (record.timestamp, f"{record.domain}{url}")
        )
    return {client: sorted(entries) for client, entries in buffered.items()}


def split_clients(
    client_ids: Iterable[str], test_fraction: float = 0.25, seed: int = 0
) -> Tuple[List[str], List[str]]:
    """Deterministic client-level train/test split.

    Uses a keyed hash of the client id rather than ``random`` so the
    split is stable across runs and independent of iteration order.
    """
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    train: List[str] = []
    test: List[str] = []
    threshold = int(test_fraction * 2**32)
    for client_id in client_ids:
        digest = hashlib.sha256(f"{seed}:{client_id}".encode()).digest()
        bucket = int.from_bytes(digest[:4], "big")
        (test if bucket < threshold else train).append(client_id)
    return train, test


@dataclass(frozen=True)
class AccuracyResult:
    """Top-K accuracy of one (N, K) configuration."""

    n: int
    k: int
    clustered: bool
    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def evaluate_topk(
    model: BackoffNgramModel,
    test_sequences: Iterable[Sequence[str]],
    n: int,
    ks: Sequence[int],
    clustered: bool = False,
) -> List[AccuracyResult]:
    """Top-K accuracy over test flows, one pass for all K.

    For every position in every test flow (with at least one token of
    history), predict from the previous ``n`` tokens and check whether
    the true next request appears in the top-K list.
    """
    max_k = max(ks)
    correct = {k: 0 for k in ks}
    total = 0
    for sequence in test_sequences:
        for position in range(1, len(sequence)):
            history = sequence[max(0, position - n) : position]
            predictions = model.predict(history, k=max_k)
            truth = sequence[position]
            total += 1
            if truth in predictions:
                rank = predictions.index(truth)
                for k in ks:
                    if rank < k:
                        correct[k] += 1
    return [
        AccuracyResult(n=n, k=k, clustered=clustered, correct=correct[k],
                       total=total)
        for k in sorted(ks)
    ]


def accuracy_by_position(
    model: BackoffNgramModel,
    test_sequences: Iterable[Sequence[str]],
    n: int = 1,
    k: int = 10,
    max_position: int = 10,
) -> List[AccuracyResult]:
    """Top-K accuracy broken down by position within the flow.

    Early-session requests (config, home manifest) are structurally
    forced and predict almost perfectly; deep-session content choices
    are where prediction earns its keep.  Position ``max_position``
    aggregates everything at or beyond it.
    """
    correct = [0] * (max_position + 1)
    totals = [0] * (max_position + 1)
    for sequence in test_sequences:
        for position in range(1, len(sequence)):
            bucket = min(position, max_position)
            history = sequence[max(0, position - n) : position]
            predictions = model.predict(history, k=k)
            totals[bucket] += 1
            if sequence[position] in predictions:
                correct[bucket] += 1
    return [
        AccuracyResult(n=n, k=k, clustered=False, correct=correct[bucket],
                       total=totals[bucket])
        for bucket in range(1, max_position + 1)
        if totals[bucket]
    ]


def run_table3(
    logs: Sequence[RequestLog],
    ns: Sequence[int] = (1,),
    ks: Sequence[int] = (1, 5, 10),
    test_fraction: float = 0.25,
    seed: int = 0,
    model_order: Optional[int] = None,
) -> Dict[Tuple[int, int, bool], AccuracyResult]:
    """The full Table 3 sweep: raw and clustered URLs, all (N, K).

    Returns a mapping ``(n, k, clustered) → AccuracyResult``.
    """
    results: Dict[Tuple[int, int, bool], AccuracyResult] = {}
    for clustered in (False, True):
        sequences = build_client_sequences(logs, clustered=clustered)
        train_ids, test_ids = split_clients(
            sequences, test_fraction=test_fraction, seed=seed
        )
        order = model_order if model_order is not None else max(ns)
        model = BackoffNgramModel(order=order)
        model.fit(sequences[cid] for cid in train_ids)
        test_flows = [sequences[cid] for cid in test_ids]
        for n in ns:
            for result in evaluate_topk(model, test_flows, n, ks, clustered):
                results[(n, result.k, clustered)] = result
    return results
