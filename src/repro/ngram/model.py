"""Backoff ngram model over request sequences (§5.2).

The model captures "transition probabilities from a subsequence of
previously requested objects to the next request in the client flow".
Prediction uses *stupid backoff* [Brants et al.]: try the longest
available history; when it was never seen (or to fill out a top-K
list), back off to shorter histories with a fixed discount.  For a
top-K ranking task the discount only orders candidates across backoff
levels; it does not need to be a normalized probability.

Two properties matter to the sharded engine: equal-count successors
rank by token (never by counter insertion order), so predictions are
a pure function of the count tables; and :meth:`BackoffNgramModel.merge`
combines two models' count tables and vocabularies losslessly, so a
model merged from shard-local models over disjoint sequence sets
predicts identically to one trained on everything.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["BackoffNgramModel"]

History = Tuple[str, ...]


class BackoffNgramModel:
    """Order-N stupid-backoff ngram model.

    Parameters
    ----------
    order:
        Maximum history length N (an ``(N+1)``-gram model).
    backoff_discount:
        Multiplicative penalty per backoff level (0 < d <= 1).

    Examples
    --------
    >>> model = BackoffNgramModel(order=1)
    >>> model.fit([["a", "b", "a", "b", "c"]])
    >>> model.predict(["a"], k=1)
    ['b']
    """

    def __init__(self, order: int = 1, backoff_discount: float = 0.4) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if not 0 < backoff_discount <= 1:
            raise ValueError("backoff_discount must be in (0, 1]")
        self.order = order
        self.backoff_discount = backoff_discount
        #: history tuple (len 0..order) → Counter of successors.
        self._transitions: Dict[History, Counter] = defaultdict(Counter)
        #: total successor count per history, for normalization.
        self._totals: Dict[History, int] = defaultdict(int)
        self.trained_sequences = 0
        self.trained_tokens = 0

    # -- training ------------------------------------------------------------

    def fit(self, sequences: Iterable[Sequence[str]]) -> "BackoffNgramModel":
        """Count transitions from an iterable of request sequences."""
        for sequence in sequences:
            self.add_sequence(sequence)
        return self

    def add_sequence(self, sequence: Sequence[str]) -> None:
        """Fold one client flow into the counts (incremental)."""
        length = len(sequence)
        if length < 2:
            return
        self.trained_sequences += 1
        self.trained_tokens += length
        for position in range(1, length):
            successor = sequence[position]
            max_history = min(self.order, position)
            for width in range(0, max_history + 1):
                history: History = tuple(
                    sequence[position - width : position]
                )
                self._transitions[history][successor] += 1
                self._totals[history] += 1

    # -- prediction ------------------------------------------------------------

    def predict(self, history: Sequence[str], k: int = 1) -> List[str]:
        """Top-K successors for a history, most probable first.

        Backoff levels are consulted longest-first; candidates from
        shorter histories fill remaining slots (discounted, so they
        never outrank same-level candidates already taken).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        scored = self.scored_predictions(history, k)
        return [token for token, _ in scored]

    def scored_predictions(
        self, history: Sequence[str], k: int = 1
    ) -> List[Tuple[str, float]]:
        """Top-K (successor, score) pairs; scores are backoff-weighted
        relative frequencies (comparable within one query only).

        Equal counts break ties by token, not by insertion order —
        predictions depend only on the count tables, so a model merged
        from shards ranks exactly like one trained serially.
        """
        trimmed = tuple(history[-self.order :]) if history else ()
        results: List[Tuple[str, float]] = []
        seen: set = set()
        discount = 1.0
        for width in range(len(trimmed), -1, -1):
            key = trimmed[len(trimmed) - width :]
            counter = self._transitions.get(key)
            if counter:
                total = self._totals[key]
                ranked = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
                for token, count in ranked:
                    if token in seen:
                        continue
                    seen.add(token)
                    results.append((token, discount * count / total))
                    if len(results) >= k:
                        return results
            discount *= self.backoff_discount
        return results

    # -- merging ------------------------------------------------------------

    def merge(self, other: "BackoffNgramModel") -> "BackoffNgramModel":
        """Combine another model's count tables and vocabulary, exactly.

        Both models must share ``order`` and ``backoff_discount``.
        Counts add per (history, successor) cell and totals per
        history, so ``merge(fit(A), fit(B)) == fit(A + B)`` for any
        split of the training sequences.
        """
        if other.order != self.order:
            raise ValueError(
                f"cannot merge ngram models of order {self.order} != {other.order}"
            )
        if other.backoff_discount != self.backoff_discount:
            raise ValueError("cannot merge ngram models with different discounts")
        for history, counter in other._transitions.items():
            self._transitions[history].update(counter)
        for history, total in other._totals.items():
            self._totals[history] += total
        self.trained_sequences += other.trained_sequences
        self.trained_tokens += other.trained_tokens
        return self

    def probability(self, history: Sequence[str], successor: str) -> float:
        """Stupid-backoff score of one successor (not normalized)."""
        trimmed = tuple(history[-self.order :]) if history else ()
        discount = 1.0
        for width in range(len(trimmed), -1, -1):
            key = trimmed[len(trimmed) - width :]
            counter = self._transitions.get(key)
            if counter and successor in counter:
                return discount * counter[successor] / self._totals[key]
            discount *= self.backoff_discount
        return 0.0

    # -- introspection ------------------------------------------------------------

    @property
    def vocabulary_size(self) -> int:
        return len(self._transitions.get((), ()))

    def context_count(self) -> int:
        """Number of distinct histories with observed successors."""
        return len(self._transitions)

    def successors(self, history: Sequence[str]) -> Mapping[str, int]:
        """Raw successor counts for an exact history (no backoff)."""
        return dict(
            self._transitions.get(tuple(history[-self.order :]), Counter())
        )
