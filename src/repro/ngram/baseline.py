"""Baseline predictors for the Table 3 comparison.

The ngram model "takes into account the popularity of highly
requested items, unlike standard program analysis" (§5.2).  To show
what the *transition structure* adds beyond popularity alone, this
module provides the natural baselines:

* :class:`PopularityPredictor` — always predict the globally
  most-requested objects, ignoring history entirely;
* :class:`PerClientRecencyPredictor` — predict the objects this
  client requested most recently (an LRU guess).

Both expose the same ``predict(history, k)`` interface as
:class:`repro.ngram.model.BackoffNgramModel`, so
:func:`repro.ngram.evaluate.evaluate_topk` scores them unchanged.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Sequence

__all__ = ["PopularityPredictor", "PerClientRecencyPredictor"]


class PopularityPredictor:
    """History-blind global-popularity baseline."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._top_cache: List[str] = []

    def fit(self, sequences: Iterable[Sequence[str]]) -> "PopularityPredictor":
        for sequence in sequences:
            self._counts.update(sequence)
        self._top_cache = [token for token, _ in self._counts.most_common()]
        return self

    def add_sequence(self, sequence: Sequence[str]) -> None:
        self._counts.update(sequence)
        self._top_cache = [token for token, _ in self._counts.most_common()]

    def predict(self, history: Sequence[str], k: int = 1) -> List[str]:
        if k < 1:
            raise ValueError("k must be >= 1")
        return self._top_cache[:k]

    @property
    def vocabulary_size(self) -> int:
        return len(self._counts)


class PerClientRecencyPredictor:
    """Predict a client's most recent distinct requests (LRU guess).

    Stateless across flows: the "history" given at prediction time is
    the recency signal, so this baseline needs no training at all —
    it measures how far self-similarity alone goes.
    """

    def __init__(self) -> None:
        self.trained = True  # interface parity; nothing to fit

    def fit(self, sequences: Iterable[Sequence[str]]) -> "PerClientRecencyPredictor":
        return self

    def predict(self, history: Sequence[str], k: int = 1) -> List[str]:
        if k < 1:
            raise ValueError("k must be >= 1")
        out: List[str] = []
        for token in reversed(list(history)):
            if token not in out:
                out.append(token)
            if len(out) >= k:
                break
        return out
