"""URL tokenization for the prediction models.

Splits object URLs into structural parts (path segments, query
arguments) so the clustering rules can operate on typed pieces rather
than raw strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["TokenizedUrl", "tokenize_url"]


@dataclass(frozen=True)
class TokenizedUrl:
    """Structural decomposition of a URL path+query."""

    path_segments: Tuple[str, ...]
    #: Query arguments in original order.
    query_args: Tuple[Tuple[str, str], ...]

    def render(self) -> str:
        """Reassemble the URL string."""
        path = "/" + "/".join(self.path_segments)
        if not self.query_args:
            return path
        query = "&".join(
            f"{key}={value}" if value != "" else key
            for key, value in self.query_args
        )
        return f"{path}?{query}"


def tokenize_url(url: str) -> TokenizedUrl:
    """Decompose ``/a/b/c?x=1&y=2`` into segments and arguments.

    Tolerant of missing leading slash, empty segments, bare query
    keys, and fragments (which are stripped: clients do not send them
    to servers).
    """
    url, _, _ = url.partition("#")
    path, _, query = url.partition("?")
    segments = tuple(segment for segment in path.split("/") if segment)
    args: List[Tuple[str, str]] = []
    if query:
        for piece in query.split("&"):
            if not piece:
                continue
            key, sep, value = piece.partition("=")
            args.append((key, value if sep else ""))
    return TokenizedUrl(path_segments=segments, query_args=tuple(args))
