"""Interarrival-aware prediction — the paper's §5.2 future work.

"While our prediction analysis examines request access order, future
work can also take into account request interarrival time to better
inform prediction systems."

:class:`TimedNgramModel` augments the backoff ngram model with
per-transition gap statistics: for every observed ``previous → next``
transition it records the elapsed time, and at prediction time it
returns each candidate with its expected arrival gap.  A prefetcher
can use the gap to decide *whether a prefetch can pay off*: a
predicted request arriving in 50 ms cannot be beaten by an 80 ms
origin fetch, and one arriving beyond the object's TTL would find the
prefetched copy expired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .model import BackoffNgramModel

__all__ = ["GapStats", "TimedPrediction", "TimedNgramModel"]

_MAX_SAMPLES_PER_TRANSITION = 256


@dataclass
class GapStats:
    """Streaming gap statistics for one transition."""

    samples: List[float]

    def add(self, gap_s: float) -> None:
        # Reservoir-less cap: early samples suffice for quantiles of
        # app think-time distributions, which are stationary.
        if len(self.samples) < _MAX_SAMPLES_PER_TRANSITION:
            self.samples.append(gap_s)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def median_s(self) -> float:
        return float(np.median(self.samples))

    def percentile_s(self, q: float) -> float:
        return float(np.percentile(self.samples, q))


@dataclass(frozen=True)
class TimedPrediction:
    """One predicted next request with its expected timing."""

    token: str
    score: float
    expected_gap_s: Optional[float]  # None when timing was never seen


class TimedNgramModel:
    """Backoff ngram model with per-transition interarrival stats.

    Training consumes *timed* sequences: lists of ``(timestamp,
    token)`` pairs per client flow.  Order statistics are learned by
    the wrapped :class:`BackoffNgramModel`; gaps are tracked for the
    bigram transitions (history length 1), which dominate prediction
    per Table 3.
    """

    def __init__(self, order: int = 1, backoff_discount: float = 0.4) -> None:
        self.model = BackoffNgramModel(order=order, backoff_discount=backoff_discount)
        self._gaps: Dict[Tuple[str, str], GapStats] = {}

    # -- training ---------------------------------------------------------

    def fit(
        self, timed_sequences: Iterable[Sequence[Tuple[float, str]]]
    ) -> "TimedNgramModel":
        for sequence in timed_sequences:
            self.add_sequence(sequence)
        return self

    def add_sequence(self, sequence: Sequence[Tuple[float, str]]) -> None:
        tokens = [token for _, token in sequence]
        self.model.add_sequence(tokens)
        for (prev_time, prev_token), (next_time, next_token) in zip(
            sequence, sequence[1:]
        ):
            gap = next_time - prev_time
            if gap < 0:
                continue
            stats = self._gaps.get((prev_token, next_token))
            if stats is None:
                stats = GapStats(samples=[])
                self._gaps[(prev_token, next_token)] = stats
            stats.add(gap)

    # -- prediction ------------------------------------------------------------

    def predict(
        self, history: Sequence[str], k: int = 1
    ) -> List[TimedPrediction]:
        """Top-K candidates with scores and expected gaps."""
        previous = history[-1] if history else None
        out: List[TimedPrediction] = []
        for token, score in self.model.scored_predictions(history, k):
            stats = (
                self._gaps.get((previous, token)) if previous is not None else None
            )
            out.append(
                TimedPrediction(
                    token=token,
                    score=score,
                    expected_gap_s=stats.median_s if stats and stats.count else None,
                )
            )
        return out

    def expected_gap(self, previous: str, successor: str) -> Optional[float]:
        """Median observed gap of a transition, if ever seen."""
        stats = self._gaps.get((previous, successor))
        if stats is None or not stats.count:
            return None
        return stats.median_s

    def transition_gap_stats(self, previous: str, successor: str) -> Optional[GapStats]:
        return self._gaps.get((previous, successor))

    # -- prefetch policy helper ------------------------------------------------

    def worthwhile_prefetches(
        self,
        history: Sequence[str],
        k: int,
        min_lead_s: float,
        max_lead_s: Optional[float] = None,
    ) -> List[TimedPrediction]:
        """Predictions whose timing makes a prefetch useful.

        ``min_lead_s`` — skip candidates expected sooner than an
        origin fetch completes (the prefetch cannot win the race).
        ``max_lead_s`` — skip candidates expected after the cached
        copy would have expired (typically the object TTL).
        Candidates with unknown timing are kept (order evidence
        alone is how the paper's base proposal works).
        """
        selected: List[TimedPrediction] = []
        for prediction in self.predict(history, k):
            gap = prediction.expected_gap_s
            if gap is not None:
                if gap < min_lead_s:
                    continue
                if max_lead_s is not None and gap > max_lead_s:
                    continue
            selected.append(prediction)
        return selected
