"""Deterministic log sampling.

Cutting a dataset down for a cheaper analysis pass must not break the
structures the analyses need: uniform per-*request* sampling destroys
client flows (a 10% request sample turns a 20-request session into 2
disconnected requests), so flow-based analyses (§5) need per-*client*
sampling — keep all requests of a sampled client, none of the others.

Sampling decisions hash the key with a seed rather than using a
stateful RNG, so they are stable across runs, across machines, and
across datasets sharing clients.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Iterator, Optional

from .record import RequestLog

__all__ = ["keep_fraction", "sample_clients", "sample_requests", "sample_objects"]


def keep_fraction(key: str, fraction: float, seed: int = 0) -> bool:
    """Deterministic Bernoulli(fraction) decision for a key."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    bucket = int.from_bytes(digest[:8], "big") / 2**64
    return bucket < fraction


def sample_clients(
    logs: Iterable[RequestLog], fraction: float, seed: int = 0
) -> Iterator[RequestLog]:
    """Keep every request of a ``fraction`` of clients.

    Preserves client flows intact — the right way to downsample for
    the §5 periodicity and prediction analyses.
    """
    for record in logs:
        if keep_fraction(record.client_id, fraction, seed):
            yield record


def sample_objects(
    logs: Iterable[RequestLog], fraction: float, seed: int = 0
) -> Iterator[RequestLog]:
    """Keep every request to a ``fraction`` of objects.

    Preserves object flows intact (all clients of a kept object stay),
    at the cost of fragmenting client flows.
    """
    for record in logs:
        if keep_fraction(record.object_id, fraction, seed):
            yield record


def sample_requests(
    logs: Iterable[RequestLog], fraction: float, seed: int = 0
) -> Iterator[RequestLog]:
    """Uniform per-request sampling.

    Fine for marginal statistics (§4); wrong for flow analyses — use
    :func:`sample_clients` there.  The decision keys on
    ``(client, timestamp, url)``, so identical records sample
    identically in every stream and two same-instant requests from
    one client to different URLs still decide independently.
    """
    for record in logs:
        key = f"{record.client_id}@{record.timestamp!r}@{record.url}"
        if keep_fraction(key, fraction, seed):
            yield record
