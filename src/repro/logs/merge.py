"""Log-stream merging and splitting utilities.

CDN datasets arrive as one file per edge machine (the paper collects
"from all machines in three CDN vantage points").  Analyses need one
time-ordered stream; collection needs the reverse.  Both directions
here are streaming: :func:`merge_sorted` is a k-way heap merge over
lazily-read inputs, so terabyte-scale collections would stream in
O(k) memory.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Union

from .io import PathLike, read_logs, write_logs
from .record import RequestLog

__all__ = ["merge_sorted", "merge_files", "split_by_edge", "is_time_ordered"]


def merge_sorted(
    streams: Sequence[Iterable[RequestLog]],
) -> Iterator[RequestLog]:
    """K-way merge of time-ordered log streams into one stream.

    Each input must itself be time-ordered (as per-edge logs are);
    the output is globally time-ordered.  Ties preserve input order.
    """
    def keyed(index: int, stream: Iterable[RequestLog]):
        for position, record in enumerate(stream):
            yield (record.timestamp, index, position, record)

    merged = heapq.merge(
        *(keyed(index, stream) for index, stream in enumerate(streams))
    )
    for _, _, _, record in merged:
        yield record


def merge_files(paths: Sequence[PathLike], out_path: PathLike) -> int:
    """Merge per-edge log files into one time-ordered file."""
    streams = [read_logs(path) for path in paths]
    return write_logs(merge_sorted(streams), out_path)


def split_by_edge(
    logs: Iterable[RequestLog],
) -> Dict[str, List[RequestLog]]:
    """Partition a stream by serving edge (the collection inverse)."""
    out: Dict[str, List[RequestLog]] = {}
    for record in logs:
        out.setdefault(record.edge_id, []).append(record)
    return out


def is_time_ordered(logs: Iterable[RequestLog]) -> bool:
    """Whether a stream is non-decreasing in timestamp."""
    previous = float("-inf")
    for record in logs:
        if record.timestamp < previous:
            return False
        previous = record.timestamp
    return True
