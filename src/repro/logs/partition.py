"""Time-partitioned log storage.

Production log pipelines store request logs as one file per time
bucket per edge (``edge-1/2019-06-01-14.jsonl.gz`` …), not as one
giant file.  This module writes a log stream into that layout and
reads it back as one time-ordered stream, so the analysis code can
work against a directory exactly as it works against a file.

Layout::

    <root>/<edge_id>/<bucket>.<ext>

where ``bucket`` is the UTC hour (``YYYY-mm-dd-HH``) of the records
inside.  Readers merge across edges with the streaming k-way merge.
"""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .io import PathLike, read_logs, write_logs
from .merge import merge_sorted
from .record import RequestLog

__all__ = [
    "bucket_name",
    "write_partitioned",
    "iter_partition_files",
    "read_partitioned",
]


def bucket_name(timestamp: float) -> str:
    """UTC-hour bucket for a timestamp: ``2019-06-01-14``."""
    moment = datetime.datetime.fromtimestamp(
        timestamp, tz=datetime.timezone.utc
    )
    return moment.strftime("%Y-%m-%d-%H")


def write_partitioned(
    logs: Iterable[RequestLog],
    root: PathLike,
    fmt: str = "jsonl.gz",
) -> Dict[str, int]:
    """Write a log stream into the per-edge, per-hour layout.

    Records are grouped in memory per (edge, bucket) before writing —
    fine for dataset-scale logs; a production writer would append.
    Returns a mapping of relative file path → record count.
    """
    if fmt not in ("jsonl", "jsonl.gz", "tsv", "tsv.gz"):
        raise ValueError(f"unsupported partition format: {fmt!r}")
    root = Path(root)
    groups: Dict[Tuple[str, str], List[RequestLog]] = {}
    for record in logs:
        key = (record.edge_id, bucket_name(record.timestamp))
        groups.setdefault(key, []).append(record)

    written: Dict[str, int] = {}
    for (edge_id, bucket), records in sorted(groups.items()):
        directory = root / edge_id
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{bucket}.{fmt}"
        records.sort(key=lambda record: record.timestamp)
        written[str(path.relative_to(root))] = write_logs(records, path)
    return written


def iter_partition_files(
    root: PathLike, edge_id: Optional[str] = None
) -> List[Path]:
    """Partition files under ``root``, bucket-ordered per edge."""
    root = Path(root)
    if not root.exists():
        raise FileNotFoundError(f"no partition root at {root}")
    edges = (
        [root / edge_id]
        if edge_id is not None
        else sorted(p for p in root.iterdir() if p.is_dir())
    )
    files: List[Path] = []
    for directory in edges:
        if not directory.exists():
            raise FileNotFoundError(f"no such edge partition: {directory}")
        files.extend(sorted(directory.iterdir()))
    return files


def read_partitioned(
    root: PathLike,
    edge_id: Optional[str] = None,
    on_error: str = "raise",
) -> Iterator[RequestLog]:
    """Read a partitioned layout back as one time-ordered stream.

    Each edge's hour files concatenate into one time-ordered stream
    (hours are disjoint and internally sorted); streams from
    different edges are k-way merged.
    """
    root = Path(root)
    per_edge: Dict[str, List[Path]] = {}
    for path in iter_partition_files(root, edge_id):
        per_edge.setdefault(path.parent.name, []).append(path)

    def edge_stream(paths: List[Path]) -> Iterator[RequestLog]:
        for path in paths:
            yield from read_logs(path, on_error=on_error)

    streams = [edge_stream(paths) for paths in per_edge.values()]
    return merge_sorted(streams)
