"""Client IP anonymization.

The paper's logs carry "a client IP address that is hashed for
anonymity" (§3.1).  We reproduce that with a *keyed* hash (HMAC-SHA256,
truncated): a plain hash of an IPv4 address is trivially reversible by
enumerating the 2^32 address space, so a per-dataset secret key is
mandatory.  The same key must be used across a dataset so that one
client maps to one stable pseudonym — flow analyses (§5) depend on it.
"""

from __future__ import annotations

import hashlib
import hmac
import ipaddress
import secrets
from typing import Union

__all__ = ["IpAnonymizer", "generate_key"]

_DIGEST_HEX_CHARS = 16  # 64 bits of pseudonym is ample for dataset-scale joins


def generate_key() -> bytes:
    """Return a fresh random 32-byte anonymization key."""
    return secrets.token_bytes(32)


class IpAnonymizer:
    """Stable, keyed pseudonymization of client IP addresses.

    Parameters
    ----------
    key:
        Secret key.  All logs in one dataset must share it.  Pass
        ``bytes`` or a hex string.

    Examples
    --------
    >>> anon = IpAnonymizer(b"0" * 32)
    >>> anon.anonymize("192.0.2.7") == anon.anonymize("192.0.2.7")
    True
    >>> anon.anonymize("192.0.2.7") == anon.anonymize("192.0.2.8")
    False
    """

    def __init__(self, key: Union[bytes, str]) -> None:
        if isinstance(key, str):
            key = bytes.fromhex(key)
        if len(key) < 16:
            raise ValueError("anonymization key must be at least 16 bytes")
        self._key = key

    def anonymize(self, ip: str) -> str:
        """Return the stable pseudonym for an IPv4/IPv6 address.

        The address is canonicalized first so that equivalent textual
        forms (e.g. ``::ffff:192.0.2.7`` vs ``192.0.2.7``) map to the
        same pseudonym.
        """
        addr = ipaddress.ip_address(ip)
        if isinstance(addr, ipaddress.IPv6Address) and addr.ipv4_mapped:
            addr = addr.ipv4_mapped
        digest = hmac.new(self._key, addr.packed, hashlib.sha256).hexdigest()
        return digest[:_DIGEST_HEX_CHARS]

    def anonymize_opaque(self, identifier: str) -> str:
        """Pseudonymize a non-IP client identifier (e.g. device id)."""
        digest = hmac.new(
            self._key, identifier.encode("utf-8"), hashlib.sha256
        ).hexdigest()
        return digest[:_DIGEST_HEX_CHARS]
