"""Dataset summary statistics (the paper's Table 2).

:class:`DatasetSummary` is a single-pass, constant-memory accumulator
that produces the row the paper reports per dataset — number of logs,
duration, number of domains — plus the auxiliary counts the rest of
the paper leans on (unique clients/objects, content-type mix, method
mix, cache mix, byte volumes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from .record import CacheStatus, RequestLog

__all__ = ["DatasetSummary", "summarize"]


@dataclass
class DatasetSummary:
    """Streaming accumulator of dataset-level statistics."""

    total_logs: int = 0
    first_timestamp: Optional[float] = None
    last_timestamp: Optional[float] = None
    domains: set = field(default_factory=set)
    clients: set = field(default_factory=set)
    objects: set = field(default_factory=set)
    content_types: Counter = field(default_factory=Counter)
    methods: Counter = field(default_factory=Counter)
    cache_statuses: Counter = field(default_factory=Counter)
    total_response_bytes: int = 0
    total_request_bytes: int = 0

    def add(self, record: RequestLog) -> None:
        """Fold one record into the summary."""
        self.total_logs += 1
        if self.first_timestamp is None or record.timestamp < self.first_timestamp:
            self.first_timestamp = record.timestamp
        if self.last_timestamp is None or record.timestamp > self.last_timestamp:
            self.last_timestamp = record.timestamp
        self.domains.add(record.domain)
        self.clients.add(record.client_id)
        self.objects.add(record.object_id)
        self.content_types[record.content_type] += 1
        self.methods[record.method.value] += 1
        self.cache_statuses[record.cache_status.value] += 1
        self.total_response_bytes += record.response_bytes
        self.total_request_bytes += record.request_bytes

    def update(self, records: Iterable[RequestLog]) -> "DatasetSummary":
        """Fold an iterable of records; returns self for chaining."""
        for record in records:
            self.add(record)
        return self

    def merge(self, other: "DatasetSummary") -> "DatasetSummary":
        """Combine two partial summaries; exact (counters and sets)."""
        self.total_logs += other.total_logs
        if other.first_timestamp is not None and (
            self.first_timestamp is None
            or other.first_timestamp < self.first_timestamp
        ):
            self.first_timestamp = other.first_timestamp
        if other.last_timestamp is not None and (
            self.last_timestamp is None
            or other.last_timestamp > self.last_timestamp
        ):
            self.last_timestamp = other.last_timestamp
        self.domains |= other.domains
        self.clients |= other.clients
        self.objects |= other.objects
        self.content_types.update(other.content_types)
        self.methods.update(other.methods)
        self.cache_statuses.update(other.cache_statuses)
        self.total_response_bytes += other.total_response_bytes
        self.total_request_bytes += other.total_request_bytes
        return self

    # -- derived metrics -------------------------------------------------

    @property
    def duration_seconds(self) -> float:
        """Span between first and last request (0 for empty/singleton)."""
        if self.first_timestamp is None or self.last_timestamp is None:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def num_objects(self) -> int:
        return len(self.objects)

    @property
    def json_fraction(self) -> float:
        """Fraction of requests carrying application/json responses."""
        if not self.total_logs:
            return 0.0
        return self.content_types.get("application/json", 0) / self.total_logs

    @property
    def get_fraction(self) -> float:
        """Fraction of requests using the GET method."""
        if not self.total_logs:
            return 0.0
        return self.methods.get("GET", 0) / self.total_logs

    @property
    def uncacheable_fraction(self) -> float:
        """Fraction of responses marked no-store by customer policy."""
        if not self.total_logs:
            return 0.0
        return (
            self.cache_statuses.get(CacheStatus.NO_STORE.value, 0) / self.total_logs
        )

    @property
    def hit_ratio(self) -> float:
        """Cache hits over cacheable responses (hits + misses)."""
        hits = self.cache_statuses.get(CacheStatus.HIT.value, 0)
        misses = self.cache_statuses.get(CacheStatus.MISS.value, 0)
        if hits + misses == 0:
            return 0.0
        return hits / (hits + misses)

    def to_table_row(self, name: str) -> Dict[str, object]:
        """Render the paper's Table 2 row for this dataset."""
        return {
            "dataset": name,
            "num_logs": self.total_logs,
            "duration_seconds": round(self.duration_seconds, 3),
            "num_domains": self.num_domains,
            "num_clients": self.num_clients,
            "num_objects": self.num_objects,
        }


def summarize(records: Iterable[RequestLog]) -> DatasetSummary:
    """Convenience one-shot summary of an iterable of records."""
    return DatasetSummary().update(records)
