"""Edge-server request-log substrate.

This package stands in for the CDN log pipeline the paper reads from:
record types (:mod:`repro.logs.record`), schema validation
(:mod:`repro.logs.schema`), keyed IP anonymization
(:mod:`repro.logs.anonymize`), streaming serialization
(:mod:`repro.logs.io`), composable filters (:mod:`repro.logs.filters`),
and single-pass dataset summaries (:mod:`repro.logs.summary`).
"""

from .anonymize import IpAnonymizer, generate_key
from .filters import (
    chain_filters,
    content_type_in,
    domains_in,
    html_only,
    json_only,
    methods_in,
    status_class,
    time_window,
)
from .partition import (
    bucket_name,
    iter_partition_files,
    read_partitioned,
    write_partitioned,
)
from .merge import is_time_ordered, merge_files, merge_sorted, split_by_edge
from .io import (
    LineStats,
    read_jsonl,
    read_logs,
    read_tsv,
    write_jsonl,
    write_logs,
    write_tsv,
)
from .sampling import keep_fraction, sample_clients, sample_objects, sample_requests
from .record import CacheStatus, HttpMethod, RequestLog, client_key, object_key
from .schema import DEFAULT_SCHEMA, FieldSpec, LogSchema, SchemaError, ValidationIssue
from .summary import DatasetSummary, summarize

__all__ = [
    "CacheStatus",
    "HttpMethod",
    "RequestLog",
    "client_key",
    "object_key",
    "IpAnonymizer",
    "generate_key",
    "LogSchema",
    "FieldSpec",
    "SchemaError",
    "ValidationIssue",
    "DEFAULT_SCHEMA",
    "LineStats",
    "read_jsonl",
    "write_jsonl",
    "read_tsv",
    "write_tsv",
    "read_logs",
    "write_logs",
    "json_only",
    "html_only",
    "content_type_in",
    "time_window",
    "domains_in",
    "methods_in",
    "status_class",
    "chain_filters",
    "bucket_name",
    "write_partitioned",
    "read_partitioned",
    "iter_partition_files",
    "merge_sorted",
    "merge_files",
    "split_by_edge",
    "is_time_ordered",
    "keep_fraction",
    "sample_clients",
    "sample_objects",
    "sample_requests",
    "DatasetSummary",
    "summarize",
]
