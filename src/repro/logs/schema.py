"""Log schema definition and validation.

A dataset is only useful if malformed rows are caught at the boundary
rather than deep inside an analysis.  :class:`LogSchema` centralizes
the field-level contracts of :class:`repro.logs.record.RequestLog` and
offers both strict (raise) and lenient (collect) validation modes, the
latter matching how real log pipelines quarantine bad rows instead of
aborting a whole run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from .record import CacheStatus, HttpMethod, RequestLog

__all__ = ["FieldSpec", "LogSchema", "SchemaError", "ValidationIssue"]


class SchemaError(ValueError):
    """Raised in strict mode when a record violates the schema."""


@dataclass(frozen=True)
class ValidationIssue:
    """A single schema violation found in a record.

    Attributes
    ----------
    field:
        Name of the offending field.
    message:
        Human-readable description of the violation.
    value:
        The offending value (repr-truncated for giant values).
    """

    field: str
    message: str
    value: Any = None

    def __str__(self) -> str:
        shown = repr(self.value)
        if len(shown) > 80:
            shown = shown[:77] + "..."
        return f"{self.field}: {self.message} (got {shown})"


@dataclass(frozen=True)
class FieldSpec:
    """Contract for one log field."""

    name: str
    types: Tuple[type, ...]
    required: bool = True
    check: Optional[Callable[[Any], Optional[str]]] = None

    def validate(self, value: Any) -> List[ValidationIssue]:
        """Return the issues this value raises (empty when valid)."""
        issues: List[ValidationIssue] = []
        if value is None:
            if self.required:
                issues.append(ValidationIssue(self.name, "required field is None"))
            return issues
        if not isinstance(value, self.types):
            expected = "/".join(t.__name__ for t in self.types)
            issues.append(
                ValidationIssue(self.name, f"expected {expected}", value)
            )
            return issues
        if self.check is not None:
            message = self.check(value)
            if message:
                issues.append(ValidationIssue(self.name, message, value))
        return issues


def _check_timestamp(value: float) -> Optional[str]:
    if value < 0:
        return "timestamp must be non-negative epoch seconds"
    return None


def _check_status(value: int) -> Optional[str]:
    if not 100 <= value <= 599:
        return "status must be a valid HTTP status code"
    return None


def _check_non_negative(value: float) -> Optional[str]:
    if value < 0:
        return "must be non-negative"
    return None


def _check_non_empty(value: str) -> Optional[str]:
    if not value:
        return "must be non-empty"
    return None


def _check_url(value: str) -> Optional[str]:
    if not value.startswith("/"):
        return "url must be an absolute path starting with '/'"
    if any(c in value for c in ("\n", "\r", "\t", " ")):
        return "url must not contain whitespace"
    return None


def _check_mime(value: str) -> Optional[str]:
    bare = value.split(";", 1)[0].strip()
    if "/" not in bare:
        return "mime type must look like type/subtype"
    return None


class LogSchema:
    """The canonical edge-log schema.

    Use :meth:`validate_record` for one row and :meth:`clean` to
    stream-filter a whole dataset, separating valid records from
    quarantined ones.
    """

    def __init__(self) -> None:
        self.fields: Dict[str, FieldSpec] = {
            spec.name: spec
            for spec in (
                FieldSpec("timestamp", (float, int), check=_check_timestamp),
                FieldSpec("client_ip_hash", (str,), check=_check_non_empty),
                FieldSpec("user_agent", (str,), required=False),
                FieldSpec("method", (HttpMethod,)),
                FieldSpec("domain", (str,), check=_check_non_empty),
                FieldSpec("url", (str,), check=_check_url),
                FieldSpec("mime_type", (str,), check=_check_mime),
                FieldSpec("status", (int,), check=_check_status),
                FieldSpec("response_bytes", (int,), check=_check_non_negative),
                FieldSpec("cache_status", (CacheStatus,)),
                FieldSpec("request_bytes", (int,), check=_check_non_negative),
                FieldSpec("ttl_seconds", (float, int), required=False,
                          check=_check_non_negative),
                FieldSpec("edge_id", (str,), check=_check_non_empty),
            )
        }

    def validate_record(self, record: RequestLog) -> List[ValidationIssue]:
        """Return all schema issues in ``record`` (empty when valid)."""
        issues: List[ValidationIssue] = []
        for name, spec in self.fields.items():
            issues.extend(spec.validate(getattr(record, name)))
        # Cross-field invariants.
        if record.cache_status is CacheStatus.NO_STORE and record.ttl_seconds:
            issues.append(
                ValidationIssue(
                    "ttl_seconds",
                    "uncacheable responses must not carry a TTL",
                    record.ttl_seconds,
                )
            )
        if record.method is HttpMethod.GET and record.request_bytes:
            issues.append(
                ValidationIssue(
                    "request_bytes",
                    "GET requests must not carry a request body",
                    record.request_bytes,
                )
            )
        return issues

    def require_valid(self, record: RequestLog) -> RequestLog:
        """Strict mode: raise :class:`SchemaError` on the first bad field."""
        issues = self.validate_record(record)
        if issues:
            raise SchemaError("; ".join(str(issue) for issue in issues))
        return record

    def clean(
        self, records: Iterable[RequestLog]
    ) -> Tuple[List[RequestLog], List[Tuple[RequestLog, List[ValidationIssue]]]]:
        """Split a dataset into (valid, quarantined) records."""
        valid: List[RequestLog] = []
        quarantined: List[Tuple[RequestLog, List[ValidationIssue]]] = []
        for record in records:
            issues = self.validate_record(record)
            if issues:
                quarantined.append((record, issues))
            else:
                valid.append(record)
        return valid, quarantined

    def iter_valid(self, records: Iterable[RequestLog]) -> Iterator[RequestLog]:
        """Lazily yield only schema-valid records."""
        for record in records:
            if not self.validate_record(record):
                yield record


DEFAULT_SCHEMA = LogSchema()
