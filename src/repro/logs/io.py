"""Streaming log serialization.

Two on-disk formats are supported, both line-oriented so that datasets
can be processed without loading them in memory:

* **JSONL** — one JSON object per line; self-describing, the default.
* **TSV** — one tab-separated row per line with a fixed column order;
  ~2x smaller and closer to real CDN log formats.

Both transparently read/write gzip when the filename ends in ``.gz``.

Malformed lines are never silently lost: with ``on_error="skip"`` the
reader drops the line *and counts it* — pass a :class:`LineStats` as
``stats`` to observe ``skipped`` (and ``parsed``) per read.  The
``io.truncated_gzip`` and ``io.malformed_line`` fault hooks (see
``repro.faults``) damage the line stream deterministically to test
exactly these paths; both are no-ops unless a plan is installed.
"""

from __future__ import annotations

import gzip
import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from ..faults import runtime as fault_runtime
from .record import CacheStatus, HttpMethod, RequestLog

__all__ = [
    "LineStats",
    "read_jsonl",
    "write_jsonl",
    "read_tsv",
    "write_tsv",
    "read_logs",
    "write_logs",
    "LogTailer",
    "tail_records",
    "TSV_COLUMNS",
]

PathLike = Union[str, Path]

TSV_COLUMNS: List[str] = [
    "timestamp",
    "client_ip_hash",
    "user_agent",
    "method",
    "domain",
    "url",
    "mime_type",
    "status",
    "response_bytes",
    "cache_status",
    "request_bytes",
    "ttl_seconds",
    "edge_id",
]

_TSV_NULL = "-"


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode + "t", encoding="utf-8")


@dataclass
class LineStats:
    """Per-read line accounting (pass as ``stats`` to a reader).

    ``parsed + skipped`` covers every non-blank line seen, so a
    lenient read is auditable: nothing disappears without a count.
    """

    parsed: int = 0
    skipped: int = 0


def _fault_lines(path: PathLike, handle: IO[str]) -> Iterator[Tuple[int, str]]:
    """Numbered lines of ``handle``, damaged per the installed fault plan.

    With no plan installed (the production path) this is a bare
    ``enumerate``.  ``io.truncated_gzip`` raises ``EOFError`` after
    ``param`` lines of a ``.gz`` file — the error a reader hits when a
    gzip member lost its tail; ``io.malformed_line`` replaces selected
    lines with torn-write garbage before parsing.  Both decisions are
    attempt-aware, so a retried read (engine ``retries``) comes back
    clean once the rule's ``times`` is exhausted.
    """
    plan = fault_runtime.active()
    if plan is None:
        yield from enumerate(handle, start=1)
        return
    attempt = fault_runtime.current_attempt()
    truncate = None
    if str(path).endswith(".gz"):
        truncate = plan.should_fire("io.truncated_gzip", str(path), attempt)
    for line_number, line in enumerate(handle, start=1):
        if truncate is not None and line_number > truncate.param:
            raise EOFError(
                f"Compressed file ended before the end-of-stream marker "
                f"was reached (injected truncation of {path})"
            )
        yield line_number, plan.corrupt_line(
            f"{path}:{line_number}", line, attempt
        )


# -- JSONL ---------------------------------------------------------------


def write_jsonl(records: Iterable[RequestLog], path: PathLike) -> int:
    """Write records as JSON lines; returns the number written."""
    count = 0
    with _open_text(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(
    path: PathLike, on_error: str = "raise", stats: Optional[LineStats] = None
) -> Iterator[RequestLog]:
    """Lazily yield records from a JSONL file (optionally gzipped).

    ``on_error`` is ``"raise"`` (default: abort with the offending
    line number) or ``"skip"`` (quarantine posture: corrupted lines —
    truncated writes, partial flushes — are dropped but tallied in
    ``stats.skipped``, as log pipelines must tolerate).
    """
    _check_on_error(on_error)
    with _open_text(path, "r") as handle:
        for line_number, line in _fault_lines(path, handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = RequestLog.from_dict(json.loads(line))
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                if on_error == "skip":
                    if stats is not None:
                        stats.skipped += 1
                    continue
                raise ValueError(
                    f"{path}: malformed JSONL record on line {line_number}: {exc}"
                ) from exc
            if stats is not None:
                stats.parsed += 1
            yield record


# -- TSV -----------------------------------------------------------------


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\t", "\\t")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
    )


def _unescape(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for char in it:
        if char != "\\":
            out.append(char)
            continue
        nxt = next(it, "")
        out.append({"t": "\t", "n": "\n", "r": "\r", "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


def _record_to_row(record: RequestLog) -> str:
    data = record.to_dict()
    cells: List[str] = []
    for column in TSV_COLUMNS:
        value = data[column]
        if value is None:
            cells.append(_TSV_NULL)
        elif isinstance(value, str):
            if not value:
                cells.append(_TSV_NULL)
            elif value == _TSV_NULL:
                # A literal "-" value must not collide with the null
                # marker; "\-" unescapes back to "-" on read.
                cells.append("\\" + _TSV_NULL)
            else:
                cells.append(_escape(value))
        else:
            cells.append(str(value))
    return "\t".join(cells)


def _row_to_record(row: str) -> RequestLog:
    cells = row.split("\t")
    if len(cells) != len(TSV_COLUMNS):
        raise ValueError(
            f"expected {len(TSV_COLUMNS)} columns, found {len(cells)}"
        )
    raw = dict(zip(TSV_COLUMNS, cells))
    user_agent: Optional[str] = (
        None if raw["user_agent"] == _TSV_NULL else _unescape(raw["user_agent"])
    )
    ttl: Optional[float] = (
        None if raw["ttl_seconds"] == _TSV_NULL else float(raw["ttl_seconds"])
    )
    return RequestLog(
        timestamp=float(raw["timestamp"]),
        client_ip_hash=raw["client_ip_hash"],
        user_agent=user_agent,
        method=HttpMethod(raw["method"]),
        domain=raw["domain"],
        url=_unescape(raw["url"]),
        mime_type=_unescape(raw["mime_type"]),
        status=int(raw["status"]),
        response_bytes=int(raw["response_bytes"]),
        cache_status=CacheStatus(raw["cache_status"]),
        request_bytes=int(raw["request_bytes"]),
        ttl_seconds=ttl,
        edge_id=raw["edge_id"],
    )


def write_tsv(records: Iterable[RequestLog], path: PathLike) -> int:
    """Write records as a headerless TSV file; returns the count."""
    count = 0
    with _open_text(path, "w") as handle:
        for record in records:
            handle.write(_record_to_row(record))
            handle.write("\n")
            count += 1
    return count


def read_tsv(
    path: PathLike, on_error: str = "raise", stats: Optional[LineStats] = None
) -> Iterator[RequestLog]:
    """Lazily yield records from a TSV file (optionally gzipped).

    See :func:`read_jsonl` for the ``on_error``/``stats`` contract.
    """
    _check_on_error(on_error)
    with _open_text(path, "r") as handle:
        for line_number, line in _fault_lines(path, handle):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                record = _row_to_record(line)
            except (ValueError, KeyError) as exc:
                if on_error == "skip":
                    if stats is not None:
                        stats.skipped += 1
                    continue
                raise ValueError(
                    f"{path}: malformed TSV record on line {line_number}: {exc}"
                ) from exc
            if stats is not None:
                stats.parsed += 1
            yield record


# -- incremental tail ----------------------------------------------------


class LogTailer:
    """Incremental reader over a growing log file.

    Each :meth:`poll` yields only the records appended since the last
    poll — the already-consumed prefix is never re-read (the tailer
    seeks straight to its byte offset).  A trailing line without a
    newline is treated as an in-flight partial write and buffered
    until a later poll completes it, so a record is never parsed from
    half a line.

    Only plain (non-gzip) JSONL/TSV files can be tailed: gzip members
    are not byte-addressable mid-stream.  A file that does not exist
    yet polls as empty until it appears.
    """

    def __init__(self, path: PathLike, on_error: str = "skip") -> None:
        _check_on_error(on_error)
        self.path = Path(path)
        if self.path.suffix == ".gz":
            raise ValueError(f"cannot tail a gzip file: {self.path}")
        self.format = _detect_format(self.path)
        self.on_error = on_error
        self.offset = 0
        self._partial = ""
        #: Malformed lines dropped so far (``on_error="skip"``).
        self.skipped = 0

    def poll(self) -> List[RequestLog]:
        """Records appended since the previous poll (possibly empty)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                data = handle.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        self.offset += len(data)
        text = self._partial + data.decode("utf-8")
        lines = text.split("\n")
        self._partial = lines.pop()  # "" after a complete final line
        records: List[RequestLog] = []
        for line in lines:
            line = line.strip() if self.format == "jsonl" else line.rstrip("\n")
            if not line:
                continue
            try:
                if self.format == "jsonl":
                    records.append(RequestLog.from_dict(json.loads(line)))
                else:
                    records.append(_row_to_record(line))
            except (json.JSONDecodeError, TypeError, ValueError, KeyError) as exc:
                if self.on_error == "skip":
                    self.skipped += 1
                    continue
                raise ValueError(
                    f"{self.path}: malformed {self.format} record while "
                    f"tailing: {exc}"
                ) from exc
        return records


def tail_records(
    path: PathLike,
    poll_interval: float = 0.1,
    idle_polls: Optional[int] = None,
    on_error: str = "skip",
) -> Iterator[RequestLog]:
    """Follow a growing log file, yielding newly appended records.

    Polls every ``poll_interval`` seconds.  With ``idle_polls=N`` the
    iterator ends after N consecutive empty polls (bounded tailing,
    for replays and tests); with the default ``None`` it follows
    forever, like ``tail -f``.
    """
    import time

    tailer = LogTailer(path, on_error=on_error)
    idle = 0
    while True:
        batch = tailer.poll()
        if batch:
            idle = 0
            for record in batch:
                yield record
            continue
        idle += 1
        if idle_polls is not None and idle >= idle_polls:
            return
        time.sleep(poll_interval)


# -- format dispatch -----------------------------------------------------


def _detect_format(path: PathLike) -> str:
    name = Path(path).name
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    if name.endswith(".jsonl"):
        return "jsonl"
    if name.endswith(".tsv"):
        return "tsv"
    raise ValueError(f"cannot infer log format from filename: {path!r}")


def write_logs(records: Iterable[RequestLog], path: PathLike) -> int:
    """Write records, picking the format from the file extension."""
    if _detect_format(path) == "jsonl":
        return write_jsonl(records, path)
    return write_tsv(records, path)


def read_logs(
    path: PathLike, on_error: str = "raise", stats: Optional[LineStats] = None
) -> Iterator[RequestLog]:
    """Read records, picking the format from the file extension."""
    if _detect_format(path) == "jsonl":
        return read_jsonl(path, on_error=on_error, stats=stats)
    return read_tsv(path, on_error=on_error, stats=stats)


def _check_on_error(on_error: str) -> None:
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
