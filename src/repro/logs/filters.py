"""Composable streaming filters over request logs.

The paper's analyses each start by slicing the dataset: JSON-only
(§3.2), a time window (Table 2), per-domain subsets (Figure 4), flows
above a request threshold (§5.1).  These helpers keep those slices
lazy and composable so multi-hundred-thousand-record datasets stream
through without copies.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence, Set

from .record import RequestLog

__all__ = [
    "json_only",
    "html_only",
    "content_type_in",
    "time_window",
    "domains_in",
    "methods_in",
    "status_class",
    "chain_filters",
    "LogFilter",
]

LogFilter = Callable[[RequestLog], bool]


def json_only(records: Iterable[RequestLog]) -> Iterator[RequestLog]:
    """Keep only ``application/json`` responses (the paper's filter)."""
    return (record for record in records if record.is_json)


def html_only(records: Iterable[RequestLog]) -> Iterator[RequestLog]:
    """Keep only ``text/html`` responses."""
    return (record for record in records if record.is_html)


def content_type_in(
    records: Iterable[RequestLog], content_types: Sequence[str]
) -> Iterator[RequestLog]:
    """Keep responses whose bare content type is in ``content_types``."""
    wanted: Set[str] = {ct.strip().lower() for ct in content_types}
    return (record for record in records if record.content_type in wanted)


def time_window(
    records: Iterable[RequestLog],
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Iterator[RequestLog]:
    """Keep records with ``start <= timestamp < end``.

    Either bound may be ``None`` (unbounded on that side).
    """
    for record in records:
        if start is not None and record.timestamp < start:
            continue
        if end is not None and record.timestamp >= end:
            continue
        yield record


def domains_in(
    records: Iterable[RequestLog], domains: Iterable[str]
) -> Iterator[RequestLog]:
    """Keep records for the given customer domains."""
    wanted = set(domains)
    return (record for record in records if record.domain in wanted)


def methods_in(
    records: Iterable[RequestLog], methods: Iterable[str]
) -> Iterator[RequestLog]:
    """Keep records whose HTTP method matches (case-insensitive)."""
    wanted = {method.upper() for method in methods}
    return (record for record in records if record.method.value in wanted)


def status_class(
    records: Iterable[RequestLog], klass: int
) -> Iterator[RequestLog]:
    """Keep records in an HTTP status class (2 → 2xx, 4 → 4xx, ...)."""
    if not 1 <= klass <= 5:
        raise ValueError("status class must be 1..5")
    low, high = klass * 100, klass * 100 + 99
    return (record for record in records if low <= record.status <= high)


def chain_filters(
    records: Iterable[RequestLog], *predicates: LogFilter
) -> Iterator[RequestLog]:
    """Apply arbitrary predicates in order, lazily."""
    for record in records:
        if all(predicate(record) for predicate in predicates):
            yield record
