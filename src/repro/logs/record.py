"""Edge-server request log records.

Each HTTP request hitting a CDN edge server produces one
:class:`RequestLog`.  The field set mirrors what the paper reports
collecting from Akamai edge servers (§3.1):

* the time of the request,
* object caching information,
* a client IP address *hashed for anonymity*, and
* select HTTP request/response header information, including
  user-agent, mime type, and object URL.

The record is deliberately a plain frozen dataclass: logs are produced
in bulk (millions of rows) and consumed by streaming analysis code, so
records must be cheap, hashable, and serialization-friendly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "CacheStatus",
    "HttpMethod",
    "RequestLog",
    "object_key",
    "client_key",
]


class HttpMethod(str, enum.Enum):
    """HTTP request methods observed on the CDN.

    The paper's request-type taxonomy (§3.2) maps ``GET`` to downloads
    and ``POST`` to uploads, per RFC 7231 conventions.  Other methods
    occur at trace levels and are retained for completeness.
    """

    GET = "GET"
    POST = "POST"
    PUT = "PUT"
    DELETE = "DELETE"
    HEAD = "HEAD"
    OPTIONS = "OPTIONS"
    PATCH = "PATCH"

    def is_download(self) -> bool:
        """Return True for methods that conventionally retrieve data."""
        return self in (HttpMethod.GET, HttpMethod.HEAD)

    def is_upload(self) -> bool:
        """Return True for methods that conventionally send data."""
        return self in (HttpMethod.POST, HttpMethod.PUT, HttpMethod.PATCH)


class CacheStatus(str, enum.Enum):
    """Cache disposition of a response at the edge server.

    ``NO_STORE`` responses belong to objects the CDN customer marked
    uncacheable; both hits and misses belong to cacheable objects.
    The paper's cacheability metric counts ``NO_STORE`` responses as
    uncacheable traffic (§4, Response Type).
    """

    HIT = "hit"
    MISS = "miss"
    NO_STORE = "no-store"

    @property
    def cacheable(self) -> bool:
        """Whether the object behind this response may be cached."""
        return self is not CacheStatus.NO_STORE


@dataclass(frozen=True)
class RequestLog:
    """One edge-server request log line.

    Attributes
    ----------
    timestamp:
        Request arrival time in epoch seconds (float, sub-second
        resolution preserved — periodicity analysis needs it).
    client_ip_hash:
        Keyed hash of the client IP (see :mod:`repro.logs.anonymize`).
        Never a raw address.
    user_agent:
        Raw ``User-Agent`` header value, or ``None`` when the client
        sent none (common for SDK/M2M traffic).
    method:
        HTTP method.
    domain:
        The customer domain serving the object (``Host`` header).
    url:
        Path plus query string of the requested object, e.g.
        ``/api/v2/stories?page=3``.  Together with :attr:`domain` it
        identifies an object flow.
    mime_type:
        ``Content-Type`` of the response, e.g.
        ``application/json; charset=utf-8``.
    status:
        HTTP response status code.
    response_bytes:
        Size of the response body in bytes.
    cache_status:
        Edge cache disposition for this response.
    request_bytes:
        Size of the request body in bytes (0 for GET).
    ttl_seconds:
        Remaining freshness lifetime assigned by customer policy,
        ``None`` for uncacheable objects.
    edge_id:
        Identifier of the serving edge machine (for multi-POP
        datasets).
    """

    timestamp: float
    client_ip_hash: str
    user_agent: Optional[str]
    method: HttpMethod
    domain: str
    url: str
    mime_type: str
    status: int = 200
    response_bytes: int = 0
    cache_status: CacheStatus = CacheStatus.MISS
    request_bytes: int = 0
    ttl_seconds: Optional[float] = None
    edge_id: str = "edge-0"

    def __post_init__(self) -> None:
        # An empty User-Agent header is semantically a missing one;
        # canonicalize so serialization formats agree.
        if self.user_agent == "":
            object.__setattr__(self, "user_agent", None)
        if isinstance(self.method, str) and not isinstance(self.method, HttpMethod):
            object.__setattr__(self, "method", HttpMethod(self.method.upper()))
        if isinstance(self.cache_status, str) and not isinstance(
            self.cache_status, CacheStatus
        ):
            object.__setattr__(self, "cache_status", CacheStatus(self.cache_status))

    # -- derived taxonomy properties ------------------------------------

    @property
    def content_type(self) -> str:
        """The bare media type, lowercased, parameters stripped.

        ``"application/json; charset=utf-8"`` → ``"application/json"``.
        """
        return self.mime_type.split(";", 1)[0].strip().lower()

    @property
    def is_json(self) -> bool:
        """True when the response carries ``application/json`` content.

        Matches the paper's filter (§3.2): requests whose mime type
        contains ``application/json`` (structured suffixes such as
        ``application/problem+json`` are intentionally *not* matched,
        mirroring the paper's exact-token filter).
        """
        return self.content_type == "application/json"

    @property
    def is_html(self) -> bool:
        """True when the response carries ``text/html`` content."""
        return self.content_type == "text/html"

    @property
    def is_upload(self) -> bool:
        """Request-type taxonomy: True for upload (POST-like) requests."""
        return self.method.is_upload()

    @property
    def is_download(self) -> bool:
        """Request-type taxonomy: True for download (GET-like) requests."""
        return self.method.is_download()

    @property
    def cacheable(self) -> bool:
        """Response-type taxonomy: whether the object is cacheable."""
        return self.cache_status.cacheable

    @property
    def object_id(self) -> str:
        """Globally unique object identifier (domain + URL)."""
        return object_key(self.domain, self.url)

    @property
    def client_id(self) -> str:
        """Client identifier: hashed IP + user agent, as in §5.1."""
        return client_key(self.client_ip_hash, self.user_agent)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-serializable dict with enum values flattened."""
        return {
            "timestamp": self.timestamp,
            "client_ip_hash": self.client_ip_hash,
            "user_agent": self.user_agent,
            "method": self.method.value,
            "domain": self.domain,
            "url": self.url,
            "mime_type": self.mime_type,
            "status": self.status,
            "response_bytes": self.response_bytes,
            "cache_status": self.cache_status.value,
            "request_bytes": self.request_bytes,
            "ttl_seconds": self.ttl_seconds,
            "edge_id": self.edge_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RequestLog":
        """Build a record from a mapping, ignoring unknown keys."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        return cls(**kwargs)

    def with_fields(self, **changes: Any) -> "RequestLog":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def object_key(domain: str, url: str) -> str:
    """Canonical object identifier used across flow analyses.

    The paper identifies an object by its unique URL in the dataset;
    since our synthetic URLs are paths, we qualify them with the
    domain to keep objects of different customers distinct.
    """
    return f"{domain}{url}"


def client_key(client_ip_hash: str, user_agent: Optional[str]) -> str:
    """Canonical client identifier (§5.1: user agent + anonymized IP)."""
    return f"{client_ip_hash}|{user_agent or ''}"
