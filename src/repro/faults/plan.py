"""Fault plans: seeded, deterministic schedules of injectable faults.

A :class:`FaultPlan` answers one question at every injection site:
*does this fault fire here, now?*  The answer is a pure function of
``(seed, site, key, attempt)``:

* **Selection** — a rule *selects* a key when the keyed BLAKE2b hash
  of ``seed|site|key`` falls below ``rate``.  Selection is stable:
  the same seed selects the same shards, files, and lines on every
  run, in every process, regardless of scheduling.
* **Transiency** — a selected key fires on attempts ``0..times-1``
  and succeeds from attempt ``times`` on.  A fault with
  ``times <= retries`` is *transient*: the hardening's retry path
  always clears it, which is what lets the chaos differential suite
  demand exact fault-free equality of results.

Because decisions are stateless, a plan pickles cleanly into
process-pool workers; the per-site fire counters are kept for
observability (CI uploads them) but are process-local best effort —
they intentionally carry no semantics.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from hashlib import blake2b
from typing import Dict, Optional, Sequence

__all__ = ["FAULT_SITES", "FaultRule", "FaultPlan", "InjectedFault"]

#: Every injection site wired into the stack.  Sites are consulted by
#: the component named in the prefix; ``param`` units per site:
#:
#: ``map.exception``     raise from the shard map function (no param)
#: ``map.hang``          sleep ``param`` seconds in the map function
#: ``map.worker_death``  ``os._exit`` the pool worker (thread/serial
#:                       backends degrade it to an exception)
#: ``checkpoint.torn``   persist a truncated checkpoint file
#: ``checkpoint.corrupt`` persist a bit-flipped checkpoint payload
#: ``io.truncated_gzip`` EOFError after ``param`` lines of a .gz read
#: ``io.malformed_line`` corrupt one log line before parsing
#: ``ingest.stall``      sleep ``param`` seconds before a source drains
FAULT_SITES = (
    "map.exception",
    "map.hang",
    "map.worker_death",
    "checkpoint.torn",
    "checkpoint.corrupt",
    "io.truncated_gzip",
    "io.malformed_line",
    "ingest.stall",
)

_HASH_SPAN = float(2**64)


class InjectedFault(RuntimeError):
    """An error raised by an injected fault, never by real code."""


@dataclass(frozen=True)
class FaultRule:
    """One fault site's schedule within a plan.

    ``rate`` is the fraction of keys selected (hash-deterministic,
    not sampled), ``times`` how many attempts fire before the fault
    clears, ``match`` an optional substring the key must contain, and
    ``param`` the site-specific magnitude (seconds to hang or stall,
    lines before a truncated read).
    """

    site: str
    rate: float = 1.0
    times: int = 1
    match: str = ""
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if self.times < 1:
            raise ValueError("times must be >= 1 (0 would never fire)")
        if self.param < 0:
            raise ValueError("param must be >= 0")


class FaultPlan:
    """A seeded schedule of faults, one rule per site."""

    def __init__(self, seed: int = 0, rules: Sequence[FaultRule] = ()) -> None:
        self.seed = seed
        self.rules: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self.rules:
                raise ValueError(f"duplicate rule for fault site {rule.site!r}")
            self.rules[rule.site] = rule
        self._fired: Counter = Counter()
        self._lock = threading.Lock()

    # -- decisions ---------------------------------------------------------

    def selects(self, site: str, key: str) -> bool:
        """Whether this plan selects ``key`` at ``site`` (attempt-free)."""
        rule = self.rules.get(site)
        if rule is None:
            return False
        return self._selects(rule, site, key)

    def _selects(self, rule: FaultRule, site: str, key: str) -> bool:
        if rule.match and rule.match not in key:
            return False
        digest = blake2b(
            f"{self.seed}|{site}|{key}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / _HASH_SPAN < rule.rate

    def should_fire(
        self, site: str, key: str, attempt: int = 0
    ) -> Optional[FaultRule]:
        """The rule to apply at ``(site, key, attempt)``, or ``None``.

        Deterministic: the same arguments always return the same
        decision.  Firing is recorded in the per-site counters.
        """
        rule = self.rules.get(site)
        if rule is None or attempt >= rule.times:
            return None
        if not self._selects(rule, site, key):
            return None
        with self._lock:
            self._fired[site] += 1
        return rule

    # -- site helpers --------------------------------------------------------

    def corrupt_line(self, key: str, line: str, attempt: int = 0) -> str:
        """The (possibly corrupted) form of one log line.

        When the ``io.malformed_line`` rule fires, the line is
        replaced by a torn-write lookalike: the first half of the
        original followed by an unterminated fragment — invalid JSON
        and an invalid TSV row alike.
        """
        if self.should_fire("io.malformed_line", key, attempt) is None:
            return line
        body = line.rstrip("\r\n")
        return body[: len(body) // 2] + '\x00{"torn'

    # -- observability -------------------------------------------------------

    def fired(self) -> Dict[str, int]:
        """Per-site fire counts (process-local, best effort)."""
        with self._lock:
            return dict(self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sites = ",".join(sorted(self.rules))
        return f"FaultPlan(seed={self.seed}, sites=[{sites}])"

    # -- pickling (locks don't cross process boundaries) ----------------------

    def __getstate__(self) -> dict:
        return {
            "seed": self.seed,
            "rules": list(self.rules.values()),
            "fired": dict(self._fired),
        }

    def __setstate__(self, state: dict) -> None:
        self.seed = state["seed"]
        self.rules = {rule.site: rule for rule in state["rules"]}
        self._fired = Counter(state["fired"])
        self._lock = threading.Lock()
