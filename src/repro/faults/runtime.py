"""Process-wide fault-plan installation and attempt context.

Injection sites are sprinkled through hot paths (``logs.io`` line
loops, the ingest worker, checkpoint saves), so the disabled path must
cost nothing beyond a module-global read: :func:`active` returns the
installed plan or ``None``, and every hook starts with that nil-check.

Two pieces of ambient state live here:

* the **installed plan** (module global) — set by
  :func:`installed` for the duration of a run.  In process-pool
  workers the executor re-installs the pickled plan around each shard
  attempt, so hooks behave identically on every backend.
* the **attempt number** (thread-local) — set by :func:`attempt`
  around each shard/read attempt so downstream hooks (gzip reads deep
  inside a map function, checkpoint saves) can make attempt-aware
  decisions without threading a parameter through every call.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from .plan import FaultPlan, FaultRule

__all__ = [
    "active",
    "attempt",
    "current_attempt",
    "installed",
    "should_fire",
]

_plan: Optional[FaultPlan] = None
_local = threading.local()


def active() -> Optional[FaultPlan]:
    """The currently installed fault plan, or ``None`` (the hot path)."""
    return _plan


def current_attempt() -> int:
    """The attempt number for the current thread (0 outside retries)."""
    return getattr(_local, "attempt", 0)


@contextmanager
def installed(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Install ``plan`` for the duration of the block.

    ``installed(None)`` is a no-op, so call sites can wrap
    unconditionally.  Re-entrant installs restore the previous plan on
    exit, which keeps nested runs (a stream resume inside a test that
    already installed a plan) well-behaved.

    The restore is compare-and-swap: an *abandoned* worker thread (a
    timed-out shard attempt still sleeping in an injected hang) that
    exits this context after a newer plan was installed must not
    clobber it — if someone else changed the global meanwhile, their
    install wins and this exit does nothing.
    """
    global _plan
    if plan is None:
        yield
        return
    previous = _plan
    _plan = plan
    try:
        yield
    finally:
        if _plan is plan:
            _plan = previous


@contextmanager
def attempt(n: int) -> Iterator[None]:
    """Set the thread's attempt number for the duration of the block."""
    previous = current_attempt()
    _local.attempt = n
    try:
        yield
    finally:
        _local.attempt = previous


def should_fire(site: str, key: str) -> Optional[FaultRule]:
    """Convenience hook: consult the installed plan at the current attempt.

    Returns ``None`` immediately when no plan is installed — the only
    cost a production run ever pays.
    """
    plan = _plan
    if plan is None:
        return None
    return plan.should_fire(site, key, current_attempt())
