"""Deterministic, seeded fault injection for the engine/stream stack.

Production CDN log pipelines live with partial failure: a shard hangs
on a slow NFS mount, a worker process is OOM-killed, a checkpoint
file is torn by a crash mid-write, a gzip partition is truncated by a
lost flush, a log line is half a JSON object.  ``repro.faults`` makes
every one of those failure modes *reproducible*: a
:class:`~repro.faults.plan.FaultPlan` is a seeded schedule of faults
that fires the same way on every run, so the hardening that survives
it — per-shard timeouts and retries, poison-shard quarantine,
checksum-validated checkpoints, skip-with-counter record parsing —
can be tested differentially (fault run == fault-free run, field by
field; see ``tests/test_chaos_differential.py``).

The injection sites live behind zero-overhead-when-disabled hooks:
each site asks :func:`repro.faults.runtime.active` for the installed
plan once (a module-global read) and does nothing further when no
plan is installed, so production runs pay a nil-check and nothing
else.  Plans are installed per run (``ShardExecutor(faults=plan)``,
``run_stream(faults=plan)``) and travel to process-pool workers as a
pickled argument — never ambiently.
"""

from .plan import FAULT_SITES, FaultPlan, FaultRule, InjectedFault
from . import runtime

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "runtime",
]
