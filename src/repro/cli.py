"""Command-line interface.

Subcommands mirror the reproduction workflow::

    repro-json-cdn generate  --dataset short --requests 100000 --out logs.jsonl.gz
    repro-json-cdn characterize --logs logs.jsonl.gz
    repro-json-cdn characterize --logs-dir parts/ --workers 4
    repro-json-cdn patterns  --dataset long --requests 60000
    repro-json-cdn periodicity --dataset long --workers 4
    repro-json-cdn ngram --dataset long --workers 4
    repro-json-cdn trend
    repro-json-cdn paper     --requests 60000
    repro-json-cdn engine-bench --requests 50000 --workers 4 --pipeline all
    repro-json-cdn stream --logs-dir parts/ --window 300 --watermark 60 \
        --emit windows.jsonl --checkpoint-dir ckpt/

``generate`` writes a synthetic dataset to disk; the analysis
commands accept ``--logs <file>``, ``--logs-dir <partitioned dir>``
(the layout written by ``repro.logs.partition``), or generate a
dataset on the fly.  ``--workers N`` routes the §4 characterization,
the §5.1 periodicity analysis (``periodicity``), and the §5.2 ngram
sweep (``ngram``) through the sharded engine (``repro.engine``);
``--checkpoint-dir`` makes any engine run resumable.  ``paper`` runs
the whole evaluation and prints every table and figure;
``engine-bench`` measures serial vs sharded runs of any (or all) of
the three engine pipelines on one dataset.  ``stream`` runs the
online windowed service (``repro.stream``) over a file, a partitioned
directory, a growing file (``--follow``) or stdin, emitting one JSONL
snapshot per sealed event-time window and resuming sealed windows
from ``--checkpoint-dir`` after a kill.

Every engine-backed command and ``stream`` also accept ``--metrics
FILE`` (export a metrics snapshot after the run: Prometheus text
exposition, or the JSON snapshot with a ``.json`` suffix) and
``--trace FILE`` (recorded stage spans as JSONL) — see
``repro.obs``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.trend import analyze_trend
from .core.pipeline import (
    render_ngram,
    render_periodicity,
    run_characterization,
    run_characterization_parallel,
    run_ngram_parallel,
    run_pattern_analysis,
    run_pattern_analysis_parallel,
    run_periodicity_parallel,
)
from .core.report import render_bar_chart
from .logs.io import read_logs, write_logs
from .synth.trend import TrendModel
from .synth.workload import WorkloadBuilder, long_term_config, short_term_config

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-json-cdn",
        description="Reproduction of 'Characterizing JSON Traffic Patterns on a CDN' (IMC 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--metrics", metavar="FILE", dest="metrics",
            help="write a metrics snapshot after the run "
                 "(.json for the JSON snapshot, anything else for "
                 "Prometheus text exposition)",
        )
        p.add_argument(
            "--trace", metavar="FILE", dest="trace",
            help="write recorded stage spans as JSONL after the run",
        )

    def add_dataset_args(
        p: argparse.ArgumentParser, engine: bool = False
    ) -> None:
        p.add_argument(
            "--dataset",
            choices=("short", "long"),
            default="short",
            help="dataset shape (Table 2): short=10min wide, long=24h narrow",
        )
        p.add_argument("--requests", type=int, default=50_000,
                       help="target JSON request count")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--logs", metavar="FILE",
                       help="read logs from FILE instead of generating")
        if engine:
            p.add_argument(
                "--logs-dir", metavar="DIR",
                help="read logs from a partitioned directory "
                     "(repro.logs.partition layout) instead of generating",
            )
            p.add_argument(
                "--workers", type=int, default=1,
                help="worker count for the sharded analysis engine "
                     "(1 = serial)",
            )
            p.add_argument(
                "--shard-timeout", type=float, default=None,
                metavar="SECONDS", dest="shard_timeout",
                help="abandon a pooled shard attempt after this many "
                     "seconds and retry it (thread/process backends)",
            )
            p.add_argument(
                "--retries", type=int, default=0,
                help="extra attempts per failed or timed-out shard, "
                     "with exponential backoff",
            )
            p.add_argument(
                "--lenient", action="store_true",
                help="skip (and count) malformed log lines instead of "
                     "failing the read",
            )
            add_obs_args(p)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    add_dataset_args(gen)
    gen.add_argument("--out", required=True, metavar="FILE",
                     help="output path (.jsonl/.tsv, optionally .gz)")

    cha = sub.add_parser("characterize", help="run the §4 characterization")
    add_dataset_args(cha, engine=True)
    cha.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist per-shard partial states for resumable runs",
    )

    pat = sub.add_parser("patterns", help="run the §5 pattern analyses")
    add_dataset_args(pat, engine=True)
    pat.add_argument("--permutations", type=int, default=100,
                     help="permutation count x for the period detector")
    pat.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist per-shard partial states for resumable runs",
    )

    per = sub.add_parser(
        "periodicity", help="run the §5.1 periodicity analysis"
    )
    add_dataset_args(per, engine=True)
    per.add_argument("--permutations", type=int, default=100,
                     help="permutation count x for the period detector")
    per.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist per-shard partial states for resumable runs",
    )

    ngram = sub.add_parser(
        "ngram", help="run the §5.2 ngram prediction sweep (Table 3)"
    )
    add_dataset_args(ngram, engine=True)
    ngram.add_argument("--order", type=int, default=1,
                       help="maximum ngram history length N")
    ngram.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist per-shard partial states for resumable runs",
    )

    trend = sub.add_parser("trend", help="print the Figure 1 ratio series")
    trend.add_argument("--seed", type=int, default=0)

    windows = sub.add_parser(
        "windows", help="windowed (streaming) traffic time series"
    )
    add_dataset_args(windows, engine=True)
    windows.add_argument("--window", type=float, default=300.0,
                         help="tumbling window width in seconds")

    stream = sub.add_parser(
        "stream",
        help="online windowed analysis service (event-time windows, "
             "watermarks, resumable checkpoints)",
    )
    add_dataset_args(stream)
    stream.add_argument(
        "--logs-dir", metavar="DIR",
        help="stream a partitioned log directory "
             "(repro.logs.partition layout)",
    )
    stream.add_argument(
        "--follow", metavar="FILE",
        help="tail a growing JSONL/TSV file instead of replaying",
    )
    stream.add_argument(
        "--stdin", action="store_true",
        help="read JSONL records from standard input",
    )
    stream.add_argument("--window", type=float, default=300.0,
                        help="window width in seconds")
    stream.add_argument(
        "--slide", type=float, default=None,
        help="slide in seconds (omit for tumbling windows)",
    )
    stream.add_argument(
        "--watermark", type=float, default=0.0,
        help="watermark lag in seconds: the event-time disorder budget",
    )
    stream.add_argument(
        "--emit", metavar="FILE",
        help="append one JSONL snapshot per sealed window "
             "('-' for stdout)",
    )
    stream.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist sealed windows; a restarted stream resumes "
             "without double-counting them",
    )
    stream.add_argument(
        "--ingest-workers", type=int, default=1,
        help="parallel source readers feeding the bounded queue",
    )
    stream.add_argument(
        "--queue-size", type=int, default=65_536,
        help="bounded ingest queue capacity (records)",
    )
    stream.add_argument(
        "--queue-policy", choices=("block", "drop"), default="block",
        help="full-queue behavior: backpressure (block) or counted "
             "shedding (drop)",
    )
    stream.add_argument("--permutations", type=int, default=20,
                        help="period-detector permutations per window")
    stream.add_argument("--top-k", type=int, default=5,
                        help="predicted next URLs per window snapshot")
    stream.add_argument(
        "--no-periods", action="store_true",
        help="skip per-window period detection (cheaper seals)",
    )
    stream.add_argument(
        "--no-predictions", action="store_true",
        help="skip the per-window ngram prediction model",
    )
    stream.add_argument(
        "--idle-polls", type=int, default=20,
        help="with --follow: stop after this many consecutive empty "
             "polls (0 = follow forever)",
    )
    add_obs_args(stream)

    paper = sub.add_parser("paper", help="reproduce every table and figure")
    add_dataset_args(paper, engine=True)

    validate = sub.add_parser(
        "validate",
        help="check a generated dataset against the paper's calibration targets",
    )
    validate.add_argument("--dataset", choices=("short", "long"), default="short")
    validate.add_argument("--requests", type=int, default=50_000)
    validate.add_argument("--seed", type=int, default=0)

    replay = sub.add_parser(
        "replay",
        help="what-if TTL sweep: replay a JSON trace under alternative policies",
    )
    add_dataset_args(replay, engine=True)
    replay.add_argument(
        "--ttls",
        default="30,300,3600",
        help="comma-separated TTLs (seconds) to sweep",
    )
    replay.add_argument("--edges", type=int, default=3,
                        help="edge caches to spread clients across")

    engine_bench = sub.add_parser(
        "engine-bench",
        help="measure serial vs sharded-engine characterization",
    )
    add_dataset_args(engine_bench, engine=True)
    engine_bench.set_defaults(workers=4)
    engine_bench.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="engine execution backend for the parallel run",
    )
    engine_bench.add_argument(
        "--pipeline",
        choices=("characterization", "periodicity", "ngram", "all"),
        default="characterization",
        help="which engine pipeline(s) to benchmark",
    )
    engine_bench.add_argument(
        "--permutations", type=int, default=20,
        help="period-detector permutation count for the periodicity bench",
    )

    sub.add_parser("experiments", help="list every reproducible artifact")
    return parser


def _build_dataset(args: argparse.Namespace):
    config = (
        short_term_config(args.requests, seed=args.seed)
        if args.dataset == "short"
        else long_term_config(args.requests, seed=args.seed)
    )
    return WorkloadBuilder(config).build()


def _load_or_generate(args: argparse.Namespace):
    on_error = "skip" if getattr(args, "lenient", False) else "raise"
    if getattr(args, "logs_dir", None):
        from .logs.partition import read_partitioned

        return list(read_partitioned(args.logs_dir, on_error=on_error)), None
    if args.logs:
        return list(read_logs(args.logs, on_error=on_error)), None
    dataset = _build_dataset(args)
    categories = {d.name: d.category.value for d in dataset.domains}
    return dataset.logs, categories


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """The hardening knobs every engine-backed command forwards."""
    return dict(
        shard_timeout_s=getattr(args, "shard_timeout", None),
        retries=getattr(args, "retries", 0),
        lenient=getattr(args, "lenient", False),
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    count = write_logs(dataset.logs, args.out)
    print(f"wrote {count} logs to {args.out}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    workers = getattr(args, "workers", 1)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if getattr(args, "logs_dir", None) and (workers > 1 or checkpoint_dir):
        # Engine path straight off the partitioned directory: shards
        # stream their own files, nothing materializes up front.
        report = run_characterization_parallel(
            logs_dir=args.logs_dir,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            **_engine_kwargs(args),
        )
    else:
        logs, categories = _load_or_generate(args)
        if workers > 1 or checkpoint_dir:
            report = run_characterization_parallel(
                logs, categories, workers=workers,
                checkpoint_dir=checkpoint_dir, **_engine_kwargs(args),
            )
        else:
            report = run_characterization(logs, categories)
    print(report.render(args.dataset))
    return 0


def _cmd_patterns(args: argparse.Namespace) -> int:
    from .periodicity.detector import DetectorConfig

    detector_config = DetectorConfig(permutations=args.permutations)
    workers = getattr(args, "workers", 1)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if workers > 1 or checkpoint_dir:
        if getattr(args, "logs_dir", None):
            report = run_pattern_analysis_parallel(
                logs_dir=args.logs_dir,
                detector_config=detector_config,
                workers=workers,
                checkpoint_dir=checkpoint_dir,
                **_engine_kwargs(args),
            )
        else:
            logs, _ = _load_or_generate(args)
            report = run_pattern_analysis_parallel(
                logs,
                detector_config=detector_config,
                workers=workers,
                checkpoint_dir=checkpoint_dir,
                **_engine_kwargs(args),
            )
    else:
        logs, _ = _load_or_generate(args)
        report = run_pattern_analysis(logs, detector_config=detector_config)
    print(report.render())
    return 0


def _cmd_periodicity(args: argparse.Namespace) -> int:
    from .periodicity.detector import DetectorConfig

    detector_config = DetectorConfig(permutations=args.permutations)
    kwargs = dict(
        detector_config=detector_config,
        workers=getattr(args, "workers", 1),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        **_engine_kwargs(args),
    )
    if getattr(args, "logs_dir", None):
        report = run_periodicity_parallel(logs_dir=args.logs_dir, **kwargs)
    else:
        logs, _ = _load_or_generate(args)
        report = run_periodicity_parallel(logs, **kwargs)
    print(render_periodicity(report))
    return 0


def _cmd_ngram(args: argparse.Namespace) -> int:
    kwargs = dict(
        ns=tuple(range(1, args.order + 1)),
        workers=getattr(args, "workers", 1),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        **_engine_kwargs(args),
    )
    if getattr(args, "logs_dir", None):
        results = run_ngram_parallel(logs_dir=args.logs_dir, **kwargs)
    else:
        logs, _ = _load_or_generate(args)
        results = run_ngram_parallel(logs, **kwargs)
    print(render_ngram(results))
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    model = TrendModel(seed=args.seed)
    analysis = analyze_trend(model.series())
    yearly = [
        (label, ratio)
        for label, ratio in analysis.series
        if label.endswith(("-01", "-06"))
    ]
    print(
        render_bar_chart(
            yearly,
            title="Figure 1 — JSON:HTML request ratio",
            value_format="{:.2f}x",
        )
    )
    print(f"\ngrowth over window: {analysis.growth_factor:.1f}x "
          f"(end ratio {analysis.end_ratio:.2f}x)")
    return 0


def _cmd_windows(args: argparse.Namespace) -> int:
    from .core.report import render_table
    from .stream import WindowedCharacterizer

    logs, _ = _load_or_generate(args)
    characterizer = WindowedCharacterizer(window_s=args.window)
    rows = []
    for window in characterizer.windows(logs):
        offset = window.window_start - logs[0].timestamp if logs else 0.0
        ratio = window.json_html_ratio
        rows.append(
            [
                f"+{offset:.0f}s",
                window.total_requests,
                f"{window.json_share * 100:.1f}%",
                "inf" if ratio == float("inf") else f"{ratio:.2f}",
                f"{window.get_share * 100:.1f}%",
                f"{window.uncacheable_share * 100:.1f}%",
                window.client_count,
            ]
        )
    print(
        render_table(
            ["window", "requests", "json", "json:html", "get", "no-store",
             "clients"],
            rows,
            title=f"Traffic time series ({args.window:.0f}s windows)",
        )
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .core.pipeline import run_stream
    from .core.report import render_table
    from .periodicity.detector import DetectorConfig
    from .stream import JsonlEmitter, file_source, stdin_source, tail_source

    if args.ingest_workers < 1:
        raise SystemExit("--ingest-workers must be >= 1")
    detector_config = DetectorConfig(permutations=args.permutations)
    kwargs = dict(
        window_s=args.window,
        slide_s=args.slide,
        watermark_lag_s=args.watermark,
        detector_config=detector_config,
        detect_periods=not args.no_periods,
        predict_urls=not args.no_predictions,
        top_k=args.top_k,
        queue_capacity=args.queue_size,
        queue_policy=args.queue_policy,
        ingest_workers=args.ingest_workers,
        checkpoint_dir=args.checkpoint_dir,
    )
    emitter = None
    if args.emit == "-":
        emitter = JsonlEmitter(sys.stdout)
    elif args.emit:
        emitter = JsonlEmitter(args.emit)
    try:
        if args.follow:
            source = tail_source(
                args.follow,
                idle_polls=args.idle_polls if args.idle_polls else None,
            )
            result = run_stream(source, emit=emitter, **kwargs)
        elif args.stdin:
            result = run_stream(stdin_source(), emit=emitter, **kwargs)
        elif getattr(args, "logs_dir", None):
            result = run_stream(logs_dir=args.logs_dir, emit=emitter, **kwargs)
        elif args.logs:
            result = run_stream(file_source(args.logs), emit=emitter, **kwargs)
        else:
            dataset = _build_dataset(args)
            result = run_stream(dataset.logs, emit=emitter, **kwargs)
    finally:
        if emitter is not None and args.emit != "-":
            emitter.close()

    first_start = (
        result.snapshots[0].window_start if result.snapshots else 0.0
    )
    rows = []
    for snapshot in result.snapshots:
        rows.append(
            [
                f"+{snapshot.window_start - first_start:.0f}s",
                snapshot.records,
                f"{snapshot.json_share * 100:.1f}%",
                f"{snapshot.uncacheable_share * 100:.1f}%",
                snapshot.unique_clients,
                snapshot.periodic_objects,
                ",".join(sorted(snapshot.drift)) or "-",
            ]
        )
    print(
        render_table(
            ["window", "records", "json", "no-store", "clients",
             "periodic", "drifted"],
            rows,
            title=(
                f"Stream windows ({args.window:.0f}s"
                + (f"/{args.slide:.0f}s slide" if args.slide else "")
                + f", watermark {args.watermark:.0f}s)"
            ),
        )
    )
    print()
    print(
        f"sealed {result.sealed_windows} windows"
        + (
            f" (+{result.resumed_windows} resumed from checkpoint)"
            if result.resumed_windows
            else ""
        )
        + f"; {result.records_windowed:,} records windowed, "
        f"{result.late_dropped} late-dropped, "
        f"{result.resumed_skips} resumed-skips"
    )
    if result.ingest is not None:
        stats = result.ingest.snapshot()
        print(
            f"ingest: {stats['delivered']:,} delivered via "
            f"{stats['workers']} worker(s), queue peak "
            f"{stats['queue_peak']}, dropped {stats['dropped']}, "
            f"backpressure stalls {stats['blocked_puts']}"
        )
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    _cmd_trend(args)
    print()
    logs, categories = _load_or_generate(args)
    workers = getattr(args, "workers", 1)
    if workers > 1:
        report = run_characterization_parallel(logs, categories, workers=workers)
    else:
        report = run_characterization(logs, categories)
    print(report.render(args.dataset))
    print()
    print(run_pattern_analysis(logs).render())
    return 0


def _bench_characterization(args, logs, categories):
    """serial vs engine §4 run; returns (rows, matches, notes)."""
    import time

    from .core.pipeline import _characterize_shard
    from .engine.executor import run_shards
    from .engine.shard import plan_directory_shards, plan_memory_shards

    if getattr(args, "logs_dir", None):
        shards = plan_directory_shards(args.logs_dir)
    else:
        shards = plan_memory_shards(logs, max(1, args.workers) * 4)

    started = time.perf_counter()
    serial = run_characterization(logs, categories)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    state, stats = run_shards(
        shards, _characterize_shard, workers=args.workers, backend=args.backend
    )
    parallel_s = time.perf_counter() - started
    parallel = state.to_report(categories)

    matches = (
        parallel.traffic_source == serial.traffic_source
        and parallel.request_type == serial.request_type
        and parallel.cacheability == serial.cacheability
        and parallel.summary == serial.summary
    )
    exact_clients = serial.summary.num_clients
    estimate = state.unique_clients_estimate()
    error = abs(estimate - exact_clients) / exact_clients if exact_clients else 0.0
    rows = [
        ["characterization serial", f"{serial_s:.2f}s", "-", "-"],
        [
            f"characterization engine ({stats.backend} x{stats.workers})",
            f"{parallel_s:.2f}s",
            stats.total_shards,
            f"{serial_s / parallel_s:.2f}x" if parallel_s else "-",
        ],
    ]
    notes = [
        f"unique clients: exact {exact_clients:,}, "
        f"HLL estimate {estimate:,.0f} ({error * 100:.2f}% error)"
    ]
    return rows, matches, notes


def _bench_periodicity(args, logs):
    """serial vs engine §5.1 run; returns (rows, matches, notes)."""
    import time

    from .periodicity.detector import DetectorConfig
    from .periodicity.results import analyze_logs

    detector_config = DetectorConfig(permutations=args.permutations)
    started = time.perf_counter()
    serial = analyze_logs(logs, detector_config=detector_config)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel, stage_reports = run_periodicity_parallel(
        logs,
        detector_config=detector_config,
        workers=args.workers,
        backend=args.backend,
        with_stats=True,
    )
    parallel_s = time.perf_counter() - started

    matches = (
        sorted(parallel.objects) == sorted(serial.objects)
        and render_periodicity(parallel) == render_periodicity(serial)
    )
    shards = sum(report.total_shards for report in stage_reports)
    backend = stage_reports[0].backend
    rows = [
        ["periodicity serial", f"{serial_s:.2f}s", "-", "-"],
        [
            f"periodicity engine ({backend} x{args.workers})",
            f"{parallel_s:.2f}s",
            shards,
            f"{serial_s / parallel_s:.2f}x" if parallel_s else "-",
        ],
    ]
    notes = [
        f"periodic objects: {len(parallel.object_periods())}, "
        f"periodic requests: {parallel.periodic_request_count:,}"
    ]
    return rows, matches, notes


def _bench_ngram(args, logs):
    """serial vs engine §5.2 run; returns (rows, matches, notes)."""
    import time

    from .ngram.evaluate import run_table3

    started = time.perf_counter()
    serial = run_table3(logs)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel, stage_reports = run_ngram_parallel(
        logs, workers=args.workers, backend=args.backend, with_stats=True
    )
    parallel_s = time.perf_counter() - started

    matches = serial == parallel
    shards = sum(report.total_shards for report in stage_reports)
    backend = stage_reports[0].backend
    rows = [
        ["ngram serial", f"{serial_s:.2f}s", "-", "-"],
        [
            f"ngram engine ({backend} x{args.workers})",
            f"{parallel_s:.2f}s",
            shards,
            f"{serial_s / parallel_s:.2f}x" if parallel_s else "-",
        ],
    ]
    top1 = parallel.get((1, 1, True))
    notes = [
        f"clustered top-1 accuracy: {top1.accuracy:.3f}" if top1 else ""
    ]
    return rows, matches, [note for note in notes if note]


def _cmd_engine_bench(args: argparse.Namespace) -> int:
    from .core.report import render_table
    from .logs.partition import read_partitioned

    if getattr(args, "logs_dir", None):
        logs = list(read_partitioned(args.logs_dir))
        categories = None
    else:
        logs, categories = _load_or_generate(args)

    pipelines = (
        ("characterization", "periodicity", "ngram")
        if args.pipeline == "all"
        else (args.pipeline,)
    )
    rows = []
    notes = []
    all_match = True
    for pipeline in pipelines:
        if pipeline == "characterization":
            bench_rows, matches, bench_notes = _bench_characterization(
                args, logs, categories
            )
        elif pipeline == "periodicity":
            bench_rows, matches, bench_notes = _bench_periodicity(args, logs)
        else:
            bench_rows, matches, bench_notes = _bench_ngram(args, logs)
        rows.extend(bench_rows)
        notes.extend(bench_notes)
        notes.append(f"{pipeline} results identical to serial: {matches}")
        all_match = all_match and matches

    print(
        render_table(
            ["run", "wall time", "shards", "speedup"],
            rows,
            title=f"Engine benchmark over {len(logs):,} logs",
        )
    )
    print()
    for note in notes:
        print(note)
    return 0 if all_match else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from .synth.validation import validate_dataset

    dataset = _build_dataset(args)
    report = validate_dataset(dataset)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .core.inventory import EXPERIMENTS
    from .core.report import render_table

    rows = [
        [exp.experiment_id, exp.kind, exp.title, exp.benchmark]
        for exp in EXPERIMENTS
    ]
    print(render_table(["id", "kind", "artifact", "benchmark"], rows,
                       title="Experiment inventory"))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .cdn.replay import WhatIfReplayer
    from .core.report import render_table

    logs, _ = _load_or_generate(args)
    replayer = WhatIfReplayer(logs)
    ttls = [float(value) for value in args.ttls.split(",") if value]
    outcomes = replayer.ttl_sweep(ttls, num_edges=args.edges)
    rows = [
        [
            outcome.policy.name,
            f"{outcome.hit_ratio:.3f}",
            f"{outcome.origin_fraction:.3f}",
            f"{outcome.origin_bytes / 1e6:.1f} MB",
        ]
        for outcome in outcomes
    ]
    print(
        render_table(
            ["policy", "hit ratio", "origin fraction", "origin bytes"],
            rows,
            title=(
                f"What-if TTL sweep over {replayer.trace_length:,} JSON "
                f"requests ({replayer.cacheable_share() * 100:.0f}% to "
                "cacheable objects)"
            ),
        )
    )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "characterize": _cmd_characterize,
    "patterns": _cmd_patterns,
    "periodicity": _cmd_periodicity,
    "ngram": _cmd_ngram,
    "trend": _cmd_trend,
    "windows": _cmd_windows,
    "stream": _cmd_stream,
    "paper": _cmd_paper,
    "validate": _cmd_validate,
    "replay": _cmd_replay,
    "engine-bench": _cmd_engine_bench,
    "experiments": _cmd_experiments,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "workers", 1) < 1:
        parser.error("--workers must be >= 1")
    if getattr(args, "retries", 0) < 0:
        parser.error("--retries must be >= 0")
    shard_timeout = getattr(args, "shard_timeout", None)
    if shard_timeout is not None and shard_timeout <= 0:
        parser.error("--shard-timeout must be positive")
    if getattr(args, "logs", None) and getattr(args, "logs_dir", None):
        parser.error("--logs and --logs-dir are mutually exclusive")
    metrics_path = getattr(args, "metrics", None)
    trace_path = getattr(args, "trace", None)
    if not (metrics_path or trace_path):
        return _COMMANDS[args.command](args)
    # Observability requested: run the command under an ambient
    # registry and export whatever it recorded — in a finally block,
    # so a failed run still leaves its metrics behind for diagnosis.
    from .obs import MetricsRegistry, installed, write_metrics, write_spans_jsonl

    registry = MetricsRegistry()
    try:
        with installed(registry):
            return _COMMANDS[args.command](args)
    finally:
        if metrics_path:
            write_metrics(registry, metrics_path)
        if trace_path:
            write_spans_jsonl(registry, trace_path)


if __name__ == "__main__":
    sys.exit(main())
