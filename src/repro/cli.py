"""Command-line interface.

Subcommands mirror the reproduction workflow::

    repro-json-cdn generate  --dataset short --requests 100000 --out logs.jsonl.gz
    repro-json-cdn characterize --logs logs.jsonl.gz
    repro-json-cdn patterns  --dataset long --requests 60000
    repro-json-cdn trend
    repro-json-cdn paper     --requests 60000

``generate`` writes a synthetic dataset to disk; the analysis
commands accept either ``--logs <file>`` or generate a dataset on the
fly.  ``paper`` runs the whole evaluation and prints every table and
figure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.trend import analyze_trend
from .core.pipeline import run_characterization, run_pattern_analysis
from .core.report import render_bar_chart
from .logs.io import read_logs, write_logs
from .synth.trend import TrendModel
from .synth.workload import WorkloadBuilder, long_term_config, short_term_config

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-json-cdn",
        description="Reproduction of 'Characterizing JSON Traffic Patterns on a CDN' (IMC 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dataset",
            choices=("short", "long"),
            default="short",
            help="dataset shape (Table 2): short=10min wide, long=24h narrow",
        )
        p.add_argument("--requests", type=int, default=50_000,
                       help="target JSON request count")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--logs", metavar="FILE",
                       help="read logs from FILE instead of generating")

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    add_dataset_args(gen)
    gen.add_argument("--out", required=True, metavar="FILE",
                     help="output path (.jsonl/.tsv, optionally .gz)")

    cha = sub.add_parser("characterize", help="run the §4 characterization")
    add_dataset_args(cha)

    pat = sub.add_parser("patterns", help="run the §5 pattern analyses")
    add_dataset_args(pat)
    pat.add_argument("--permutations", type=int, default=100,
                     help="permutation count x for the period detector")

    trend = sub.add_parser("trend", help="print the Figure 1 ratio series")
    trend.add_argument("--seed", type=int, default=0)

    windows = sub.add_parser(
        "windows", help="windowed (streaming) traffic time series"
    )
    add_dataset_args(windows)
    windows.add_argument("--window", type=float, default=300.0,
                         help="tumbling window width in seconds")

    paper = sub.add_parser("paper", help="reproduce every table and figure")
    add_dataset_args(paper)

    validate = sub.add_parser(
        "validate",
        help="check a generated dataset against the paper's calibration targets",
    )
    validate.add_argument("--dataset", choices=("short", "long"), default="short")
    validate.add_argument("--requests", type=int, default=50_000)
    validate.add_argument("--seed", type=int, default=0)

    replay = sub.add_parser(
        "replay",
        help="what-if TTL sweep: replay a JSON trace under alternative policies",
    )
    add_dataset_args(replay)
    replay.add_argument(
        "--ttls",
        default="30,300,3600",
        help="comma-separated TTLs (seconds) to sweep",
    )
    replay.add_argument("--edges", type=int, default=3,
                        help="edge caches to spread clients across")

    sub.add_parser("experiments", help="list every reproducible artifact")
    return parser


def _build_dataset(args: argparse.Namespace):
    config = (
        short_term_config(args.requests, seed=args.seed)
        if args.dataset == "short"
        else long_term_config(args.requests, seed=args.seed)
    )
    return WorkloadBuilder(config).build()


def _load_or_generate(args: argparse.Namespace):
    if args.logs:
        return list(read_logs(args.logs)), None
    dataset = _build_dataset(args)
    categories = {d.name: d.category.value for d in dataset.domains}
    return dataset.logs, categories


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    count = write_logs(dataset.logs, args.out)
    print(f"wrote {count} logs to {args.out}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    logs, categories = _load_or_generate(args)
    report = run_characterization(logs, categories)
    print(report.render(args.dataset))
    return 0


def _cmd_patterns(args: argparse.Namespace) -> int:
    from .periodicity.detector import DetectorConfig

    logs, _ = _load_or_generate(args)
    report = run_pattern_analysis(
        logs, detector_config=DetectorConfig(permutations=args.permutations)
    )
    print(report.render())
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    model = TrendModel(seed=args.seed)
    analysis = analyze_trend(model.series())
    yearly = [
        (label, ratio)
        for label, ratio in analysis.series
        if label.endswith(("-01", "-06"))
    ]
    print(
        render_bar_chart(
            yearly,
            title="Figure 1 — JSON:HTML request ratio",
            value_format="{:.2f}x",
        )
    )
    print(f"\ngrowth over window: {analysis.growth_factor:.1f}x "
          f"(end ratio {analysis.end_ratio:.2f}x)")
    return 0


def _cmd_windows(args: argparse.Namespace) -> int:
    from .analysis.streaming import WindowedCharacterizer
    from .core.report import render_table

    logs, _ = _load_or_generate(args)
    characterizer = WindowedCharacterizer(window_s=args.window)
    rows = []
    for window in characterizer.windows(logs):
        offset = window.window_start - logs[0].timestamp if logs else 0.0
        ratio = window.json_html_ratio
        rows.append(
            [
                f"+{offset:.0f}s",
                window.total_requests,
                f"{window.json_share * 100:.1f}%",
                "inf" if ratio == float("inf") else f"{ratio:.2f}",
                f"{window.get_share * 100:.1f}%",
                f"{window.uncacheable_share * 100:.1f}%",
                window.client_count,
            ]
        )
    print(
        render_table(
            ["window", "requests", "json", "json:html", "get", "no-store",
             "clients"],
            rows,
            title=f"Traffic time series ({args.window:.0f}s windows)",
        )
    )
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    _cmd_trend(args)
    print()
    logs, categories = _load_or_generate(args)
    print(run_characterization(logs, categories).render(args.dataset))
    print()
    print(run_pattern_analysis(logs).render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .synth.validation import validate_dataset

    dataset = _build_dataset(args)
    report = validate_dataset(dataset)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .core.inventory import EXPERIMENTS
    from .core.report import render_table

    rows = [
        [exp.experiment_id, exp.kind, exp.title, exp.benchmark]
        for exp in EXPERIMENTS
    ]
    print(render_table(["id", "kind", "artifact", "benchmark"], rows,
                       title="Experiment inventory"))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .cdn.replay import WhatIfReplayer
    from .core.report import render_table

    logs, _ = _load_or_generate(args)
    replayer = WhatIfReplayer(logs)
    ttls = [float(value) for value in args.ttls.split(",") if value]
    outcomes = replayer.ttl_sweep(ttls, num_edges=args.edges)
    rows = [
        [
            outcome.policy.name,
            f"{outcome.hit_ratio:.3f}",
            f"{outcome.origin_fraction:.3f}",
            f"{outcome.origin_bytes / 1e6:.1f} MB",
        ]
        for outcome in outcomes
    ]
    print(
        render_table(
            ["policy", "hit ratio", "origin fraction", "origin bytes"],
            rows,
            title=(
                f"What-if TTL sweep over {replayer.trace_length:,} JSON "
                f"requests ({replayer.cacheable_share() * 100:.0f}% to "
                "cacheable objects)"
            ),
        )
    )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "characterize": _cmd_characterize,
    "patterns": _cmd_patterns,
    "trend": _cmd_trend,
    "windows": _cmd_windows,
    "paper": _cmd_paper,
    "validate": _cmd_validate,
    "replay": _cmd_replay,
    "experiments": _cmd_experiments,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
