"""§4/§5 analyses over request logs.

Characterization (traffic source, request type), response sizes,
cacheability + the Figure 4 heatmap, and the Figure 1 trend.  The §5
pattern analyses live in :mod:`repro.periodicity` and
:mod:`repro.ngram` and are re-exported here for a single entry point.
"""

from ..ngram.evaluate import run_table3
from ..periodicity.results import analyze_logs as analyze_periodicity
from .cacheability import (
    CacheabilityHeatmap,
    CacheabilityStats,
    DomainCacheability,
    analyze_cacheability,
)
from .characterize import (
    RequestTypeBreakdown,
    TrafficSourceBreakdown,
    characterize,
)
from .sessionize import Session, SessionStats, session_statistics, sessionize
from .sizes import SizeComparison, SizeDistribution, analyze_sizes, compare_sizes
from .cost import ContentCost, CostModel, serving_costs
from .drift import DriftReport, MetricDelta, compare_traffic, traffic_metrics
from .popularity import HeavyHitters, ObjectPopularity, rank_objects
from .regional import RegionStats, edge_region, peak_hour_spread, regional_breakdown
# Re-exported from its new home (repro.stream) for compatibility; the
# deprecated repro.analysis.streaming shim warns on direct import.
from ..stream.characterizer import WindowStats, WindowedCharacterizer
from .trend import TrendAnalysis, analyze_trend, snapshot_ratio

__all__ = [
    "TrafficSourceBreakdown",
    "RequestTypeBreakdown",
    "characterize",
    "Session",
    "SessionStats",
    "sessionize",
    "session_statistics",
    "SizeDistribution",
    "SizeComparison",
    "analyze_sizes",
    "compare_sizes",
    "CacheabilityStats",
    "DomainCacheability",
    "CacheabilityHeatmap",
    "analyze_cacheability",
    "CostModel",
    "ContentCost",
    "serving_costs",
    "DriftReport",
    "MetricDelta",
    "compare_traffic",
    "traffic_metrics",
    "ObjectPopularity",
    "HeavyHitters",
    "rank_objects",
    "RegionStats",
    "regional_breakdown",
    "edge_region",
    "peak_hour_spread",
    "WindowStats",
    "WindowedCharacterizer",
    "TrendAnalysis",
    "analyze_trend",
    "snapshot_ratio",
    "analyze_periodicity",
    "run_table3",
]
