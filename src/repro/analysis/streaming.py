"""Deprecated location of the windowed characterizer.

The windowed (streaming) traffic analysis moved into the online
analysis subsystem: :mod:`repro.stream.characterizer` (and the full
event-time service around it, :mod:`repro.stream`).  This module
remains so existing imports keep working::

    from repro.analysis.streaming import WindowedCharacterizer  # old
    from repro.stream import WindowedCharacterizer              # new

Accessing any name here emits a :class:`DeprecationWarning`; the
module will be removed in a future major version.
"""

from __future__ import annotations

import warnings

from ..stream import characterizer as _characterizer

__all__ = ["WindowStats", "WindowedCharacterizer"]

_MOVED = {"WindowStats", "WindowedCharacterizer", "CLIENT_EXACT_THRESHOLD"}


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            "repro.analysis.streaming has moved to "
            "repro.stream.characterizer; import "
            f"{name} from repro.stream instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_characterizer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _MOVED)
