"""Figure 1 analysis: the JSON:HTML request-ratio trend.

Operates on monthly content-type aggregates — either from the trend
model (multi-year horizon) or computed from a log dataset (one
capture's snapshot ratio).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..logs.record import RequestLog
from ..synth.trend import MonthlyVolume

__all__ = ["TrendAnalysis", "snapshot_ratio", "analyze_trend"]


@dataclass(frozen=True)
class TrendAnalysis:
    """Derived statistics of a JSON:HTML ratio series."""

    series: Tuple[Tuple[str, float], ...]

    @property
    def start_ratio(self) -> float:
        return self.series[0][1]

    @property
    def end_ratio(self) -> float:
        return self.series[-1][1]

    @property
    def growth_factor(self) -> float:
        """How much the ratio multiplied over the window."""
        if self.start_ratio == 0:
            return float("inf")
        return self.end_ratio / self.start_ratio

    def crossover_month(self) -> str:
        """First month where JSON requests exceed HTML requests."""
        for label, ratio in self.series:
            if ratio > 1.0:
                return label
        return "never"

    def is_monotonic_trend(self, window: int = 6) -> bool:
        """Whether the smoothed ratio is non-decreasing.

        Month-to-month noise is expected; the *trend* (a trailing-
        window moving average) should rise throughout the period.
        """
        values = [ratio for _, ratio in self.series]
        smoothed = [
            sum(values[max(0, i - window + 1) : i + 1])
            / len(values[max(0, i - window + 1) : i + 1])
            for i in range(len(values))
        ]
        return all(b >= a * 0.995 for a, b in zip(smoothed, smoothed[1:]))


def analyze_trend(volumes: Sequence[MonthlyVolume]) -> TrendAnalysis:
    """Figure 1 from monthly content-type volumes."""
    if not volumes:
        raise ValueError("no monthly volumes given")
    series = tuple(
        (volume.label, volume.ratio("application/json", "text/html"))
        for volume in volumes
    )
    return TrendAnalysis(series=series)


def snapshot_ratio(logs: Iterable[RequestLog]) -> float:
    """JSON:HTML request ratio of one log dataset."""
    counts: Counter = Counter()
    for record in logs:
        counts[record.content_type] += 1
    html = counts.get("text/html", 0)
    if html == 0:
        return float("inf")
    return counts.get("application/json", 0) / html
