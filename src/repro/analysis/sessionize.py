"""Session reconstruction from request logs.

The Table 1 manifest pattern is a *session-scoped* behaviour, but
logs arrive as flat per-client request streams.  This module
re-segments them with the standard inactivity-gap rule (a silence
longer than the threshold starts a new session) and derives the
session-level statistics web measurement studies report: session
length (requests), duration, inter-session spacing, and whether the
session opens with a manifest-like request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..logs.record import RequestLog

__all__ = ["Session", "SessionStats", "sessionize", "session_statistics"]

#: Default inactivity gap that splits sessions (the classic 30 min of
#: web analytics is far too long for app API traffic; 5 min matches
#: foreground-use patterns).
DEFAULT_GAP_S = 300.0


@dataclass(frozen=True)
class Session:
    """One reconstructed client session."""

    client_id: str
    records: Tuple[RequestLog, ...]

    @property
    def start(self) -> float:
        return self.records[0].timestamp

    @property
    def end(self) -> float:
        return self.records[-1].timestamp

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    @property
    def length(self) -> int:
        return len(self.records)

    @property
    def first_url(self) -> str:
        return self.records[0].url

    def urls(self) -> List[str]:
        return [record.url for record in self.records]


def sessionize(
    logs: Iterable[RequestLog],
    gap_s: float = DEFAULT_GAP_S,
    json_only: bool = True,
) -> List[Session]:
    """Split per-client request streams on inactivity gaps."""
    if gap_s <= 0:
        raise ValueError("gap_s must be positive")
    per_client: Dict[str, List[RequestLog]] = {}
    for record in logs:
        if json_only and not record.is_json:
            continue
        per_client.setdefault(record.client_id, []).append(record)

    sessions: List[Session] = []
    for client_id, records in per_client.items():
        records.sort(key=lambda record: record.timestamp)
        current: List[RequestLog] = [records[0]]
        for previous, record in zip(records, records[1:]):
            if record.timestamp - previous.timestamp > gap_s:
                sessions.append(Session(client_id, tuple(current)))
                current = []
            current.append(record)
        sessions.append(Session(client_id, tuple(current)))
    sessions.sort(key=lambda session: session.start)
    return sessions


@dataclass
class SessionStats:
    """Aggregate statistics over reconstructed sessions."""

    lengths: List[int] = field(default_factory=list)
    durations_s: List[float] = field(default_factory=list)
    first_urls: Dict[str, int] = field(default_factory=dict)
    total_sessions: int = 0

    @property
    def mean_length(self) -> float:
        return float(np.mean(self.lengths)) if self.lengths else 0.0

    @property
    def median_length(self) -> float:
        return float(np.median(self.lengths)) if self.lengths else 0.0

    @property
    def mean_duration_s(self) -> float:
        return float(np.mean(self.durations_s)) if self.durations_s else 0.0

    def length_percentile(self, q: float) -> float:
        if not self.lengths:
            return 0.0
        return float(np.percentile(self.lengths, q))

    def manifest_first_fraction(
        self, markers: Sequence[str] = ("/home", "/config", "/stories")
    ) -> float:
        """Share of sessions opening on a manifest-like URL.

        The Table 1 pattern predicts sessions start with the story
        list / config fetch rather than deep content.
        """
        if not self.total_sessions:
            return 0.0
        matches = sum(
            count
            for url, count in self.first_urls.items()
            if any(marker in url for marker in markers)
        )
        return matches / self.total_sessions


def session_statistics(sessions: Iterable[Session]) -> SessionStats:
    """Fold sessions into aggregate statistics."""
    stats = SessionStats()
    for session in sessions:
        stats.total_sessions += 1
        stats.lengths.append(session.length)
        stats.durations_s.append(session.duration_s)
        stats.first_urls[session.first_url] = (
            stats.first_urls.get(session.first_url, 0) + 1
        )
    return stats
