"""Traffic drift comparison between two log collections.

"CDNs are a good vantage point to observe large scale Internet
patterns, which are constantly changing" (§1) — the paper itself is
a drift observation (JSON up 4x, JSON sizes down 28% since 2016).
This module makes that comparison a first-class operation: measure
the same metric vector on two datasets (two capture windows, two
regions, two customer cohorts) and report per-metric deltas with a
significance-style threshold on relative change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.stats import percentile
from ..logs.record import RequestLog
from .characterize import characterize
from .cacheability import analyze_cacheability

__all__ = [
    "METRIC_NAMES",
    "MetricDelta",
    "DriftReport",
    "traffic_metrics",
    "compare_metrics",
    "compare_traffic",
]


#: Every key :func:`traffic_metrics` emits, in stable order.  The
#: vector's shape never depends on the data: a window with no JSON
#: traffic still reports every metric (shares as 0.0, size statistics
#: as ``None``), so consecutive-window drift comparison never
#: silently drops metrics for a quiet window.
METRIC_NAMES = (
    "json_share",
    "mobile_share",
    "embedded_share",
    "unknown_share",
    "non_browser_share",
    "get_share",
    "uncacheable_share",
    "mean_json_bytes",
    "p50_json_bytes",
)


def traffic_metrics(
    logs: Sequence[RequestLog],
) -> Dict[str, Optional[float]]:
    """The standard metric vector for drift comparison.

    All metrics are shares/means over the collection's JSON traffic
    (plus the JSON share of total), so collections of different sizes
    compare cleanly.  Always emits every key in :data:`METRIC_NAMES`:
    with no JSON records the shares are 0.0 and the size statistics
    (means over an empty set — undefined, not zero) are ``None``,
    which :class:`MetricDelta` handles explicitly.
    """
    total = len(logs)
    json_logs = [record for record in logs if record.is_json]
    if not json_logs:
        return {
            name: (
                None
                if name in ("mean_json_bytes", "p50_json_bytes")
                else 0.0
            )
            for name in METRIC_NAMES
        }
    source, request_type = characterize(json_logs, json_only=False)
    cache_stats, _ = analyze_cacheability(json_logs, json_only=False)
    sizes = [record.response_bytes for record in json_logs]
    device = source.device_shares()
    return {
        "json_share": len(json_logs) / total if total else 0.0,
        "mobile_share": device.get("mobile", 0.0),
        "embedded_share": device.get("embedded", 0.0),
        "unknown_share": device.get("unknown", 0.0),
        "non_browser_share": source.non_browser_fraction,
        "get_share": request_type.get_fraction,
        "uncacheable_share": cache_stats.uncacheable_fraction,
        "mean_json_bytes": sum(sizes) / len(sizes),
        "p50_json_bytes": percentile(sizes, 50),
    }


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between two collections.

    ``None`` on either side means the metric was *undefined* there
    (e.g. JSON size statistics of a window with no JSON traffic) —
    distinct from measuring zero.  ``absolute`` is then ``None``
    (there is no numeric difference), and ``relative`` is ``inf``
    when the metric appeared or disappeared (definedness itself
    changed — always reportable drift) or ``0.0`` when it was
    undefined on both sides (nothing moved).
    """

    name: str
    before: Optional[float]
    after: Optional[float]

    @property
    def absolute(self) -> Optional[float]:
        if self.before is None or self.after is None:
            return None
        return self.after - self.before

    @property
    def relative(self) -> float:
        if self.before is None and self.after is None:
            return 0.0
        if self.before is None or self.after is None:
            return float("inf")
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / self.before

    def render(self) -> str:
        absolute = self.absolute
        if absolute is None:
            arrow = "="
        else:
            arrow = "↑" if absolute > 0 else ("↓" if absolute < 0 else "=")
        rel = (
            f"{self.relative * 100:+.1f}%"
            if self.relative != float("inf")
            else "new"
        )
        before = "n/a" if self.before is None else f"{self.before:.3f}"
        after = "n/a" if self.after is None else f"{self.after:.3f}"
        return (
            f"{self.name:22s} {before:>12s} → {after:>12s}  "
            f"{arrow} {rel}"
        )


@dataclass
class DriftReport:
    """Metric deltas between a *before* and an *after* collection."""

    deltas: List[MetricDelta]
    #: Relative-change threshold for calling a metric "drifted".
    threshold: float = 0.10

    def drifted(self) -> List[MetricDelta]:
        """Metrics whose relative change exceeds the threshold."""
        return [
            delta
            for delta in self.deltas
            if delta.relative == float("inf")
            or abs(delta.relative) > self.threshold
        ]

    @property
    def stable(self) -> bool:
        return not self.drifted()

    def get(self, name: str) -> Optional[MetricDelta]:
        for delta in self.deltas:
            if delta.name == name:
                return delta
        return None

    def render(self) -> str:
        lines = [delta.render() for delta in self.deltas]
        moved = self.drifted()
        lines.append(
            f"{len(moved)}/{len(self.deltas)} metrics drifted more than "
            f"{self.threshold * 100:.0f}%"
        )
        return "\n".join(lines)


def compare_metrics(
    before: Dict[str, Optional[float]],
    after: Dict[str, Optional[float]],
    threshold: float = 0.10,
) -> DriftReport:
    """Drift report from two pre-computed metric vectors.

    The streaming results layer compares consecutive windows without
    keeping their records around, so it measures each window once and
    diffs the vectors here; :func:`compare_traffic` is the
    measure-then-diff convenience over raw log collections.
    """
    names = sorted(set(before) | set(after))
    # A key absent from one vector is *undefined* there, not zero —
    # defaulting to 0.0 here is what used to silently shrink drift
    # reports when a quiet window emitted a truncated vector.
    deltas = [
        MetricDelta(name, before.get(name), after.get(name))
        for name in names
    ]
    return DriftReport(deltas=deltas, threshold=threshold)


def compare_traffic(
    before: Sequence[RequestLog],
    after: Sequence[RequestLog],
    threshold: float = 0.10,
) -> DriftReport:
    """Measure both collections and report per-metric drift."""
    return compare_metrics(
        traffic_metrics(before), traffic_metrics(after), threshold=threshold
    )
