"""§4 characterization: traffic source and request type.

Produces the Figure 3 breakdown (JSON requests by device type), the
browser/non-browser split, the unique user-agent-string mix, and the
GET/POST request-type shares — all in one streaming pass.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..core.taxonomy import AppClass, DeviceType
from ..logs.record import HttpMethod, RequestLog
from ..useragent.classify import UserAgentClassifier

__all__ = ["TrafficSourceBreakdown", "RequestTypeBreakdown", "characterize"]


@dataclass
class TrafficSourceBreakdown:
    """Figure 3 and the §4 traffic-source statistics."""

    total_requests: int = 0
    device_counts: Counter = field(default_factory=Counter)
    app_counts: Counter = field(default_factory=Counter)
    #: Browser requests per device type (for the mobile-browser stat).
    browser_by_device: Counter = field(default_factory=Counter)
    #: Distinct user-agent strings per device type.
    ua_strings_by_device: Dict[str, set] = field(default_factory=dict)

    def device_shares(self) -> Dict[str, float]:
        """Request share per device type (the Figure 3 pie)."""
        if not self.total_requests:
            return {}
        return {
            device.value: self.device_counts.get(device.value, 0)
            / self.total_requests
            for device in DeviceType
        }

    def ua_string_shares(self) -> Dict[str, float]:
        """Unique UA-string share per device type (§4: 73/17/3/7)."""
        total = sum(len(s) for s in self.ua_strings_by_device.values())
        if not total:
            return {}
        return {
            device: len(strings) / total
            for device, strings in self.ua_strings_by_device.items()
        }

    @property
    def browser_fraction(self) -> float:
        if not self.total_requests:
            return 0.0
        return self.app_counts.get(AppClass.BROWSER.value, 0) / self.total_requests

    @property
    def non_browser_fraction(self) -> float:
        """§4: 88% of JSON traffic is non-browser."""
        return 1.0 - self.browser_fraction if self.total_requests else 0.0

    @property
    def mobile_browser_fraction(self) -> float:
        """§4: mobile browser traffic is 2.5% of all JSON requests."""
        if not self.total_requests:
            return 0.0
        return (
            self.browser_by_device.get(DeviceType.MOBILE.value, 0)
            / self.total_requests
        )

    @property
    def embedded_browser_fraction(self) -> float:
        """§4: no browser traffic is detected on embedded devices."""
        if not self.total_requests:
            return 0.0
        return (
            self.browser_by_device.get(DeviceType.EMBEDDED.value, 0)
            / self.total_requests
        )

    @property
    def mobile_app_fraction(self) -> float:
        """Native-app mobile share of all JSON requests (≥52%)."""
        if not self.total_requests:
            return 0.0
        mobile = self.device_counts.get(DeviceType.MOBILE.value, 0)
        mobile_browser = self.browser_by_device.get(DeviceType.MOBILE.value, 0)
        return (mobile - mobile_browser) / self.total_requests

    # -- folding / merging -------------------------------------------------

    def add(self, record: RequestLog, classifier: UserAgentClassifier) -> None:
        """Fold one record into the breakdown."""
        traffic = classifier.classify(record.user_agent)
        self.total_requests += 1
        self.device_counts[traffic.device.value] += 1
        self.app_counts[traffic.app.value] += 1
        if traffic.app is AppClass.BROWSER:
            self.browser_by_device[traffic.device.value] += 1
        if record.user_agent:
            self.ua_strings_by_device.setdefault(
                traffic.device.value, set()
            ).add(record.user_agent)

    def merge(self, other: "TrafficSourceBreakdown") -> "TrafficSourceBreakdown":
        """Combine two partial breakdowns; exact (counters and sets)."""
        self.total_requests += other.total_requests
        self.device_counts.update(other.device_counts)
        self.app_counts.update(other.app_counts)
        self.browser_by_device.update(other.browser_by_device)
        for device, strings in other.ua_strings_by_device.items():
            self.ua_strings_by_device.setdefault(device, set()).update(strings)
        return self


@dataclass
class RequestTypeBreakdown:
    """§4 request-type statistics (uploads vs downloads)."""

    total_requests: int = 0
    method_counts: Counter = field(default_factory=Counter)

    @property
    def get_fraction(self) -> float:
        """§4: 84% of JSON requests are GETs."""
        if not self.total_requests:
            return 0.0
        return self.method_counts.get(HttpMethod.GET.value, 0) / self.total_requests

    @property
    def post_share_of_non_get(self) -> float:
        """§4: 96% of the non-GET remainder is POST."""
        non_get = self.total_requests - self.method_counts.get(
            HttpMethod.GET.value, 0
        )
        if not non_get:
            return 0.0
        return self.method_counts.get(HttpMethod.POST.value, 0) / non_get

    @property
    def upload_fraction(self) -> float:
        uploads = sum(
            count
            for method, count in self.method_counts.items()
            if HttpMethod(method).is_upload()
        )
        return uploads / self.total_requests if self.total_requests else 0.0

    # -- folding / merging -------------------------------------------------

    def add(self, record: RequestLog) -> None:
        """Fold one record into the breakdown."""
        self.total_requests += 1
        self.method_counts[record.method.value] += 1

    def merge(self, other: "RequestTypeBreakdown") -> "RequestTypeBreakdown":
        """Combine two partial breakdowns; exact."""
        self.total_requests += other.total_requests
        self.method_counts.update(other.method_counts)
        return self


def characterize(
    logs: Iterable[RequestLog],
    classifier: Optional[UserAgentClassifier] = None,
    json_only: bool = True,
) -> tuple:
    """One-pass §4 characterization.

    Returns ``(TrafficSourceBreakdown, RequestTypeBreakdown)``.
    """
    classifier = classifier or UserAgentClassifier()
    source = TrafficSourceBreakdown()
    request_type = RequestTypeBreakdown()
    for record in logs:
        if json_only and not record.is_json:
            continue
        source.add(record, classifier)
        request_type.add(record)
    return source, request_type
