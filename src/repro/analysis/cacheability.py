"""§4 cacheability analysis and the Figure 4 heatmap.

Two granularities, matching the paper:

* **request level** — the share of JSON responses marked no-store
  (~55%), plus hit/miss shares of the cacheable remainder;
* **domain level** — each domain's cacheable-traffic share, bucketed
  into a histogram per industry category.  Figure 4 is the resulting
  category × cacheability-bucket heatmap, and its marginals give the
  "~50% of domains never cache / ~30% always cache" statement.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..logs.record import CacheStatus, RequestLog

__all__ = [
    "CacheabilityStats",
    "DomainCacheability",
    "CacheabilityHeatmap",
    "analyze_cacheability",
]


@dataclass
class CacheabilityStats:
    """Request-level cache disposition shares."""

    total: int = 0
    hits: int = 0
    misses: int = 0
    no_store: int = 0

    def add(self, record: RequestLog) -> None:
        self.total += 1
        if record.cache_status is CacheStatus.HIT:
            self.hits += 1
        elif record.cache_status is CacheStatus.MISS:
            self.misses += 1
        else:
            self.no_store += 1

    def merge(self, other: "CacheabilityStats") -> "CacheabilityStats":
        """Combine two partial stats; exact."""
        self.total += other.total
        self.hits += other.hits
        self.misses += other.misses
        self.no_store += other.no_store
        return self

    @property
    def uncacheable_fraction(self) -> float:
        """§4: nearly 55% of all JSON traffic is not cacheable."""
        return self.no_store / self.total if self.total else 0.0

    @property
    def hit_ratio(self) -> float:
        cacheable = self.hits + self.misses
        return self.hits / cacheable if cacheable else 0.0

    @property
    def origin_fraction(self) -> float:
        """Traffic the CDN had to forward to customer origins."""
        if not self.total:
            return 0.0
        return (self.misses + self.no_store) / self.total


@dataclass
class DomainCacheability:
    """Per-domain cacheable-traffic share."""

    domain: str
    category: Optional[str] = None
    cacheable_requests: int = 0
    total_requests: int = 0

    @property
    def cacheable_share(self) -> float:
        if not self.total_requests:
            return 0.0
        return self.cacheable_requests / self.total_requests


#: Cacheability buckets used for the heatmap columns, as half-open
#: intervals [low, high); the outer buckets are the exact "never" and
#: "always" classes.
HEATMAP_BUCKETS: Sequence[Tuple[str, float, float]] = (
    ("never", -1.0, 1e-9),
    ("low", 1e-9, 0.35),
    ("mid", 0.35, 0.65),
    ("high", 0.65, 1.0 - 1e-9),
    ("always", 1.0 - 1e-9, 2.0),
)


@dataclass
class CacheabilityHeatmap:
    """Figure 4: domains bucketed by category × cacheability."""

    #: category → bucket name → domain count.
    cells: Dict[str, Counter] = field(default_factory=dict)
    domains: Dict[str, DomainCacheability] = field(default_factory=dict)

    def add_domain(self, stats: DomainCacheability) -> None:
        self.domains[stats.domain] = stats
        category = stats.category or "Unknown"
        bucket = self.bucket_for(stats.cacheable_share)
        self.cells.setdefault(category, Counter())[bucket] += 1

    @staticmethod
    def bucket_for(share: float) -> str:
        for name, low, high in HEATMAP_BUCKETS:
            if low <= share < high:
                return name
        return "always"

    # -- marginals ------------------------------------------------------------

    @property
    def domain_count(self) -> int:
        return len(self.domains)

    def bucket_shares(self) -> Dict[str, float]:
        """Marginal share of domains per bucket (the 50/30 statement)."""
        total = self.domain_count
        if not total:
            return {}
        counts: Counter = Counter()
        for buckets in self.cells.values():
            counts.update(buckets)
        return {name: counts.get(name, 0) / total for name, _, _ in HEATMAP_BUCKETS}

    def never_cacheable_share(self) -> float:
        return self.bucket_shares().get("never", 0.0)

    def always_cacheable_share(self) -> float:
        return self.bucket_shares().get("always", 0.0)

    def rows(self) -> List[Tuple[str, Dict[str, float]]]:
        """Per-category normalized bucket shares (heatmap rows)."""
        out: List[Tuple[str, Dict[str, float]]] = []
        for category in sorted(self.cells):
            buckets = self.cells[category]
            total = sum(buckets.values())
            out.append(
                (
                    category,
                    {
                        name: buckets.get(name, 0) / total
                        for name, _, _ in HEATMAP_BUCKETS
                    },
                )
            )
        return out

    def category_cacheable_share(self, category: str) -> float:
        """Mean cacheable-traffic share of a category's domains."""
        members = [
            stats
            for stats in self.domains.values()
            if (stats.category or "Unknown") == category
        ]
        if not members:
            return 0.0
        return sum(stats.cacheable_share for stats in members) / len(members)


def analyze_cacheability(
    logs: Iterable[RequestLog],
    domain_categories: Optional[Mapping[str, str]] = None,
    json_only: bool = True,
) -> Tuple[CacheabilityStats, CacheabilityHeatmap]:
    """Request- and domain-level cacheability in one pass.

    ``domain_categories`` maps domain name → industry category (the
    paper uses a commercial categorization service; the synthetic
    population carries its own assignment).
    """
    stats = CacheabilityStats()
    per_domain: Dict[str, DomainCacheability] = {}
    for record in logs:
        if json_only and not record.is_json:
            continue
        stats.add(record)
        domain = per_domain.get(record.domain)
        if domain is None:
            category = (
                domain_categories.get(record.domain)
                if domain_categories
                else None
            )
            domain = DomainCacheability(record.domain, category)
            per_domain[record.domain] = domain
        domain.total_requests += 1
        if record.cacheable:
            domain.cacheable_requests += 1

    heatmap = CacheabilityHeatmap()
    for domain in per_domain.values():
        heatmap.add_domain(domain)
    return stats, heatmap
