"""Per-region traffic analysis (the paper's §7 geographic future work).

Groups logs by the serving edge's region (edge ids are
``<region>-edge-<n>`` in multi-region datasets) and computes per-
region volumes, hourly activity profiles, and peak hours — enough to
"explore geographic and temporal differences in JSON traffic
patterns" as §7 proposes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..logs.record import RequestLog

__all__ = ["RegionStats", "regional_breakdown", "edge_region"]


def edge_region(edge_id: str) -> str:
    """Region name from an edge id (empty for single-region ids)."""
    prefix, separator, rest = edge_id.partition("-edge-")
    if separator and rest != "":
        return prefix if prefix != "edge" else ""
    return ""


@dataclass
class RegionStats:
    """Traffic aggregates for one region."""

    region: str
    total_requests: int = 0
    json_requests: int = 0
    hourly_volume: Counter = field(default_factory=Counter)
    unique_clients: set = field(default_factory=set)

    def add(self, record: RequestLog, epoch: float) -> None:
        self.total_requests += 1
        if record.is_json:
            self.json_requests += 1
        hour = int(((record.timestamp - epoch) / 3600.0) % 24)
        self.hourly_volume[hour] += 1
        self.unique_clients.add(record.client_id)

    @property
    def json_share(self) -> float:
        return self.json_requests / self.total_requests if self.total_requests else 0.0

    @property
    def client_count(self) -> int:
        return len(self.unique_clients)

    def peak_hour(self) -> int:
        """Busiest dataset-clock hour (diurnal phase indicator)."""
        if not self.hourly_volume:
            return 0
        return max(self.hourly_volume, key=self.hourly_volume.get)

    def peak_to_trough(self) -> float:
        """Ratio of busiest to quietest hourly volume."""
        if not self.hourly_volume:
            return 1.0
        volumes = [self.hourly_volume.get(hour, 0) for hour in range(24)]
        low = min(volumes)
        return max(volumes) / max(low, 1)

    def hourly_profile(self) -> List[Tuple[int, int]]:
        return [(hour, self.hourly_volume.get(hour, 0)) for hour in range(24)]


def regional_breakdown(
    logs: Iterable[RequestLog], epoch: Optional[float] = None
) -> Dict[str, RegionStats]:
    """Group a log stream by serving region.

    ``epoch`` anchors hour-of-day; defaults to the first record's
    timestamp.
    """
    stats: Dict[str, RegionStats] = {}
    anchor = epoch
    for record in logs:
        if anchor is None:
            anchor = record.timestamp
        region = edge_region(record.edge_id)
        bucket = stats.get(region)
        if bucket is None:
            bucket = RegionStats(region)
            stats[region] = bucket
        bucket.add(record, anchor)
    return stats


def peak_hour_spread(stats: Dict[str, RegionStats]) -> int:
    """Largest circular peak-hour gap between any two regions.

    Multi-timezone deployments show hours of spread; single-region
    datasets show ~0.
    """
    peaks = [bucket.peak_hour() for bucket in stats.values()]
    if len(peaks) < 2:
        return 0
    spread = 0
    for a in peaks:
        for b in peaks:
            gap = abs(a - b)
            spread = max(spread, min(gap, 24 - gap))
    return spread
