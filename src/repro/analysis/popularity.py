"""Object-popularity analysis and bounded-memory heavy hitters.

§5.1 filters its flows down to "the top 25% of objects requested";
more generally, every CDN question about "the popular objects"
needs the request-count distribution over objects. Two tools here:

* :class:`ObjectPopularity` — exact counting for dataset-scale
  analysis: top-share curves, percentile filters, Zipf-ness checks;
* :class:`HeavyHitters` — the Misra–Gries summary for production
  edges, which finds every object above a frequency threshold in
  O(k) memory regardless of stream length.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..logs.record import RequestLog

__all__ = ["ObjectPopularity", "HeavyHitters", "rank_objects"]


@dataclass
class ObjectPopularity:
    """Exact per-object request counts and derived statistics."""

    counts: Counter = field(default_factory=Counter)
    total: int = 0

    def add(self, record: RequestLog) -> None:
        self.counts[record.object_id] += 1
        self.total += 1

    def update(self, logs: Iterable[RequestLog]) -> "ObjectPopularity":
        for record in logs:
            self.add(record)
        return self

    # -- derived -----------------------------------------------------------

    @property
    def object_count(self) -> int:
        return len(self.counts)

    def top_share(self, fraction: float) -> float:
        """Traffic share of the most-popular ``fraction`` of objects.

        ``top_share(0.25)`` answers "how much traffic do the top 25%
        of objects carry" — on web workloads, most of it.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if not self.counts:
            return 0.0
        take = max(1, int(round(self.object_count * fraction)))
        top = sum(count for _, count in self.counts.most_common(take))
        return top / self.total

    def top_objects(self, fraction: float) -> Set[str]:
        """The object ids making up the top ``fraction`` (§5.1 filter)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        take = max(1, int(round(self.object_count * fraction)))
        return {object_id for object_id, _ in self.counts.most_common(take)}

    def requests_of(self, object_id: str) -> int:
        return self.counts.get(object_id, 0)

    def concentration_curve(
        self, points: Sequence[float] = (0.01, 0.05, 0.10, 0.25, 0.50)
    ) -> List[Tuple[float, float]]:
        """(object fraction, traffic share) pairs — the Lorenz view."""
        return [(fraction, self.top_share(fraction)) for fraction in points]


class HeavyHitters:
    """Misra–Gries frequent-elements summary.

    Finds every object whose true frequency exceeds ``1/(k+1)`` of
    the stream using only ``k`` counters, with per-object count
    underestimation bounded by ``stream_length / (k+1)``. This is
    what an edge can afford to run inline; the exact counter above is
    what the offline analysis runs.
    """

    def __init__(self, k: int = 100) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._counters: Dict[str, int] = {}
        self.stream_length = 0

    def offer(self, key: str) -> None:
        """Observe one stream element."""
        self.stream_length += 1
        counters = self._counters
        if key in counters:
            counters[key] += 1
        elif len(counters) < self.k:
            counters[key] = 1
        else:
            # Decrement-all step; drop zeroed counters.
            drained = []
            for existing in counters:
                counters[existing] -= 1
                if counters[existing] == 0:
                    drained.append(existing)
            for existing in drained:
                del counters[existing]

    def offer_log(self, record: RequestLog) -> None:
        self.offer(record.object_id)

    @property
    def error_bound(self) -> float:
        """Maximum undercount of any reported estimate."""
        return self.stream_length / (self.k + 1)

    def candidates(self) -> Dict[str, int]:
        """Surviving counters: estimated counts (may undercount)."""
        return dict(self._counters)

    def hitters(self, min_fraction: float) -> List[Tuple[str, int]]:
        """Objects possibly exceeding ``min_fraction`` of the stream.

        Guaranteed superset of the true heavy hitters above the
        threshold (no false negatives) when
        ``min_fraction > 1 / (k + 1)``.
        """
        if not 0 < min_fraction < 1:
            raise ValueError("min_fraction must be in (0, 1)")
        threshold = min_fraction * self.stream_length - self.error_bound
        return sorted(
            (
                (key, count)
                for key, count in self._counters.items()
                if count >= max(threshold, 1)
            ),
            key=lambda item: item[1],
            reverse=True,
        )


def rank_objects(logs: Iterable[RequestLog]) -> ObjectPopularity:
    """One-shot exact popularity over a log collection."""
    return ObjectPopularity().update(logs)
