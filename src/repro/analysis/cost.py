"""Serving-cost analysis: the §4 provisioning claim, quantified.

"Reduced response sizes increase the CPU cost-per-byte of serving
JSON traffic, since a large chunk of the total request cost (CPU,
network, IO, etc…) is tied to CPU request processing, which must be
taken into account by network operators when provisioning the
network."

The model: serving one request costs a fixed per-request component
(connection handling, parsing, cache lookup — independent of size)
plus a per-byte component (copying, TLS record processing,
transmission). As mean response size falls, the fixed component is
amortized over fewer bytes and the *cost per delivered byte* rises —
which is why a JSON-heavy CDN needs more CPU per Gbps than an
HTML-heavy one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from ..logs.record import RequestLog

__all__ = ["CostModel", "ContentCost", "serving_costs"]


@dataclass(frozen=True)
class CostModel:
    """Two-component request cost model.

    Units are abstract "CPU units"; only ratios matter. Defaults put
    the fixed cost at the work of serving ~20 KB, a realistic split
    for TLS-terminating proxies.
    """

    per_request: float = 20.0
    per_kilobyte: float = 1.0

    def request_cost(self, response_bytes: int) -> float:
        return self.per_request + self.per_kilobyte * response_bytes / 1024.0

    def cost_per_byte(self, mean_response_bytes: float) -> float:
        """Expected CPU units per delivered byte at a mean size."""
        if mean_response_bytes <= 0:
            return float("inf")
        return self.request_cost(int(mean_response_bytes)) / mean_response_bytes


@dataclass
class ContentCost:
    """Aggregated serving cost for one content type."""

    content_type: str
    requests: int = 0
    bytes_served: int = 0
    cpu_units: float = 0.0

    @property
    def mean_bytes(self) -> float:
        return self.bytes_served / self.requests if self.requests else 0.0

    @property
    def cost_per_byte(self) -> float:
        if self.bytes_served == 0:
            return float("inf") if self.cpu_units else 0.0
        return self.cpu_units / self.bytes_served

    @property
    def cost_per_request(self) -> float:
        return self.cpu_units / self.requests if self.requests else 0.0


def serving_costs(
    logs: Iterable[RequestLog],
    model: Optional[CostModel] = None,
    content_types: Sequence[str] = ("application/json", "text/html"),
) -> Dict[str, ContentCost]:
    """Per-content-type serving cost over a log collection.

    The §4 comparison falls out directly: JSON's smaller responses
    give it a markedly higher cost per byte than HTML's, so traffic
    shifting from HTML to JSON raises the CPU a CDN must provision
    per unit of delivered bandwidth.
    """
    model = model or CostModel()
    wanted = {ct.lower() for ct in content_types}
    out: Dict[str, ContentCost] = {
        ct: ContentCost(content_type=ct) for ct in wanted
    }
    for record in logs:
        content_type = record.content_type
        if content_type not in wanted:
            continue
        bucket = out[content_type]
        bucket.requests += 1
        bucket.bytes_served += record.response_bytes
        bucket.cpu_units += model.request_cost(record.response_bytes)
    return out
