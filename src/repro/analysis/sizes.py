"""§4 response-size analysis.

Computes size distributions per content type and the two size
comparisons the paper reports: JSON vs HTML at the median and 75th
percentile (24% and 87% smaller respectively), and the JSON
mean-size trend since 2016 (~28% decrease).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..logs.record import RequestLog

__all__ = ["SizeDistribution", "SizeComparison", "analyze_sizes", "compare_sizes"]


@dataclass
class SizeDistribution:
    """Accumulated response sizes for one content type."""

    content_type: str
    sizes: List[int] = field(default_factory=list)

    def add(self, size: int) -> None:
        self.sizes.append(size)

    def merge(self, other: "SizeDistribution") -> "SizeDistribution":
        """Combine two partial distributions (order-insensitive stats)."""
        if other.content_type != self.content_type:
            raise ValueError(
                "cannot merge distributions of different content types: "
                f"{self.content_type!r} != {other.content_type!r}"
            )
        self.sizes.extend(other.sizes)
        return self

    @property
    def count(self) -> int:
        return len(self.sizes)

    @property
    def mean(self) -> float:
        return float(np.mean(self.sizes)) if self.sizes else 0.0

    def percentile(self, q: float) -> float:
        if not self.sizes:
            raise ValueError(f"no sizes recorded for {self.content_type}")
        return float(np.percentile(self.sizes, q))

    @property
    def median(self) -> float:
        return self.percentile(50)

    def summary(self) -> Dict[str, float]:
        if not self.sizes:
            return {"count": 0}
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p25": self.percentile(25),
            "p50": self.percentile(50),
            "p75": self.percentile(75),
            "p95": self.percentile(95),
        }


@dataclass(frozen=True)
class SizeComparison:
    """How much smaller one content type is than another."""

    numerator: str
    denominator: str
    smaller_at_p50: float
    smaller_at_p75: float

    @staticmethod
    def between(a: SizeDistribution, b: SizeDistribution) -> "SizeComparison":
        """Relative size reduction of ``a`` vs ``b`` at p50/p75.

        A value of 0.24 means ``a``'s median is 24% below ``b``'s.
        """
        return SizeComparison(
            numerator=a.content_type,
            denominator=b.content_type,
            smaller_at_p50=1.0 - a.percentile(50) / b.percentile(50),
            smaller_at_p75=1.0 - a.percentile(75) / b.percentile(75),
        )


def analyze_sizes(
    logs: Iterable[RequestLog],
    content_types: Sequence[str] = ("application/json", "text/html"),
) -> Dict[str, SizeDistribution]:
    """Collect size distributions for the requested content types."""
    wanted = {ct.lower() for ct in content_types}
    distributions: Dict[str, SizeDistribution] = {
        ct: SizeDistribution(ct) for ct in wanted
    }
    for record in logs:
        content_type = record.content_type
        if content_type in wanted:
            distributions[content_type].add(record.response_bytes)
    return distributions


def compare_sizes(logs: Iterable[RequestLog]) -> SizeComparison:
    """The paper's JSON-vs-HTML size comparison on one dataset."""
    distributions = analyze_sizes(logs)
    return SizeComparison.between(
        distributions["application/json"], distributions["text/html"]
    )
