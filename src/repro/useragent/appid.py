"""Application identification from user-agent strings.

The paper's first question is "What applications and devices are
consuming JSON traffic?"  Device type comes from
:mod:`repro.useragent.classify`; this module extracts the
*application* identity — the app name and version a native client
embeds in its user-agent — and aggregates traffic per application.

Identification heuristics (in order):

1. the first product token that is not a platform/engine/library
   token is the app identity (``NewsReader/5.2 (...) CFNetwork/...``);
2. webview UAs carry the app token *after* the browser tokens
   (``... Mobile Safari/537.36 ShopFast/3.1.0``);
3. reverse-DNS bundle ids are normalized to their leaf
   (``com.example.newsreader/512`` → ``newsreader``);
4. bare library UAs (``okhttp/3.12.1``) identify a stack, not an app,
   and are reported as unidentified.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..logs.record import RequestLog
from .database import SDK_TOKENS
from .parser import ProductToken, parse_user_agent

__all__ = ["AppIdentity", "identify_app", "AppUsageReport", "aggregate_apps"]

#: Product tokens that never identify an application.
_NON_APP_TOKENS = frozenset(
    token.lower()
    for token in (
        "Mozilla",
        "AppleWebKit",
        "KHTML",
        "Gecko",
        "Chrome",
        "Chromium",
        "CriOS",
        "Safari",
        "Mobile",
        "Version",
        "Firefox",
        "FxiOS",
        "Edg",
        "EdgA",
        "Edge",
        "OPR",
        "SamsungBrowser",
        "Dalvik",
        "CFNetwork",
        "Darwin",
        "Build",
        "Linux",
        "Android",
        "Windows",
        "like",
        "NintendoBrowser",
        "NF",
        "CoreMedia",
        "libhttp",
        "WebAppManager",
        "lwIP",
        "server-bag",
        "Scale",
        "U",
        "rv",
        "compatible",
    )
)


@dataclass(frozen=True)
class AppIdentity:
    """Resolved application identity from one user-agent string."""

    name: str
    version: Optional[str] = None
    #: True when the UA identified an actual application rather than a
    #: bare HTTP stack or browser engine.
    identified: bool = True

    UNKNOWN_NAME = "(unidentified)"

    @classmethod
    def unidentified(cls) -> "AppIdentity":
        return cls(name=cls.UNKNOWN_NAME, version=None, identified=False)


def _normalize_name(name: str) -> str:
    """Normalize an app token: bundle ids collapse to their leaf."""
    if "." in name and not name.replace(".", "").isdigit():
        parts = [part for part in name.split(".") if part]
        if len(parts) >= 2 and parts[0].lower() in ("com", "net", "org", "io", "app"):
            return parts[-1].lower()
    return name


def identify_app(user_agent: Optional[str]) -> AppIdentity:
    """Extract the application identity from a user-agent value.

    Examples
    --------
    >>> identify_app("NewsReader/5.2.1 (iPhone; iOS 13.1) CFNetwork/1107.1").name
    'NewsReader'
    >>> identify_app("okhttp/3.12.1").identified
    False
    """
    if not user_agent:
        return AppIdentity.unidentified()
    parsed = parse_user_agent(user_agent)
    candidates: List[ProductToken] = []
    for token in parsed.products:
        lowered = token.name.lower()
        if lowered in _NON_APP_TOKENS or lowered in SDK_TOKENS:
            continue
        # Version-looking names ("5.0") are fragment noise.
        if token.name.replace(".", "").isdigit():
            continue
        candidates.append(token)
    if not candidates:
        return AppIdentity.unidentified()
    # Webview UAs put the app token last; plain app UAs put it first.
    # Prefer the first candidate unless the UA is Mozilla-prefixed
    # (webview/browser shaped), in which case the trailing extra token
    # is the app.
    mozilla_prefixed = (
        parsed.primary_product is not None
        and parsed.primary_product.name == "Mozilla"
    )
    chosen = candidates[-1] if mozilla_prefixed else candidates[0]
    return AppIdentity(
        name=_normalize_name(chosen.name), version=chosen.version
    )


@dataclass
class AppUsageReport:
    """Traffic aggregated per application."""

    requests_per_app: Counter = field(default_factory=Counter)
    bytes_per_app: Counter = field(default_factory=Counter)
    versions_per_app: Dict[str, Counter] = field(default_factory=dict)
    total_requests: int = 0

    def add(self, identity: AppIdentity, record: RequestLog) -> None:
        self.total_requests += 1
        self.requests_per_app[identity.name] += 1
        self.bytes_per_app[identity.name] += record.response_bytes
        if identity.identified and identity.version:
            self.versions_per_app.setdefault(identity.name, Counter())[
                identity.version
            ] += 1

    def merge(self, other: "AppUsageReport") -> "AppUsageReport":
        """Combine two partial reports; exact (counters)."""
        self.total_requests += other.total_requests
        self.requests_per_app.update(other.requests_per_app)
        self.bytes_per_app.update(other.bytes_per_app)
        for app, versions in other.versions_per_app.items():
            self.versions_per_app.setdefault(app, Counter()).update(versions)
        return self

    @property
    def identified_fraction(self) -> float:
        """Share of requests attributable to a concrete application."""
        if not self.total_requests:
            return 0.0
        unknown = self.requests_per_app.get(AppIdentity.UNKNOWN_NAME, 0)
        return 1.0 - unknown / self.total_requests

    def top_apps(self, count: int = 10) -> List[Tuple[str, int]]:
        """Most-requesting applications (unidentified bucket excluded)."""
        return [
            (name, requests)
            for name, requests in self.requests_per_app.most_common()
            if name != AppIdentity.UNKNOWN_NAME
        ][:count]

    def version_spread(self, app_name: str) -> int:
        """Distinct versions observed for one app (fleet-upgrade lag)."""
        return len(self.versions_per_app.get(app_name, ()))


def aggregate_apps(
    logs: Iterable[RequestLog], json_only: bool = True
) -> AppUsageReport:
    """One-pass per-application traffic aggregation.

    A memo on the UA string makes this linear in distinct UAs rather
    than in records.
    """
    report = AppUsageReport()
    memo: Dict[str, AppIdentity] = {}
    for record in logs:
        if json_only and not record.is_json:
            continue
        key = record.user_agent or ""
        identity = memo.get(key)
        if identity is None:
            identity = identify_app(record.user_agent)
            memo[key] = identity
        report.add(identity, record)
    return report
