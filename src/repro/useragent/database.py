"""Reference databases for user-agent classification.

Two databases back the classifier, mirroring the two sources the
paper uses (§3.2):

* :data:`BROWSER_DATABASE` — analogous to the public browser
  user-agent string database [11]: known browser product tokens and
  the well-formedness rules browsers follow (``Mozilla/5.0`` prefix).
* :data:`DEVICE_DATABASE` — analogous to Akamai's Edge Device
  Characteristics (EDC) database [2]: platform/device tokens mapped to
  device characteristics, used to reduce misclassification from
  user-agent parsing alone.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..core.taxonomy import DeviceType

__all__ = [
    "BrowserEntry",
    "DeviceEntry",
    "BROWSER_DATABASE",
    "DEVICE_DATABASE",
    "SDK_TOKENS",
    "lookup_browser",
    "lookup_device",
]


@dataclass(frozen=True)
class BrowserEntry:
    """One known browser family."""

    token: str
    family: str
    #: Tokens that, when present alongside, indicate a *different*
    #: browser (e.g. every Chrome UA also contains "Safari").
    shadowed_by: Tuple[str, ...] = ()


#: Ordered by specificity: later entries shadow earlier ones, so the
#: classifier scans in reverse (most specific first).
BROWSER_DATABASE: Tuple[BrowserEntry, ...] = (
    BrowserEntry("Safari", "Safari", shadowed_by=("Chrome", "Chromium", "CriOS",
                                                  "Edg", "EdgA", "OPR", "SamsungBrowser")),
    BrowserEntry("Chrome", "Chrome", shadowed_by=("Edg", "EdgA", "OPR",
                                                  "SamsungBrowser", "YaBrowser")),
    BrowserEntry("Chromium", "Chromium"),
    BrowserEntry("CriOS", "Chrome"),
    BrowserEntry("Firefox", "Firefox", shadowed_by=("Seamonkey",)),
    BrowserEntry("FxiOS", "Firefox"),
    BrowserEntry("Edg", "Edge"),
    BrowserEntry("EdgA", "Edge"),
    BrowserEntry("OPR", "Opera"),
    BrowserEntry("Opera", "Opera"),
    BrowserEntry("SamsungBrowser", "Samsung Internet"),
    BrowserEntry("YaBrowser", "Yandex"),
    BrowserEntry("MSIE", "Internet Explorer"),
    BrowserEntry("Trident", "Internet Explorer"),
    BrowserEntry("UCBrowser", "UC Browser"),
    BrowserEntry("Brave", "Brave"),
    BrowserEntry("Vivaldi", "Vivaldi"),
    BrowserEntry("DuckDuckGo", "DuckDuckGo"),
    BrowserEntry("OPiOS", "Opera"),
    BrowserEntry("Silk", "Amazon Silk"),
    BrowserEntry("QQBrowser", "QQ Browser"),
    BrowserEntry("MiuiBrowser", "Miui Browser"),
    BrowserEntry("Whale", "Whale"),
)

_BROWSER_BY_TOKEN: Dict[str, BrowserEntry] = {
    entry.token.lower(): entry for entry in BROWSER_DATABASE
}


@dataclass(frozen=True)
class DeviceEntry:
    """EDC-style device characteristics for one platform token."""

    token: str
    device_type: DeviceType
    platform: str
    #: Whether this platform ships a first-class browser (no browser
    #: traffic is expected from platforms where this is False; the
    #: paper observes none on embedded devices).
    browser_capable: bool = True


#: Platform tokens ordered most-specific-first.  The classifier takes
#: the first raw-substring match, so e.g. "iPad" must precede "iP" -
#: style generic tokens and TV tokens must precede the OS they embed.
DEVICE_DATABASE: Tuple[DeviceEntry, ...] = (
    # -- embedded: game consoles ------------------------------------
    DeviceEntry("PlayStation 5", DeviceType.EMBEDDED, "PlayStation", False),
    DeviceEntry("PlayStation 4", DeviceType.EMBEDDED, "PlayStation", False),
    DeviceEntry("PlayStation Vita", DeviceType.EMBEDDED, "PlayStation", False),
    DeviceEntry("Xbox Series X", DeviceType.EMBEDDED, "Xbox", False),
    DeviceEntry("Xbox One", DeviceType.EMBEDDED, "Xbox", False),
    DeviceEntry("Xbox", DeviceType.EMBEDDED, "Xbox", False),
    DeviceEntry("Nintendo Switch", DeviceType.EMBEDDED, "Nintendo", False),
    DeviceEntry("Nintendo WiiU", DeviceType.EMBEDDED, "Nintendo", False),
    # -- embedded: smart TVs and streaming sticks --------------------
    DeviceEntry("SMART-TV", DeviceType.EMBEDDED, "SmartTV", False),
    DeviceEntry("SmartTV", DeviceType.EMBEDDED, "SmartTV", False),
    DeviceEntry("Tizen", DeviceType.EMBEDDED, "Tizen TV", False),
    DeviceEntry("Web0S", DeviceType.EMBEDDED, "webOS TV", False),
    DeviceEntry("webOS.TV", DeviceType.EMBEDDED, "webOS TV", False),
    DeviceEntry("Roku", DeviceType.EMBEDDED, "Roku", False),
    DeviceEntry("CrKey", DeviceType.EMBEDDED, "Chromecast", False),
    DeviceEntry("AppleTV", DeviceType.EMBEDDED, "Apple TV", False),
    DeviceEntry("tvOS", DeviceType.EMBEDDED, "Apple TV", False),
    DeviceEntry("AFTS", DeviceType.EMBEDDED, "Fire TV", False),
    DeviceEntry("BRAVIA", DeviceType.EMBEDDED, "SmartTV", False),
    # -- embedded: wearables and IoT ---------------------------------
    DeviceEntry("watchOS", DeviceType.EMBEDDED, "Apple Watch", False),
    DeviceEntry("Watch OS", DeviceType.EMBEDDED, "Wear OS", False),
    DeviceEntry("Wear OS", DeviceType.EMBEDDED, "Wear OS", False),
    DeviceEntry("ESP8266HTTPClient", DeviceType.EMBEDDED, "IoT", False),
    DeviceEntry("ESP32-http-client", DeviceType.EMBEDDED, "IoT", False),
    DeviceEntry("ESP8266", DeviceType.EMBEDDED, "IoT", False),
    DeviceEntry("ESP32", DeviceType.EMBEDDED, "IoT", False),
    DeviceEntry("SmartThings", DeviceType.EMBEDDED, "IoT", False),
    DeviceEntry("HomePod", DeviceType.EMBEDDED, "IoT", False),
    DeviceEntry("Oculus", DeviceType.EMBEDDED, "VR headset", False),
    DeviceEntry("Quest 2", DeviceType.EMBEDDED, "VR headset", False),
    DeviceEntry("Tesla", DeviceType.EMBEDDED, "Vehicle", False),
    DeviceEntry("QtCarBrowser", DeviceType.EMBEDDED, "Vehicle", False),
    DeviceEntry("Kindle", DeviceType.EMBEDDED, "E-reader", False),
    DeviceEntry("KFAPWI", DeviceType.EMBEDDED, "Fire tablet", False),
    DeviceEntry("Sonos", DeviceType.EMBEDDED, "IoT", False),
    DeviceEntry("Alexa", DeviceType.EMBEDDED, "IoT", False),
    DeviceEntry("RaspberryPi", DeviceType.EMBEDDED, "IoT", False),
    # -- mobile -------------------------------------------------------
    DeviceEntry("iPhone", DeviceType.MOBILE, "iOS"),
    DeviceEntry("iPad", DeviceType.MOBILE, "iPadOS"),
    DeviceEntry("iPod", DeviceType.MOBILE, "iOS"),
    DeviceEntry("iOS", DeviceType.MOBILE, "iOS"),
    DeviceEntry("Android", DeviceType.MOBILE, "Android"),
    DeviceEntry("Dalvik", DeviceType.MOBILE, "Android"),
    DeviceEntry("Windows Phone", DeviceType.MOBILE, "Windows Phone"),
    DeviceEntry("BlackBerry", DeviceType.MOBILE, "BlackBerry"),
    # -- desktop ------------------------------------------------------
    DeviceEntry("Windows NT", DeviceType.DESKTOP, "Windows"),
    DeviceEntry("Macintosh", DeviceType.DESKTOP, "macOS"),
    DeviceEntry("Mac OS X", DeviceType.DESKTOP, "macOS"),
    DeviceEntry("X11", DeviceType.DESKTOP, "Linux"),
    DeviceEntry("Ubuntu", DeviceType.DESKTOP, "Linux"),
    DeviceEntry("Linux x86_64", DeviceType.DESKTOP, "Linux"),
    DeviceEntry("CrOS", DeviceType.DESKTOP, "ChromeOS"),
)

#: Library/SDK product tokens.  They reveal a software stack but not a
#: device; device type stays UNKNOWN unless a device token co-occurs
#: (e.g. Dalvik implies Android).
SDK_TOKENS: FrozenSet[str] = frozenset(
    token.lower()
    for token in (
        "okhttp",
        "CFNetwork",
        "python-requests",
        "python-urllib",
        "aiohttp",
        "curl",
        "Wget",
        "Go-http-client",
        "Java",
        "Apache-HttpClient",
        "axios",
        "node-fetch",
        "Dart",
        "Alamofire",
        "Volley",
        "libwww-perl",
        "Faraday",
        "Guzzle",
        "RestSharp",
    )
)


def lookup_browser(product_names: Tuple[str, ...]) -> Optional[BrowserEntry]:
    """Resolve the browser family from parsed product-token names.

    Applies the shadowing rules: a UA containing both ``Chrome`` and
    ``Safari`` is Chrome; one with ``Edg`` as well is Edge.
    Returns None when no known browser token is present.
    """
    present = {name.lower() for name in product_names}
    candidates = [
        entry for entry in BROWSER_DATABASE if entry.token.lower() in present
    ]
    for entry in candidates:
        if not any(shadow.lower() in present for shadow in entry.shadowed_by):
            return entry
    return None


def _token_pattern(token: str) -> "re.Pattern[str]":
    """Word-bounded pattern for a device token.

    Bare substring matching misfires (``axios`` contains ``iOS``), so
    tokens must not be flanked by alphanumerics.
    """
    return re.compile(
        r"(?<![A-Za-z0-9])" + re.escape(token) + r"(?![A-Za-z0-9])",
        re.IGNORECASE,
    )


_DEVICE_PATTERNS: Tuple[Tuple["re.Pattern[str]", DeviceEntry], ...] = tuple(
    (_token_pattern(entry.token), entry) for entry in DEVICE_DATABASE
)


def lookup_device(raw_user_agent: str) -> Optional[DeviceEntry]:
    """Resolve device characteristics by most-specific token match."""
    for pattern, entry in _DEVICE_PATTERNS:
        if pattern.search(raw_user_agent):
            return entry
    return None
