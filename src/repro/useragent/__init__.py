"""User-agent substrate: parsing, reference databases, classification,
and a generation grammar for the synthetic-traffic model.
"""

from .appid import AppIdentity, AppUsageReport, aggregate_apps, identify_app
from .classify import UserAgentClassifier, classify_user_agent
from .database import (
    BROWSER_DATABASE,
    DEVICE_DATABASE,
    SDK_TOKENS,
    BrowserEntry,
    DeviceEntry,
    lookup_browser,
    lookup_device,
)
from .parser import ParsedUserAgent, ProductToken, parse_user_agent
from .strings import (
    UA_FACTORIES,
    make_desktop_browser_ua,
    make_embedded_ua,
    make_malformed_ua,
    make_mobile_app_ua,
    make_mobile_browser_ua,
    make_sdk_ua,
)

__all__ = [
    "AppIdentity",
    "AppUsageReport",
    "aggregate_apps",
    "identify_app",
    "ParsedUserAgent",
    "ProductToken",
    "parse_user_agent",
    "BrowserEntry",
    "DeviceEntry",
    "BROWSER_DATABASE",
    "DEVICE_DATABASE",
    "SDK_TOKENS",
    "lookup_browser",
    "lookup_device",
    "UserAgentClassifier",
    "classify_user_agent",
    "UA_FACTORIES",
    "make_mobile_browser_ua",
    "make_desktop_browser_ua",
    "make_mobile_app_ua",
    "make_embedded_ua",
    "make_sdk_ua",
    "make_malformed_ua",
]
