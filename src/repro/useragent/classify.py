"""Traffic-source classification from user-agent strings.

Implements the paper's methodology (§3.2):

1. group by system identifiers in the user-agent field (``Android``,
   ``iPhone``, ``Windows``, ...) to find the device type;
2. consult an EDC-like device database to reduce misclassification;
3. use a browser user-agent database to split browser from
   non-browser traffic (browsers send well-formed UAs);
4. label the source ``UNKNOWN`` when the user agent is missing or
   unidentifiable.
"""

from __future__ import annotations

from typing import Optional

from ..core.taxonomy import AppClass, DeviceType, TrafficSource
from .database import SDK_TOKENS, lookup_browser, lookup_device
from .parser import ParsedUserAgent, parse_user_agent

__all__ = ["classify_user_agent", "UserAgentClassifier"]


class UserAgentClassifier:
    """Stateless classifier with a small LRU-ish memo.

    Real datasets repeat the same UA string millions of times, so a
    memo on the exact string gives an order-of-magnitude speedup on
    characterization runs without changing results.
    """

    def __init__(self, memo_size: int = 100_000) -> None:
        self._memo: dict = {}
        self._memo_size = memo_size

    def classify(self, user_agent: Optional[str]) -> TrafficSource:
        """Classify one raw user-agent header value."""
        if not user_agent:
            return TrafficSource(DeviceType.UNKNOWN, AppClass.UNKNOWN)
        cached = self._memo.get(user_agent)
        if cached is not None:
            return cached
        result = self._classify_uncached(user_agent)
        if len(self._memo) >= self._memo_size:
            self._memo.clear()
        self._memo[user_agent] = result
        return result

    def _classify_uncached(self, user_agent: str) -> TrafficSource:
        parsed = parse_user_agent(user_agent)
        device_entry = lookup_device(user_agent)
        device = device_entry.device_type if device_entry else DeviceType.UNKNOWN
        platform = device_entry.platform if device_entry else None
        browser_capable = device_entry.browser_capable if device_entry else True

        app = self._classify_app(parsed, device, browser_capable)
        return TrafficSource(device=device, app=app, raw_platform=platform)

    def _classify_app(
        self,
        parsed: ParsedUserAgent,
        device: DeviceType,
        browser_capable: bool,
    ) -> AppClass:
        # Browsers send well-formed Mozilla/5.0-prefixed UAs with a
        # recognizable browser token; require both to avoid counting
        # webview-embedding apps (which often also say Mozilla/5.0 but
        # add an app token we detect below) as browser traffic.
        browser = lookup_browser(tuple(parsed.product_names()))
        mozilla_prefixed = (
            parsed.primary_product is not None
            and parsed.primary_product.name == "Mozilla"
        )
        if browser is not None and mozilla_prefixed:
            # WebView / in-app browser heuristic: Android WebViews add
            # "; wv" to the comment, iOS apps lack "Safari" but keep
            # "AppleWebKit".  Treat those as native apps.
            if parsed.has_comment_token("wv"):
                return AppClass.NATIVE_APP
            # EDC correction: platforms without a first-class browser
            # (consoles, TVs, IoT) reuse browser-engine UA templates in
            # their native shells; do not count them as browser traffic.
            if not browser_capable:
                return AppClass.NATIVE_APP
            return AppClass.BROWSER

        # Library / SDK stacks.
        names = {name.lower() for name in parsed.product_names()}
        if names & SDK_TOKENS:
            # An SDK token together with a mobile device token is an
            # app using a HTTP library (okhttp on Android, CFNetwork
            # on iOS); bare SDK tokens are scripts/services.
            if device in (DeviceType.MOBILE, DeviceType.EMBEDDED):
                return AppClass.NATIVE_APP
            return AppClass.SDK

        # A product token plus an identified device is app traffic
        # (e.g. "NewsApp/5.2 (iPhone; iOS 13.1)").
        if parsed.products and device is not DeviceType.UNKNOWN:
            return AppClass.NATIVE_APP

        # Product token but no recognizable platform: could be a bare
        # app id or a script; without device evidence it stays UNKNOWN
        # per the paper's conservative labeling.
        return AppClass.UNKNOWN


_DEFAULT_CLASSIFIER = UserAgentClassifier()


def classify_user_agent(user_agent: Optional[str]) -> TrafficSource:
    """Module-level convenience wrapper over a shared classifier."""
    return _DEFAULT_CLASSIFIER.classify(user_agent)
