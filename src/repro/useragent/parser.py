"""User-agent string parsing.

User-agent values are semi-structured: a sequence of
``product/version`` tokens interleaved with parenthesized comment
groups (RFC 7231 §5.5.3), but real traffic deviates wildly — bare app
identifiers, locale-suffixed library names, or free text.  The parser
here is therefore *tolerant*: it extracts what it can and never
raises on garbage input, which is exactly the posture a log-analysis
pipeline needs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["ProductToken", "ParsedUserAgent", "parse_user_agent"]

_PRODUCT_RE = re.compile(r"([A-Za-z0-9_.+!-]+)(?:/([^\s()]+))?")


@dataclass(frozen=True)
class ProductToken:
    """One ``name/version`` product token from a user-agent string."""

    name: str
    version: Optional[str] = None

    def __str__(self) -> str:
        if self.version is None:
            return self.name
        return f"{self.name}/{self.version}"


@dataclass(frozen=True)
class ParsedUserAgent:
    """Structured view of a user-agent string.

    Attributes
    ----------
    raw:
        The original string.
    products:
        Product tokens in order of appearance.
    comments:
        Contents of parenthesized comment groups, split on ``;`` and
        stripped, flattened in order.
    """

    raw: str
    products: Tuple[ProductToken, ...] = ()
    comments: Tuple[str, ...] = ()

    @property
    def primary_product(self) -> Optional[ProductToken]:
        """The first product token, or None for token-free strings."""
        return self.products[0] if self.products else None

    def product_names(self) -> List[str]:
        """All product-token names, original casing."""
        return [token.name for token in self.products]

    def has_product(self, name: str) -> bool:
        """Case-insensitive product-name membership test."""
        lowered = name.lower()
        return any(token.name.lower() == lowered for token in self.products)

    def product_version(self, name: str) -> Optional[str]:
        """Version of the first product with this name, if any."""
        lowered = name.lower()
        for token in self.products:
            if token.name.lower() == lowered:
                return token.version
        return None

    def has_comment_token(self, text: str) -> bool:
        """Case-insensitive substring test over comment fragments."""
        lowered = text.lower()
        return any(lowered in comment.lower() for comment in self.comments)

    def contains(self, text: str) -> bool:
        """Case-insensitive substring test over the raw string."""
        return text.lower() in self.raw.lower()


def _split_comment_groups(value: str) -> Tuple[str, List[str]]:
    """Remove parenthesized groups, returning (rest, group contents).

    Handles nested parentheses by tracking depth; unbalanced strings
    are handled by treating the remainder as one group.
    """
    rest: List[str] = []
    groups: List[str] = []
    depth = 0
    current: List[str] = []
    for char in value:
        if char == "(":
            if depth == 0:
                current = []
            else:
                current.append(char)
            depth += 1
        elif char == ")" and depth > 0:
            depth -= 1
            if depth == 0:
                groups.append("".join(current))
            else:
                current.append(char)
        elif depth > 0:
            current.append(char)
        else:
            rest.append(char)
    if depth > 0 and current:
        groups.append("".join(current))
    return "".join(rest), groups


def parse_user_agent(value: Optional[str]) -> ParsedUserAgent:
    """Parse a user-agent header value; never raises.

    ``None`` and empty strings yield an empty parse with ``raw == ""``.

    Examples
    --------
    >>> ua = parse_user_agent("NewsApp/5.2 (iPhone; iOS 13.1) CFNetwork/1107.1")
    >>> ua.primary_product.name
    'NewsApp'
    >>> ua.has_comment_token("iphone")
    True
    """
    if not value:
        return ParsedUserAgent(raw="")
    rest, groups = _split_comment_groups(value)
    products = tuple(
        ProductToken(match.group(1), match.group(2))
        for match in _PRODUCT_RE.finditer(rest)
    )
    comments: List[str] = []
    for group in groups:
        comments.extend(part.strip() for part in group.split(";") if part.strip())
    return ParsedUserAgent(raw=value, products=products, comments=tuple(comments))
