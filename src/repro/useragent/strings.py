"""User-agent string generation.

The synthetic-traffic substrate needs realistic user-agent strings so
the classifier faces the same parsing problem it would on production
logs.  Each ``make_*`` function renders one string from a grammar of
real-world templates, driven by a caller-supplied
:class:`random.Random` so datasets are reproducible.

The generated population intentionally includes webviews, bare SDK
tokens, and malformed strings — the classifier must earn its
``UNKNOWN`` bucket.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

__all__ = [
    "make_mobile_browser_ua",
    "make_desktop_browser_ua",
    "make_mobile_app_ua",
    "make_embedded_ua",
    "make_sdk_ua",
    "make_malformed_ua",
    "UA_FACTORIES",
]

_ANDROID_VERSIONS = ["8.1.0", "9", "10", "11"]
_ANDROID_MODELS = [
    "Pixel 3", "Pixel 4", "SM-G960F", "SM-G973U", "SM-A505FN",
    "Moto G (7)", "ONEPLUS A6013", "Redmi Note 7", "LM-Q720",
]
_IOS_VERSIONS = ["12_4", "13_1", "13_3", "13_5", "14_0"]
_CHROME_VERSIONS = ["74.0.3729.157", "75.0.3770.101", "76.0.3809.132",
                    "77.0.3865.90", "78.0.3904.108"]
_FIREFOX_VERSIONS = ["68.0", "69.0", "70.0"]
_SAFARI_VERSIONS = ["12.1.2", "13.0.1", "13.0.3"]
_WINDOWS_VERSIONS = ["10.0", "6.1", "6.3"]
_MAC_VERSIONS = ["10_14_6", "10_15", "10_15_1"]

_APP_NAMES = [
    "NewsReader", "ScoreCenter", "StreamBox", "ChatLink", "ShopFast",
    "FitTrack", "WeatherNow", "PhotoShare", "RideHail", "BankSecure",
    "GameHub", "PodCatcher", "MapQuestr", "FoodDash", "CryptoWatch",
]


def _semver(rng: random.Random, major_max: int = 9) -> str:
    return f"{rng.randint(1, major_max)}.{rng.randint(0, 20)}.{rng.randint(0, 9)}"


def make_mobile_browser_ua(rng: random.Random) -> str:
    """A well-formed mobile browser UA (Chrome on Android / iOS Safari)."""
    if rng.random() < 0.6:
        android = rng.choice(_ANDROID_VERSIONS)
        model = rng.choice(_ANDROID_MODELS)
        chrome = rng.choice(_CHROME_VERSIONS)
        return (
            f"Mozilla/5.0 (Linux; Android {android}; {model}) "
            f"AppleWebKit/537.36 (KHTML, like Gecko) "
            f"Chrome/{chrome} Mobile Safari/537.36"
        )
    ios = rng.choice(_IOS_VERSIONS)
    safari = rng.choice(_SAFARI_VERSIONS)
    return (
        f"Mozilla/5.0 (iPhone; CPU iPhone OS {ios} like Mac OS X) "
        f"AppleWebKit/605.1.15 (KHTML, like Gecko) "
        f"Version/{safari} Mobile/15E148 Safari/604.1"
    )


def make_desktop_browser_ua(rng: random.Random) -> str:
    """A well-formed desktop browser UA (Chrome/Firefox/Safari/Edge)."""
    roll = rng.random()
    if roll < 0.5:
        windows = rng.choice(_WINDOWS_VERSIONS)
        chrome = rng.choice(_CHROME_VERSIONS)
        return (
            f"Mozilla/5.0 (Windows NT {windows}; Win64; x64) "
            f"AppleWebKit/537.36 (KHTML, like Gecko) "
            f"Chrome/{chrome} Safari/537.36"
        )
    if roll < 0.7:
        firefox = rng.choice(_FIREFOX_VERSIONS)
        return (
            f"Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:{firefox}) "
            f"Gecko/20100101 Firefox/{firefox}"
        )
    if roll < 0.9:
        mac = rng.choice(_MAC_VERSIONS)
        safari = rng.choice(_SAFARI_VERSIONS)
        return (
            f"Mozilla/5.0 (Macintosh; Intel Mac OS X {mac}) "
            f"AppleWebKit/605.1.15 (KHTML, like Gecko) "
            f"Version/{safari} Safari/605.1.15"
        )
    chrome = rng.choice(_CHROME_VERSIONS)
    return (
        f"Mozilla/5.0 (Windows NT 10.0; Win64; x64) "
        f"AppleWebKit/537.36 (KHTML, like Gecko) "
        f"Chrome/{chrome} Safari/537.36 Edg/{chrome}"
    )


def make_mobile_app_ua(rng: random.Random, app_name: Optional[str] = None) -> str:
    """A native mobile-app UA: custom token, HTTP library, or webview."""
    name = app_name or rng.choice(_APP_NAMES)
    version = _semver(rng)
    roll = rng.random()
    if roll < 0.35:  # iOS app with CFNetwork stack
        ios = rng.choice(_IOS_VERSIONS).replace("_", ".")
        return (
            f"{name}/{version} (iPhone; iOS {ios}; Scale/3.00) "
            f"CFNetwork/1107.1 Darwin/19.0.0"
        )
    if roll < 0.65:  # Android app over okhttp
        return f"{name}/{version} (Android {rng.choice(_ANDROID_VERSIONS)}) okhttp/3.12.1"
    if roll < 0.8:  # bare Dalvik (Android HttpURLConnection default)
        android = rng.choice(_ANDROID_VERSIONS)
        model = rng.choice(_ANDROID_MODELS)
        return (
            f"Dalvik/2.1.0 (Linux; U; Android {android}; {model} Build/QQ3A.200805.001)"
        )
    # Android WebView-embedding app ("; wv" marker)
    android = rng.choice(_ANDROID_VERSIONS)
    model = rng.choice(_ANDROID_MODELS)
    chrome = rng.choice(_CHROME_VERSIONS)
    return (
        f"Mozilla/5.0 (Linux; Android {android}; {model}; wv) "
        f"AppleWebKit/537.36 (KHTML, like Gecko) Version/4.0 "
        f"Chrome/{chrome} Mobile Safari/537.36 {name}/{version}"
    )


def make_embedded_ua(rng: random.Random) -> str:
    """An embedded-device UA: console, smart TV, watch, or IoT node."""
    roll = rng.random()
    if roll < 0.3:  # game consoles
        return rng.choice(
            [
                "Mozilla/5.0 (PlayStation 4 7.02) AppleWebKit/605.1.15 (KHTML, like Gecko)",
                f"libhttp/7.02 (PlayStation 4) CoreMedia/1.0",
                "Mozilla/5.0 (Windows NT 10.0; Win64; x64; Xbox; Xbox One) "
                "AppleWebKit/537.36 (KHTML, like Gecko) Edge/44.18363.8131",
                "Mozilla/5.0 (Nintendo Switch; WifiWebAuthApplet) "
                "AppleWebKit/606.4 (KHTML, like Gecko) NF/6.0.1.15.4 NintendoBrowser/5.1.0.20393",
            ]
        )
    if roll < 0.6:  # smart TVs / sticks
        return rng.choice(
            [
                "Mozilla/5.0 (SMART-TV; Linux; Tizen 5.0) AppleWebKit/537.36 "
                "(KHTML, like Gecko) Version/5.0 TV Safari/537.36",
                "Roku/DVP-9.10 (519.10E04111A)",
                f"AppleTV6,2/11.1 tvOS/13.0",
                "Mozilla/5.0 (Web0S; Linux/SmartTV) AppleWebKit/537.36 "
                "(KHTML, like Gecko) Chrome/38.0.2125.122 Safari/537.36 WebAppManager",
                "Dalvik/2.1.0 (Linux; U; Android 7.1.2; AFTS Build/NS6265)",
            ]
        )
    if roll < 0.85:  # wearables
        return rng.choice(
            [
                f"ScoreCenter/{_semver(rng)} (Apple Watch; watchOS 6.0) CFNetwork/1107.1",
                f"FitTrack/{_semver(rng)} (Wear OS 2.1; en_US)",
                "server-bag [Watch OS,6.0,17R575,Watch4,4]",
            ]
        )
    # IoT firmware clients
    return rng.choice(
        [
            f"ESP8266HTTPClient/{_semver(rng, 2)}",
            f"ESP32-http-client/{_semver(rng, 2)}",
            f"SmartThings/{_semver(rng)} (hub firmware)",
            f"sensor-gw/{_semver(rng, 3)} ESP32 lwIP/2.1.2",
        ]
    )


def make_sdk_ua(rng: random.Random) -> str:
    """A bare HTTP-library / script UA (non-device traffic)."""
    return rng.choice(
        [
            f"python-requests/2.{rng.randint(18, 24)}.0",
            f"curl/7.{rng.randint(47, 68)}.0",
            "Go-http-client/1.1",
            f"Java/1.8.0_{rng.randint(121, 252)}",
            f"Apache-HttpClient/4.5.{rng.randint(1, 12)} (Java/1.8.0_181)",
            f"axios/0.{rng.randint(18, 21)}.0",
            f"okhttp/{rng.randint(2, 4)}.{rng.randint(0, 12)}.0",
            "aiohttp/3.6.2",
        ]
    )


def make_malformed_ua(rng: random.Random) -> str:
    """A junk UA a classifier must not choke on (nor misclassify)."""
    return rng.choice(
        [
            "-",
            "()",
            "Mozilla",
            "null",
            "custom agent string without structure",
            "%%UA%%",
            "MyService",
            "0",
            "Mozilla/5.0 (compatible)",
            "(((((",
        ]
    )


#: Factory registry keyed by population-segment name; the synthetic
#: client model samples from this.
UA_FACTORIES: Dict[str, Callable[[random.Random], str]] = {
    "mobile_browser": make_mobile_browser_ua,
    "desktop_browser": make_desktop_browser_ua,
    "mobile_app": make_mobile_app_ua,
    "embedded": make_embedded_ua,
    "sdk": make_sdk_ua,
    "malformed": make_malformed_ua,
}
