"""The metrics registry: named counters, gauges, and histograms.

A :class:`MetricsRegistry` is a process-local bag of metrics keyed by
``(name, sorted label items)``.  It is built to ride the engine's
merge machinery: every metric kind defines ``merge`` so that a
registry filled per shard and folded **in plan order** equals the
registry a serial run would have filled — the same contract
:class:`~repro.engine.state.CharacterizationState` honors, extended
to telemetry:

* **counters** merge by integer addition (exact, order-free);
* **histograms** are :class:`~repro.obs.sketch.QuantileSketch`
  instances and merge bucket-wise (exact counts; sums fold in merge
  order, which the executor keeps equal to plan order);
* **gauges** are last-write point samples locally and merge by
  ``max`` — across shards a gauge is only meaningful as a high-water
  mark (queue peaks, watermark lag), and ``max`` is the one
  commutative choice that preserves that reading.

Metric names use dotted paths (``engine.shard_records``).  By
convention a name ending in ``_seconds`` holds wall-clock timing and
is **not** expected to be deterministic across runs or backends;
everything else is, and ``tests/test_obs_differential.py`` holds the
engine to it.  :meth:`MetricsRegistry.deterministic_snapshot` encodes
that convention for callers.

Thread safety: the registry serializes all mutation through one
internal lock (ingest worker threads and the executor's control loop
share the ambient registry).  The lock is excluded from pickling, so
registries travel to process-pool workers and back like any engine
state.

Span records (see :mod:`repro.obs.spans`) live in a bounded buffer on
the registry; overflow is counted in the ``obs.spans_dropped``
counter, never silent.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from .sketch import DEFAULT_GROWTH, DEFAULT_MIN_VALUE, QuantileSketch

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricKey"]

#: Canonical metric identity: name plus sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    if not name:
        raise ValueError("metric name must be non-empty")
    return (
        name,
        tuple(sorted((str(k), str(v)) for k, v in labels.items())),
    )


def render_key(key: MetricKey) -> str:
    """Human-readable ``name{label="value",...}`` form of a key."""
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f'{label}="{value}"' for label, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """Monotone integer counter; merges by addition."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        self.value += other.value
        return self

    def snapshot_value(self) -> int:
        return self.value


class Gauge:
    """Point-sample float; ``set`` overwrites, ``set_max`` ratchets.

    Merging takes the max: across shards only the high-water-mark
    reading survives meaningfully, and max is commutative.
    """

    kind = "gauge"

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        value = float(value)
        if self.value is None or value > self.value:
            self.value = value

    def merge(self, other: "Gauge") -> "Gauge":
        if other.value is not None:
            self.set_max(other.value)
        return self

    def snapshot_value(self) -> Optional[float]:
        return self.value


class Histogram:
    """A named :class:`QuantileSketch`; merges bucket-wise."""

    kind = "histogram"

    def __init__(
        self,
        growth: float = DEFAULT_GROWTH,
        min_value: float = DEFAULT_MIN_VALUE,
    ) -> None:
        self.sketch = QuantileSketch(growth=growth, min_value=min_value)

    def observe(self, value: float) -> None:
        self.sketch.observe(value)

    def merge(self, other: "Histogram") -> "Histogram":
        self.sketch.merge(other.sketch)
        return self

    def snapshot_value(self) -> Dict[str, Any]:
        return self.sketch.to_dict()


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Process-local metric store with engine-style merge semantics."""

    def __init__(self, max_spans: int = 10_000) -> None:
        if max_spans < 0:
            raise ValueError("max_spans must be >= 0")
        self.max_spans = max_spans
        self._metrics: Dict[MetricKey, Any] = {}
        self.spans: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    # Locks do not pickle; a revived registry gets a fresh one.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- metric access ---------------------------------------------------

    def _get_or_create(self, kind: str, key: MetricKey, **kwargs) -> Any:
        metric = self._metrics.get(key)
        if metric is None:
            metric = _KINDS[kind](**kwargs)
            self._metrics[key] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {render_key(key)} is a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str, /, **labels) -> Counter:
        with self._lock:
            return self._get_or_create("counter", _key(name, labels))

    def gauge(self, name: str, /, **labels) -> Gauge:
        with self._lock:
            return self._get_or_create("gauge", _key(name, labels))

    def histogram(
        self,
        name: str,
        /,
        growth: float = DEFAULT_GROWTH,
        min_value: float = DEFAULT_MIN_VALUE,
        **labels,
    ) -> Histogram:
        with self._lock:
            return self._get_or_create(
                "histogram", _key(name, labels),
                growth=growth, min_value=min_value,
            )

    # -- convenience mutators (the instrumentation hot path) -------------

    def inc(self, name: str, amount: int = 1, /, **labels) -> None:
        with self._lock:
            self._get_or_create("counter", _key(name, labels)).inc(amount)

    def observe(self, name: str, value: float, /, **labels) -> None:
        with self._lock:
            self._get_or_create("histogram", _key(name, labels)).observe(value)

    def set_gauge(self, name: str, value: float, /, **labels) -> None:
        with self._lock:
            self._get_or_create("gauge", _key(name, labels)).set(value)

    def max_gauge(self, name: str, value: float, /, **labels) -> None:
        with self._lock:
            self._get_or_create("gauge", _key(name, labels)).set_max(value)

    def record_span(self, span: Dict[str, Any]) -> None:
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self._get_or_create(
                    "counter", _key("obs.spans_dropped", {})
                ).inc()
                return
            self.spans.append(span)

    # -- merge -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in; the engine calls this plan-order."""
        with self._lock:
            for key, metric in other._metrics.items():
                mine = self._metrics.get(key)
                if mine is None:
                    self._metrics[key] = self._copy_metric(metric)
                elif mine.kind != metric.kind:
                    raise ValueError(
                        f"cannot merge {metric.kind} into {mine.kind} "
                        f"for {render_key(key)}"
                    )
                else:
                    mine.merge(metric)
            for span in other.spans:
                if len(self.spans) >= self.max_spans:
                    self._get_or_create(
                        "counter", _key("obs.spans_dropped", {})
                    ).inc()
                else:
                    self.spans.append(span)
        return self

    @staticmethod
    def _copy_metric(metric: Any) -> Any:
        """Fresh metric holding ``metric``'s state (merge must not alias)."""
        if metric.kind == "histogram":
            fresh = Histogram(
                growth=metric.sketch.growth, min_value=metric.sketch.min_value
            )
        else:
            fresh = _KINDS[metric.kind]()
        return fresh.merge(metric)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Full state: ``{kind: {rendered key: value}}`` plus spans."""
        with self._lock:
            out: Dict[str, Dict[str, Any]] = {
                "counters": {},
                "gauges": {},
                "histograms": {},
            }
            for key in sorted(self._metrics):
                metric = self._metrics[key]
                bucket = {
                    "counter": "counters",
                    "gauge": "gauges",
                    "histogram": "histograms",
                }[metric.kind]
                out[bucket][render_key(key)] = metric.snapshot_value()
            out["spans"] = {"recorded": len(self.spans)}
            return out

    def deterministic_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Counters and histograms that must match serial == parallel.

        Drops gauges (point samples), span counts, and any metric
        whose name ends in ``_seconds`` (wall-clock timing) — the
        documented nondeterministic surface.  Everything left must be
        identical field by field for any backend, worker count, or
        scheduler interleaving of the same shard plan.
        """
        full = self.snapshot()
        def keep(rendered: str) -> bool:
            name = rendered.split("{", 1)[0]
            return not name.endswith("_seconds")
        return {
            "counters": {
                key: value
                for key, value in full["counters"].items()
                if keep(key)
            },
            "histograms": {
                key: value
                for key, value in full["histograms"].items()
                if keep(key)
            },
        }

    def metric_names(self) -> List[str]:
        with self._lock:
            return sorted({key[0] for key in self._metrics})

    def __len__(self) -> int:
        return len(self._metrics)
