"""Span-based stage tracing.

A span is one timed region of a run — a pipeline stage, a shard
attempt, a window seal — recorded as a plain dict so it exports to
JSONL without a schema layer:

```
{"name": "detect_periods", "seconds": 0.173, "status": "ok",
 "tags": {"shard": "3"}}
```

``with span("detect_periods", shard=3):`` times the block on the
monotonic clock, stamps ``status`` (``"ok"`` or ``"error"`` with the
exception type), appends the record to the ambient registry's bounded
span buffer, and feeds the duration into the
``obs.span_seconds{name=...}`` histogram so stage timing shows up in
the metrics snapshot too.  Exceptions propagate — tracing never
swallows a failure.

When no registry is installed the context manager body still runs, of
course, and the only cost is one clock read on each side of the block
plus the nil check; hot per-record paths should not be spanned (they
get counters instead), which keeps the overhead gate honest.

Span durations are wall-clock and therefore live on the documented
nondeterministic surface (``*_seconds``); differential tests compare
span *counts* via counters, never durations.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from . import runtime

__all__ = ["span"]


@contextmanager
def span(name: str, **tags) -> Iterator[None]:
    """Time a block and record it as a span on the ambient registry."""
    start = time.perf_counter()
    status = "ok"
    try:
        yield
    except BaseException as exc:
        status = f"error:{type(exc).__name__}"
        raise
    finally:
        seconds = time.perf_counter() - start
        registry = runtime.active()
        if registry is not None:
            registry.record_span(
                {
                    "name": name,
                    "seconds": seconds,
                    "status": status,
                    "tags": {key: str(value) for key, value in tags.items()},
                }
            )
            registry.observe("obs.span_seconds", seconds, name=name)
            registry.inc("obs.spans", name=name)
