"""Snapshot exporters: Prometheus text, JSON, and span JSONL.

The registry's native snapshot is a nested dict; these helpers render
it for the two consumers the CLI serves:

* ``--metrics path.prom`` (or any non-``.json`` suffix) writes the
  Prometheus text exposition format — counters as-is, gauges as-is,
  histograms exploded into ``_count`` / ``_sum`` / ``_min`` / ``_max``
  plus ``{quantile="..."}`` sample lines, so the file scrapes into any
  Prometheus-compatible stack without an exporter process;
* ``--metrics path.json`` writes the full snapshot (including raw
  sketch buckets) for programmatic diffing — the serial-vs-parallel
  differential suite consumes this shape.

``--trace path.jsonl`` writes one span per line via
:func:`write_spans_jsonl`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .registry import MetricsRegistry
from .sketch import QuantileSketch

__all__ = [
    "to_prometheus_text",
    "write_metrics",
    "write_spans_jsonl",
]

_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def _prom_name(rendered: str) -> str:
    """``a.b.c{...}`` → (``a_b_c``, ``{...}``) suitable for Prometheus."""
    if "{" in rendered:
        name, labels = rendered.split("{", 1)
        labels = "{" + labels
    else:
        name, labels = rendered, ""
    return name.replace(".", "_").replace("-", "_"), labels


def _format_value(value: float) -> str:
    if value != value:  # NaN guard; Prometheus accepts NaN but we never emit it
        return "0"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _merge_labels(labels: str, extra: str) -> str:
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry snapshot in Prometheus text exposition format."""
    snapshot = registry.snapshot()
    lines = []
    seen_types = set()

    def emit_type(name: str, kind: str) -> None:
        if name not in seen_types:
            lines.append(f"# TYPE {name} {kind}")
            seen_types.add(name)

    for rendered, value in snapshot["counters"].items():
        name, labels = _prom_name(rendered)
        emit_type(name, "counter")
        lines.append(f"{name}{labels} {value}")

    for rendered, value in snapshot["gauges"].items():
        if value is None:
            continue
        name, labels = _prom_name(rendered)
        emit_type(name, "gauge")
        lines.append(f"{name}{labels} {_format_value(value)}")

    for rendered, data in snapshot["histograms"].items():
        name, labels = _prom_name(rendered)
        emit_type(name, "summary")
        sketch = QuantileSketch.from_dict(data)
        lines.append(f"{name}_count{labels} {sketch.count}")
        lines.append(f"{name}_sum{labels} {_format_value(sketch.total)}")
        if sketch.count:
            lines.append(f"{name}_min{labels} {_format_value(sketch.min)}")
            lines.append(f"{name}_max{labels} {_format_value(sketch.max)}")
            for q in _QUANTILES:
                merged = _merge_labels(labels, f'quantile="{q}"')
                lines.append(
                    f"{name}{merged} {_format_value(sketch.quantile(q))}"
                )

    return "\n".join(lines) + "\n"


def write_metrics(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write a snapshot: JSON for ``.json`` paths, Prometheus text else."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".json":
        payload: Dict[str, Any] = registry.snapshot()
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    else:
        path.write_text(to_prometheus_text(registry))
    return path


def write_spans_jsonl(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write the registry's span buffer as one JSON object per line."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for record in registry.spans:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path
