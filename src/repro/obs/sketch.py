"""Mergeable quantile sketch: bounded-memory latency/size histograms.

The one accumulator the observability layer cannot borrow from
:mod:`repro.engine.sketches` is a *quantile* summary — the engine's
:class:`~repro.engine.sketches.ReservoirSample` is mergeable but
randomized, and an observability pipeline must produce the same
snapshot for the same run no matter how shards interleaved.  P²-style
streaming estimators are deterministic per stream but their marker
state does not merge at all.  A **fixed-boundary log-bucket
histogram** gives up a bounded relative error per observation and in
exchange gets the full engine merge algebra:

* bucket boundaries are a pure function of the constructor parameters
  (``min_value`` · ``growth``\\ :sup:`i`), never of the data, so two
  sketches built from different shards always share a bucket grid;
* bucket counts are integers and merge by addition — commutative,
  associative, with the empty sketch as identity, exactly like the
  engine's counter states;
* memory is bounded by the dynamic range of the data, not its volume:
  ``log(max/min) / log(growth)`` buckets regardless of how many
  observations arrive (the :class:`~repro.cdn.metrics.DeliveryMetrics`
  OOM this class was built to fix kept one float per request).

Quantile queries walk the cumulative counts and interpolate linearly
inside the target bucket, then clamp to the exactly-tracked
``[min, max]``; the result is within one bucket width of the true
value, i.e. a relative error of at most ``growth - 1`` (~4.4% at the
default ``growth = 2**(1/16)``).

Everything pickles (plain attributes, no locks), so sketches ride the
process-pool boundary and the checkpoint store unchanged.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping

__all__ = ["QuantileSketch", "DEFAULT_GROWTH", "DEFAULT_MIN_VALUE"]

#: ~4.4% relative bucket width; 16 buckets per doubling.
DEFAULT_GROWTH = 2.0 ** (1.0 / 16.0)
#: Values at or below this collapse into bucket 0 (1 µs for seconds,
#: sub-byte for sizes — below measurement noise either way).
DEFAULT_MIN_VALUE = 1e-6


class QuantileSketch:
    """Fixed log-bucket histogram with exact count/sum/min/max.

    ``observe`` is O(1); ``merge`` is O(buckets) and satisfies
    ``merge(S(x), S(y)) == S(x + y)`` field by field whenever both
    sketches share a grid, because every field is either an integer
    bucket count, a min/max, or a sum accumulated in the same order
    the engine merges states (plan order).
    """

    def __init__(
        self,
        growth: float = DEFAULT_GROWTH,
        min_value: float = DEFAULT_MIN_VALUE,
    ) -> None:
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        if min_value <= 0.0:
            raise ValueError("min_value must be positive")
        self.growth = growth
        self.min_value = min_value
        self._log_growth = math.log(growth)
        #: Sparse bucket index → count; index ``i`` covers
        #: ``[min_value * growth**i, min_value * growth**(i+1))``.
        self.buckets: Dict[int, int] = {}
        #: Observations at or below zero (timings should never be,
        #: but a clock step must not crash the metrics layer).
        self.nonpositive = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- ingest ----------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return int(math.log(value / self.min_value) / self._log_growth)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.nonpositive += 1
            return
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def update(self, values: Iterable[float]) -> "QuantileSketch":
        for value in values:
            self.observe(value)
        return self

    # -- merge -----------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        if (other.growth, other.min_value) != (self.growth, self.min_value):
            raise ValueError(
                "cannot merge quantile sketches with different bucket grids"
            )
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.nonpositive += other.nonpositive
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return self.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile, ``q`` in [0, 1].

        Walks the cumulative bucket counts to the target rank,
        interpolates linearly inside the bucket, and clamps to the
        exact observed ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            raise ValueError("empty sketch has no quantiles")
        rank = q * (self.count - 1)
        cumulative = self.nonpositive
        if rank < cumulative:
            return self.min
        estimate = self.max
        for index in sorted(self.buckets):
            bucket_count = self.buckets[index]
            if rank < cumulative + bucket_count:
                low = self.min_value * self.growth ** index
                high = low * self.growth
                fraction = (
                    (rank - cumulative) / bucket_count if bucket_count else 0.0
                )
                estimate = low + (high - low) * fraction
                break
            cumulative += bucket_count
        return min(max(estimate, self.min), self.max)

    def summary(self) -> Dict[str, float]:
        """Headline statistics for rendered reports."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe full state (bucket keys become strings)."""
        return {
            "growth": self.growth,
            "min_value": self.min_value,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "nonpositive": self.nonpositive,
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantileSketch":
        sketch = cls(
            growth=float(data["growth"]), min_value=float(data["min_value"])
        )
        sketch.count = int(data["count"])
        sketch.total = float(data["total"])
        sketch.min = math.inf if data["min"] is None else float(data["min"])
        sketch.max = -math.inf if data["max"] is None else float(data["max"])
        sketch.nonpositive = int(data.get("nonpositive", 0))
        sketch.buckets = {
            int(index): int(count)
            for index, count in dict(data["buckets"]).items()
        }
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(count={self.count}, buckets={len(self.buckets)})"
        )
