"""repro.obs — metrics and tracing for engine, stream, and pipeline runs.

The subsystem has four pieces:

* :mod:`repro.obs.sketch` — :class:`QuantileSketch`, a fixed
  log-bucket mergeable quantile sketch (the bounded-memory histogram
  state; also backs :class:`repro.cdn.metrics.DeliveryMetrics`);
* :mod:`repro.obs.registry` — :class:`MetricsRegistry`, counters /
  gauges / histograms with engine-style merge semantics;
* :mod:`repro.obs.runtime` — ambient install (process-global +
  thread-local), mirroring ``repro.faults.runtime``;
* :mod:`repro.obs.spans` / :mod:`repro.obs.export` — stage tracing
  and Prometheus-text / JSON / JSONL exporters.

Typical use::

    from repro import obs

    registry = obs.MetricsRegistry()
    with obs.installed(registry):
        run_characterization_parallel(records, workers=4)
    print(obs.to_prometheus_text(registry))

See ``docs/observability.md`` for the metric catalog and the
determinism contract.
"""

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    active,
    inc,
    install,
    installed,
    max_gauge,
    observe,
    record_span,
    set_gauge,
    shard_scope,
)
from .sketch import DEFAULT_GROWTH, DEFAULT_MIN_VALUE, QuantileSketch
from .spans import span
from .export import to_prometheus_text, write_metrics, write_spans_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "DEFAULT_GROWTH",
    "DEFAULT_MIN_VALUE",
    "active",
    "inc",
    "install",
    "installed",
    "max_gauge",
    "observe",
    "record_span",
    "set_gauge",
    "shard_scope",
    "span",
    "to_prometheus_text",
    "write_metrics",
    "write_spans_jsonl",
]
