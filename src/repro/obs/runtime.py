"""Ambient registry installation — the obs twin of ``repro.faults.runtime``.

Instrumented code never receives a registry argument; it asks this
module for the ambient one and does nothing when none is installed.
That keeps the disabled path to a single module-global ``None`` check
(the property the ``benchmarks/test_perf_obs.py`` gate enforces) and
means instrumentation can be sprinkled through the executor, stream,
and pipeline layers without threading a parameter through every
signature.

Two layers of ambience:

* :func:`installed` swaps the **process-global** registry in a
  compare-and-swap context manager, exactly like
  ``repro.faults.runtime.installed`` — the CLI and tests wrap whole
  runs in it.
* :func:`shard_scope` overrides the registry **thread-locally**.  The
  executor's thread backend runs shards on worker threads of the same
  process; each worker records into its own per-shard registry (so
  the run total can be folded in *plan* order, not completion order)
  and the override makes sure those recordings never race into the
  global registry.  Process-pool workers get a fresh interpreter where
  the global is ``None`` anyway; ``shard_scope`` behaves identically
  there, so ``_run_one`` is backend-agnostic.

The module-level helpers (:func:`inc`, :func:`observe`, ...) are the
only API instrumented code should touch: they resolve the ambient
registry once and no-op when it is absent.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .registry import MetricsRegistry

__all__ = [
    "active",
    "install",
    "installed",
    "shard_scope",
    "inc",
    "observe",
    "set_gauge",
    "max_gauge",
    "record_span",
]

_registry: Optional[MetricsRegistry] = None
_local = threading.local()


def active() -> Optional[MetricsRegistry]:
    """The registry instrumentation should record into, or ``None``.

    A thread-local override (see :func:`shard_scope`) wins over the
    process-global one so engine workers stay isolated per shard.
    """
    override = getattr(_local, "registry", None)
    if override is not None:
        return override
    return _registry


def install(registry: Optional[MetricsRegistry]) -> None:
    """Set (or clear, with ``None``) the process-global registry."""
    global _registry
    _registry = registry


@contextmanager
def installed(registry: Optional[MetricsRegistry]) -> Iterator[None]:
    """Install a process-global registry for the duration of a block.

    ``None`` is a no-op context so call sites can pass an optional
    registry straight through.  Restore is compare-and-swap: nested
    installs unwind in order.
    """
    if registry is None:
        yield
        return
    global _registry
    previous = _registry
    _registry = registry
    try:
        yield
    finally:
        _registry = previous


@contextmanager
def shard_scope(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route this thread's recordings into ``registry`` for a block."""
    previous = getattr(_local, "registry", None)
    _local.registry = registry
    try:
        yield registry
    finally:
        _local.registry = previous


# -- nil-checking recording helpers (the instrumentation API) ------------


def inc(name: str, amount: int = 1, /, **labels) -> None:
    registry = active()
    if registry is not None:
        registry.inc(name, amount, **labels)


def observe(name: str, value: float, /, **labels) -> None:
    registry = active()
    if registry is not None:
        registry.observe(name, value, **labels)


def set_gauge(name: str, value: float, /, **labels) -> None:
    registry = active()
    if registry is not None:
        registry.set_gauge(name, value, **labels)


def max_gauge(name: str, value: float, /, **labels) -> None:
    registry = active()
    if registry is not None:
        registry.max_gauge(name, value, **labels)


def record_span(span: Dict[str, Any]) -> None:
    registry = active()
    if registry is not None:
        registry.record_span(span)
