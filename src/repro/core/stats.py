"""Small shared statistics helpers used across analyses."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ecdf", "histogram", "percentile", "relative_error", "within"]


def percentile(values: Sequence[float], q: float) -> float:
    """The canonical percentile for every report in this repo.

    Linear interpolation between closest ranks (numpy's default), so
    ``percentile([1, 2, 3, 4], 50) == 2.5``.  One definition exists on
    purpose: reports previously disagreed on p50 of the same data
    because ``cdn.metrics`` used nearest-rank while ``analysis.drift``
    used linear interpolation — both now route through here
    (``tests/test_core_stats.py`` pins the cross-module agreement).

    ``q`` is in percent, ``[0, 100]``.  Raises :class:`ValueError` on
    an empty sequence or an out-of-range ``q`` — an undefined
    percentile must never silently become a number.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    if len(values) == 0:
        raise ValueError("percentile of an empty sequence is undefined")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def ecdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF points as (value, cumulative fraction)."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def histogram(
    values: Sequence[float], bin_width: float
) -> List[Tuple[float, int]]:
    """Fixed-width histogram; returns non-empty (bin start, count)."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    counts: Dict[int, int] = {}
    for value in values:
        counts[int(value // bin_width)] = counts.get(int(value // bin_width), 0) + 1
    return sorted((index * bin_width, count) for index, count in counts.items())


def relative_error(measured: float, expected: float) -> float:
    """|measured - expected| / |expected| (inf when expected is 0)."""
    if expected == 0:
        return float("inf") if measured != 0 else 0.0
    return abs(measured - expected) / abs(expected)


def within(measured: float, expected: float, tolerance: float) -> bool:
    """Absolute-difference acceptance check used by the benchmarks."""
    return abs(measured - expected) <= tolerance
