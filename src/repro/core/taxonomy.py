"""The paper's JSON traffic taxonomy (Figure 2).

The taxonomy classifies each request along three axes:

* **Traffic source** — who initiated the request: device type
  (mobile / desktop / embedded / unknown), application class (browser
  vs non-browser), and trigger (human vs machine, which §5.1 infers
  from timing rather than headers).
* **Request type** — upload (POST-like) vs download (GET-like).
* **Response type** — size and cacheability.

These enums are the shared vocabulary of every analysis module; keep
them dependency-free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DeviceType",
    "AppClass",
    "TriggerType",
    "RequestKind",
    "IndustryCategory",
    "TrafficSource",
]


class DeviceType(str, enum.Enum):
    """Device categories from the traffic-source axis (§3.2).

    Embedded devices are non-mobile, non-desktop devices: game
    consoles, IoT devices, smart TVs, smart watches, etc.  ``UNKNOWN``
    covers missing or unidentifiable user agents.
    """

    MOBILE = "mobile"
    DESKTOP = "desktop"
    EMBEDDED = "embedded"
    UNKNOWN = "unknown"


class AppClass(str, enum.Enum):
    """Application class of the requesting software."""

    BROWSER = "browser"
    NATIVE_APP = "native_app"
    SDK = "sdk"
    UNKNOWN = "unknown"

    @property
    def is_browser(self) -> bool:
        return self is AppClass.BROWSER


class TriggerType(str, enum.Enum):
    """Whether a human interaction produced the request (§3.2).

    This is not observable from a single log line; §5.1 infers
    ``MACHINE`` for flows with significant shared periodicity.
    """

    HUMAN = "human"
    MACHINE = "machine"
    UNKNOWN = "unknown"


class RequestKind(str, enum.Enum):
    """Request-type axis: uploads send data, downloads retrieve it."""

    DOWNLOAD = "download"
    UPLOAD = "upload"
    OTHER = "other"


class IndustryCategory(str, enum.Enum):
    """Industry categories used in the Figure 4 cacheability heatmap.

    The paper categorizes domains with a commercial service
    (Symantec SiteReview) into 11 top categories; we enumerate the
    categories it names plus the remaining common CDN verticals.
    """

    NEWS_MEDIA = "News/Media"
    SPORTS = "Sports"
    ENTERTAINMENT = "Entertainment"
    FINANCIAL = "Financial Services"
    STREAMING = "Streaming"
    GAMING = "Gaming"
    ECOMMERCE = "E-commerce"
    SOCIAL = "Social Networking"
    TECHNOLOGY = "Technology"
    TRAVEL = "Travel"
    ADVERTISING = "Advertising"


@dataclass(frozen=True)
class TrafficSource:
    """Resolved traffic-source classification for one request.

    ``raw_platform`` preserves the platform token the classifier
    matched (e.g. ``"Android"``), useful for drill-downs and for
    debugging misclassification.
    """

    device: DeviceType
    app: AppClass
    raw_platform: Optional[str] = None

    @property
    def is_browser(self) -> bool:
        return self.app.is_browser

    @property
    def is_identified(self) -> bool:
        """True when at least the device type could be determined."""
        return self.device is not DeviceType.UNKNOWN
