"""Machine-readable experiment inventory.

The DESIGN.md experiment index, as data: every paper artifact and
extension, which modules implement it, and which benchmark
regenerates it.  Powers the ``repro-json-cdn experiments`` listing
and a self-consistency test that keeps the index honest as the
repository evolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["Experiment", "EXPERIMENTS", "experiments_by_kind"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact."""

    experiment_id: str
    #: "paper" (a table/figure from the evaluation), "extension"
    #: (something the paper proposes but does not run), or "ablation".
    kind: str
    title: str
    modules: Tuple[str, ...]
    benchmark: str  # path relative to the repository root
    paper_reference: str = ""


EXPERIMENTS: Tuple[Experiment, ...] = (
    Experiment(
        "F1", "paper", "JSON:HTML request-ratio trend, 2016→2019",
        ("repro.synth.trend", "repro.analysis.trend"),
        "benchmarks/test_fig1_trend.py", "Figure 1",
    ),
    Experiment(
        "T1", "paper", "Manifest traffic pattern (sessions open on manifests)",
        ("repro.synth.sessions", "repro.analysis.sessionize"),
        "benchmarks/test_tab1_pattern.py", "Table 1",
    ),
    Experiment(
        "T2", "paper", "Dataset summaries (short-term / long-term)",
        ("repro.synth.workload", "repro.logs.summary"),
        "benchmarks/test_tab2_datasets.py", "Table 2",
    ),
    Experiment(
        "F3", "paper", "JSON requests by device type; browser split",
        ("repro.useragent", "repro.analysis.characterize"),
        "benchmarks/test_fig3_devices.py", "Figure 3 / §4",
    ),
    Experiment(
        "S4R", "paper", "Request types (GET/POST)",
        ("repro.analysis.characterize",),
        "benchmarks/test_sec4_requests.py", "§4",
    ),
    Experiment(
        "S4S", "paper", "Response cacheability and sizes",
        ("repro.analysis.cacheability", "repro.analysis.sizes"),
        "benchmarks/test_sec4_responses.py", "§4",
    ),
    Experiment(
        "F4", "paper", "Domain cacheability heatmap by industry",
        ("repro.analysis.cacheability",),
        "benchmarks/test_fig4_heatmap.py", "Figure 4",
    ),
    Experiment(
        "F5", "paper", "Periodicity detection; period histogram",
        ("repro.periodicity",),
        "benchmarks/test_fig5_periods.py", "Figure 5 / §5.1",
    ),
    Experiment(
        "F6", "paper", "Periodic-client share CDF",
        ("repro.periodicity.results",),
        "benchmarks/test_fig6_client_share.py", "Figure 6",
    ),
    Experiment(
        "T3", "paper", "Ngram top-K prediction accuracy",
        ("repro.ngram",),
        "benchmarks/test_tab3_ngram.py", "Table 3",
    ),
    Experiment(
        "X1", "extension", "Ngram prefetching at the edge (+ timing-aware)",
        ("repro.cdn.prefetch", "repro.ngram.timing"),
        "benchmarks/test_ext_prefetch.py", "§5.2 proposal / future work",
    ),
    Experiment(
        "X2", "extension", "Deprioritizing machine-to-machine traffic",
        ("repro.cdn.scheduler",),
        "benchmarks/test_ext_depri.py", "§5.1 proposal",
    ),
    Experiment(
        "X3", "extension", "Geographic/temporal differences across regions",
        ("repro.synth.regions", "repro.analysis.regional"),
        "benchmarks/test_ext_regions.py", "§7 future work",
    ),
    Experiment(
        "A1", "ablation", "Permutation count x in the period detector",
        ("repro.periodicity.detector",),
        "benchmarks/test_abl_permutations.py", "§5.1 parameters",
    ),
    Experiment(
        "A2", "ablation", "Ngram history depth, backoff, per-position",
        ("repro.ngram.model", "repro.ngram.evaluate"),
        "benchmarks/test_abl_ngram_n.py", "§5.2",
    ),
    Experiment(
        "A3", "ablation", "Multi-period flows (comb peeling)",
        ("repro.periodicity.multiperiod",),
        "benchmarks/test_abl_multiperiod.py", "§5.1 future work",
    ),
    Experiment(
        "A4", "ablation", "Cache hierarchy depth (parent tier)",
        ("repro.cdn.edge",),
        "benchmarks/test_abl_tiered_cache.py", "§4 origin path",
    ),
    Experiment(
        "A5", "ablation", "TTL / capacity what-ifs on the JSON trace",
        ("repro.cdn.replay",),
        "benchmarks/test_abl_ttl_sweep.py", "§4 cacheability",
    ),
    Experiment(
        "P", "performance", "Hot-path microbenchmarks",
        ("repro.useragent", "repro.ngram", "repro.cdn.cache",
         "repro.periodicity"),
        "benchmarks/test_perf_hotpaths.py", "",
    ),
    Experiment(
        "P2", "performance", "Sharded engine vs serial characterization",
        ("repro.engine", "repro.core.pipeline"),
        "benchmarks/test_perf_engine.py", "",
    ),
    Experiment(
        "P3", "performance", "Stream ingest throughput (1 vs N workers)",
        ("repro.stream", "repro.core.pipeline"),
        "benchmarks/test_perf_stream.py", "",
    ),
    Experiment(
        "P4", "performance", "Observability overhead (enabled vs disabled)",
        ("repro.obs", "repro.engine", "repro.stream"),
        "benchmarks/test_perf_obs.py", "",
    ),
)


def experiments_by_kind(kind: str) -> List[Experiment]:
    """All experiments of one kind (paper/extension/ablation/performance)."""
    return [exp for exp in EXPERIMENTS if exp.kind == kind]
