"""Plain-text rendering of tables and figures.

Every artifact the benchmarks regenerate can be printed as an ASCII
table/bar chart so a terminal run of the harness reads like the
paper's evaluation section.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["render_table", "render_bar_chart", "render_heatmap", "format_pct"]


def format_pct(value: float, digits: int = 1) -> str:
    """0.553 → '55.3%'."""
    return f"{value * 100:.{digits}f}%"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_bar_chart(
    pairs: Sequence[Tuple[object, float]],
    width: int = 40,
    title: Optional[str] = None,
    value_format: str = "{:.0f}",
) -> str:
    """Horizontal ASCII bar chart (histograms, breakdowns)."""
    if not pairs:
        return title or "(empty)"
    peak = max(value for _, value in pairs) or 1.0
    label_width = max(len(str(label)) for label, _ in pairs)
    lines: List[str] = [title] if title else []
    for label, value in pairs:
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(
            f"{str(label).rjust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)


def render_heatmap(
    rows: Sequence[Tuple[str, Mapping[str, float]]],
    columns: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Category × bucket heatmap with shade characters (Figure 4)."""
    shades = " .:-=+*#%@"
    label_width = max((len(name) for name, _ in rows), default=8)
    col_width = max(max((len(c) for c in columns), default=4), 5)
    lines: List[str] = [title] if title else []
    header = " " * label_width + "  " + "  ".join(
        c.rjust(col_width) for c in columns
    )
    lines.append(header)
    for name, values in rows:
        cells = []
        for column in columns:
            value = values.get(column, 0.0)
            shade = shades[min(len(shades) - 1, int(value * (len(shades) - 1)))]
            cells.append(f"{shade * 3} {value * 100:3.0f}%".rjust(col_width))
        lines.append(name.ljust(label_width) + "  " + "  ".join(cells))
    return "\n".join(lines)
