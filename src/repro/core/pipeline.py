"""End-to-end analysis pipeline: logs in, paper artifacts out.

:func:`run_characterization` reproduces §4 (traffic source, request
type, response type) and :func:`run_pattern_analysis` reproduces §5
(periodicity + prediction) over any iterable of
:class:`repro.logs.record.RequestLog` — synthetic or real.
:meth:`CharacterizationReport.render` prints the §4 findings as text.

:func:`run_characterization_parallel` produces the same §4 report
through the sharded engine (:mod:`repro.engine`): the dataset splits
into shards, each shard folds into a mergeable
:class:`~repro.engine.sketches.CharacterizationState`, and the merged
state finalizes into a report whose counter metrics are identical to
the serial ones.

:func:`run_stream` is the online entry point: it feeds a log source
through the event-time windowed service (:mod:`repro.stream`), whose
per-window accumulators are the same mergeable engine states — so
merging all sealed windows of a replay reproduces the batch results
exactly (see :mod:`repro.stream.accumulators`).

:func:`run_periodicity_parallel` and :func:`run_ngram_parallel`
extend the same contract to the paper's two most expensive analyses.
Both run in engine stages: a record map stage folds shards into
mergeable state (flow timestamp-unions for §5.1, per-client token
buffers for §5.2), the merged state finalizes, and the heavy
computation — period detection over object flows, ngram training and
top-K evaluation over client sequences — fans back out as item-shard
map stages over the merged state.  Results are identical to
:func:`run_pattern_analysis`'s serial path for any worker count,
backend, or shard split.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.cacheability import (
    CacheabilityHeatmap,
    CacheabilityStats,
    analyze_cacheability,
)
from ..analysis.characterize import (
    RequestTypeBreakdown,
    TrafficSourceBreakdown,
    characterize,
)
from ..analysis.sizes import SizeComparison, SizeDistribution, analyze_sizes
from ..logs.record import RequestLog
from ..logs.summary import DatasetSummary
from ..obs.spans import span
from ..ngram.evaluate import AccuracyResult, run_table3
from ..useragent.appid import AppUsageReport, aggregate_apps
from ..periodicity.detector import DetectorConfig
from ..periodicity.flows import FlowFilter
from ..periodicity.results import PeriodicityReport, analyze_logs
from .report import format_pct, render_bar_chart, render_heatmap, render_table

__all__ = [
    "CharacterizationReport",
    "PatternReport",
    "render_periodicity",
    "render_ngram",
    "run_characterization",
    "run_characterization_parallel",
    "run_pattern_analysis",
    "run_pattern_analysis_parallel",
    "run_periodicity_parallel",
    "run_ngram_parallel",
    "run_stream",
]

_HEATMAP_COLUMNS = ("never", "low", "mid", "high", "always")


@dataclass
class CharacterizationReport:
    """Bundle of every §4 artifact for one dataset."""

    summary: DatasetSummary
    traffic_source: TrafficSourceBreakdown
    request_type: RequestTypeBreakdown
    cacheability: CacheabilityStats
    heatmap: CacheabilityHeatmap
    sizes: Dict[str, SizeDistribution]
    apps: Optional[AppUsageReport] = None

    @property
    def size_comparison(self) -> Optional[SizeComparison]:
        json_dist = self.sizes.get("application/json")
        html_dist = self.sizes.get("text/html")
        if not json_dist or not html_dist or not json_dist.count or not html_dist.count:
            return None
        return SizeComparison.between(json_dist, html_dist)

    def render(self, name: str = "dataset") -> str:
        """Human-readable §4 report."""
        parts: List[str] = []
        parts.append(
            render_table(
                ["dataset", "logs", "duration_s", "domains", "clients", "objects"],
                [
                    [
                        name,
                        self.summary.total_logs,
                        f"{self.summary.duration_seconds:.0f}",
                        self.summary.num_domains,
                        self.summary.num_clients,
                        self.summary.num_objects,
                    ]
                ],
                title="Table 2 — dataset summary",
            )
        )
        device_shares = self.traffic_source.device_shares()
        parts.append(
            render_bar_chart(
                [(device, share * 100) for device, share in device_shares.items()],
                title="Figure 3 — JSON requests by device type (%)",
                value_format="{:.1f}%",
            )
        )
        parts.append(
            render_table(
                ["metric", "value"],
                [
                    ["non-browser traffic", format_pct(self.traffic_source.non_browser_fraction)],
                    ["mobile browser traffic", format_pct(self.traffic_source.mobile_browser_fraction)],
                    ["mobile native-app traffic", format_pct(self.traffic_source.mobile_app_fraction)],
                    ["GET requests", format_pct(self.request_type.get_fraction)],
                    ["POST share of non-GET", format_pct(self.request_type.post_share_of_non_get)],
                    ["uncacheable JSON traffic", format_pct(self.cacheability.uncacheable_fraction)],
                ],
                title="§4 — headline shares",
            )
        )
        comparison = self.size_comparison
        if comparison is not None:
            parts.append(
                render_table(
                    ["comparison", "p50", "p75"],
                    [
                        [
                            "JSON smaller than HTML by",
                            format_pct(comparison.smaller_at_p50),
                            format_pct(comparison.smaller_at_p75),
                        ]
                    ],
                    title="§4 — response sizes",
                )
            )
        parts.append(
            render_heatmap(
                self.heatmap.rows(),
                _HEATMAP_COLUMNS,
                title="Figure 4 — domain cacheability by category",
            )
        )
        if self.apps is not None and self.apps.total_requests:
            rows = [
                [
                    name,
                    requests,
                    format_pct(requests / self.apps.total_requests),
                    self.apps.version_spread(name),
                ]
                for name, requests in self.apps.top_apps(8)
            ]
            rows.append(
                [
                    "(identified total)",
                    "-",
                    format_pct(self.apps.identified_fraction),
                    "-",
                ]
            )
            parts.append(
                render_table(
                    ["application", "requests", "share", "versions"],
                    rows,
                    title="§4 — top applications consuming JSON",
                )
            )
        return "\n\n".join(parts)


def render_periodicity(periodicity: PeriodicityReport) -> str:
    """Human-readable §5.1 summary + Figure 5 histogram."""
    parts: List[str] = []
    parts.append(
        render_table(
            ["metric", "value"],
            [
                ["periodic JSON requests", format_pct(periodicity.periodic_request_fraction)],
                ["periodic traffic upload share", format_pct(periodicity.periodic_upload_fraction)],
                ["periodic traffic uncacheable", format_pct(periodicity.periodic_uncacheable_fraction)],
                ["objects with periodic majority", format_pct(periodicity.majority_periodic_fraction())],
            ],
            title="§5.1 — periodicity",
        )
    )
    histogram = periodicity.period_histogram(10.0)
    if histogram:
        parts.append(
            render_bar_chart(
                [(f"{int(start)}s", count) for start, count in histogram],
                title="Figure 5 — object periods (10s bins)",
            )
        )
    return "\n\n".join(parts)


def render_ngram(ngram: Mapping[Tuple[int, int, bool], AccuracyResult]) -> str:
    """Human-readable Table 3 (empty string when no cells)."""
    if not ngram:
        return ""
    ks = sorted({k for _, k, _ in ngram})
    ns = sorted({n for n, _, _ in ngram})
    rows = []
    for n in ns:
        for k in ks:
            clustered = ngram.get((n, k, True))
            actual = ngram.get((n, k, False))
            rows.append(
                [
                    n,
                    k,
                    f"{clustered.accuracy:.2f}" if clustered else "-",
                    f"{actual.accuracy:.2f}" if actual else "-",
                ]
            )
    return render_table(
        ["N", "K", "clustered", "actual"],
        rows,
        title="Table 3 — ngram top-K accuracy",
    )


@dataclass
class PatternReport:
    """Bundle of the §5 artifacts for one dataset."""

    periodicity: PeriodicityReport
    ngram: Dict[Tuple[int, int, bool], AccuracyResult]

    def render(self) -> str:
        parts = [render_periodicity(self.periodicity)]
        ngram_text = render_ngram(self.ngram)
        if ngram_text:
            parts.append(ngram_text)
        return "\n\n".join(parts)


def run_characterization(
    logs: Iterable[RequestLog],
    domain_categories: Optional[Mapping[str, str]] = None,
) -> CharacterizationReport:
    """Run every §4 analysis over a log collection."""
    materialized = list(logs)
    summary = DatasetSummary().update(materialized)
    json_logs = [record for record in materialized if record.is_json]
    traffic_source, request_type = characterize(json_logs, json_only=False)
    cache_stats, heatmap = analyze_cacheability(
        json_logs, domain_categories, json_only=False
    )
    sizes = analyze_sizes(materialized)
    apps = aggregate_apps(json_logs, json_only=False)
    return CharacterizationReport(
        summary=summary,
        traffic_source=traffic_source,
        request_type=request_type,
        cacheability=cache_stats,
        heatmap=heatmap,
        sizes=sizes,
        apps=apps,
    )


def _characterize_shard(shard):
    """Engine map function: fold one shard into a partial §4 state.

    Top-level (not a closure) so the process backend can pickle it.
    All engine map functions in this module follow that rule;
    per-call parameters bind via :func:`functools.partial`, which
    pickles as long as its arguments do.
    """
    from ..engine.state import CharacterizationState

    return CharacterizationState().update(shard.iter_logs())


def _plan_record_shards(logs, logs_dir, workers, num_shards, lenient=False):
    """Shared record-stage planning for every parallel pipeline.

    Exactly one of ``logs`` / ``logs_dir`` must be given: an
    in-memory iterable shards by stable client hash (a client's
    records never straddle shards), a partitioned directory shards
    per edge × hour file (so the dataset never materializes).
    ``lenient`` makes directory shards skip (and count) malformed log
    lines instead of failing the shard.
    """
    from ..engine.shard import plan_directory_shards, plan_memory_shards

    if (logs is None) == (logs_dir is None):
        raise ValueError("provide exactly one of logs= or logs_dir=")
    if num_shards is None:
        num_shards = max(1, workers) * 4
    if logs_dir is not None:
        on_error = "skip" if lenient else "raise"
        return plan_directory_shards(logs_dir, on_error=on_error), num_shards
    return plan_memory_shards(list(logs), num_shards), num_shards


def _stage_executor(
    workers, backend, checkpoint, progress,
    shard_timeout_s=None, retries=0, faults=None,
):
    """Shared executor construction so every pipeline stage exposes
    the same hardening knobs (per-shard timeout, bounded retries,
    fault plan)."""
    from ..engine.executor import ShardExecutor

    return ShardExecutor(
        workers=workers,
        backend=backend,
        checkpoint=checkpoint,
        progress=progress,
        timeout_s=shard_timeout_s,
        retries=retries,
        faults=faults,
    )


def _stage_checkpoint(checkpoint_dir, stage: str):
    """Per-stage checkpoint store, or None.

    Stages get their own subdirectories because shard ids are the
    only checkpoint key: a §4 ``mem-0001…`` partial must never be
    mistaken for a §5.1 flow partial when pipelines share one
    checkpoint directory.
    """
    from ..engine.checkpoint import CheckpointStore

    if checkpoint_dir is None:
        return None
    return CheckpointStore(Path(checkpoint_dir) / stage)


def _flow_collect_shard(shard, flow_filter=None):
    """Engine map function: fold one shard into a §5.1 flow state."""
    from ..engine.flowstate import FlowCollectionState

    return FlowCollectionState(flow_filter).update(shard.iter_logs())


def _detect_periods_shard(shard, detector_config=None, match_tolerance=0.10):
    """Engine map function: detect periods for one object-flow shard."""
    from ..engine.flowstate import PeriodicityDetectionState
    from ..periodicity.detector import PeriodDetector
    from ..periodicity.results import analyze_object_flow

    detector = PeriodDetector(detector_config) if detector_config else PeriodDetector()
    return PeriodicityDetectionState(
        {
            object_id: analyze_object_flow(
                flow, detector=detector, match_tolerance=match_tolerance
            )
            for object_id, flow in shard.items
        }
    )


def _ngram_sequences_shard(shard):
    """Engine map function: buffer one shard's client token sequences."""
    from ..engine.ngramstate import NgramSequenceState

    return NgramSequenceState().update(shard.iter_logs())


def _ngram_client_id(item):
    """Sharding key for (client_id, sequence) items; top-level to pickle."""
    return item[0]


def _ngram_train_shard(shard, order=1):
    """Engine map function: train a partial model on one client shard.

    Items are ``(client_id, sequence)`` pairs sharded by client hash.
    """
    from ..ngram.model import BackoffNgramModel

    return BackoffNgramModel(order=order).fit(
        sequence for _, sequence in shard.items
    )


def _ngram_eval_shard(shard, model=None, ns=(1,), ks=(1, 5, 10)):
    """Engine map function: score one test-client shard against a model."""
    from ..engine.ngramstate import NgramEvalState
    from ..ngram.evaluate import evaluate_topk

    flows = [sequence for _, sequence in shard.items]
    state = NgramEvalState()
    for n in ns:
        for result in evaluate_topk(model, flows, n, ks):
            state.record(n, result.k, result.correct, result.total)
    return state


def run_characterization_parallel(
    logs: Optional[Iterable[RequestLog]] = None,
    domain_categories: Optional[Mapping[str, str]] = None,
    *,
    logs_dir: Optional[str] = None,
    workers: int = 1,
    backend: str = "auto",
    num_shards: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    progress=None,
    with_stats: bool = False,
    shard_timeout_s: Optional[float] = None,
    retries: int = 0,
    faults=None,
    lenient: bool = False,
):
    """§4 characterization through the sharded engine.

    Exactly one input source must be given: ``logs`` (an in-memory
    iterable, sharded by client hash) or ``logs_dir`` (a partitioned
    log directory written by :func:`repro.logs.partition.write_partitioned`,
    sharded per edge × hour file so the dataset never materializes).

    The counter metrics of the returned report — traffic source,
    request type, cacheability, summary counters — are identical to
    :func:`run_characterization` on the same records, for any
    ``workers``/``backend``/``num_shards``: the per-shard states
    merge losslessly and always in plan order.

    ``checkpoint_dir`` enables resume: completed shards persist there
    and a re-run loads them instead of recomputing.  ``progress`` is
    called with ``(ShardResult, done, total)`` per finished shard.
    ``shard_timeout_s``/``retries`` bound hung or flaky shards (see
    ``docs/robustness.md``); ``lenient`` skips malformed log lines
    with a counter instead of failing the shard; ``faults`` installs
    a :class:`~repro.faults.FaultPlan` for the run.
    With ``with_stats=True`` returns ``(report, RunReport)`` — the
    run report carries retry/quarantine counters.
    """
    from ..engine.state import CharacterizationState

    shards, _ = _plan_record_shards(
        logs, logs_dir, workers, num_shards, lenient=lenient
    )
    executor = _stage_executor(
        workers, backend,
        _stage_checkpoint(checkpoint_dir, "characterization"), progress,
        shard_timeout_s=shard_timeout_s, retries=retries, faults=faults,
    )
    with span("pipeline.characterization", shards=len(shards)):
        state, run_report = executor.run(shards, _characterize_shard)
    if state is None:
        state = CharacterizationState()
    report = state.to_report(domain_categories)
    if with_stats:
        return report, run_report
    return report


def run_periodicity_parallel(
    logs: Optional[Iterable[RequestLog]] = None,
    *,
    logs_dir: Optional[str] = None,
    flow_filter: Optional[FlowFilter] = None,
    detector_config: Optional[DetectorConfig] = None,
    match_tolerance: float = 0.10,
    workers: int = 1,
    backend: str = "auto",
    num_shards: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    progress=None,
    with_stats: bool = False,
    shard_timeout_s: Optional[float] = None,
    retries: int = 0,
    faults=None,
    lenient: bool = False,
):
    """§5.1 periodicity analysis through the sharded engine.

    Two engine stages:

    1. **Flow collection** — record shards fold into mergeable
       :class:`~repro.engine.flowstate.FlowCollectionState` (raw
       per-(object, client) timestamp lists), merged by timestamp
       union.  Correct under any shard split because the paper's
       significance filters apply only after the merge.
    2. **Detection** — the merged, filtered object flows shard by
       ``stable_hash64(object_id)`` and each shard runs the same
       per-object detection as the serial pass
       (:func:`~repro.periodicity.results.analyze_object_flow`).

    The returned report's flows, detected periods, consensus
    verdicts, and every aggregate are identical to
    :func:`~repro.periodicity.results.analyze_logs` over the same
    records, for any ``workers``/``backend``/``num_shards``.
    With ``with_stats=True`` returns ``(report, [RunReport, RunReport])``
    (one per stage).
    """
    from ..engine.flowstate import FlowCollectionState
    from ..engine.shard import plan_item_shards

    shards, num_shards = _plan_record_shards(
        logs, logs_dir, workers, num_shards, lenient=lenient
    )
    collect = _stage_executor(
        workers, backend,
        _stage_checkpoint(checkpoint_dir, "periodicity-flows"), progress,
        shard_timeout_s=shard_timeout_s, retries=retries, faults=faults,
    )
    with span("pipeline.periodicity-flows", shards=len(shards)):
        flow_state, collect_report = collect.run(
            shards, partial(_flow_collect_shard, flow_filter=flow_filter)
        )
    if flow_state is None:
        flow_state = FlowCollectionState(flow_filter)
    flows = flow_state.finalize()

    detect_shards = plan_item_shards(
        sorted(flows.items()),
        num_shards,
        key=lambda item: item[0],
        prefix="periodicity-detect",
    )
    detect = _stage_executor(
        workers, backend,
        _stage_checkpoint(checkpoint_dir, "periodicity-detect"), progress,
        shard_timeout_s=shard_timeout_s, retries=retries, faults=faults,
    )
    with span("pipeline.periodicity-detect", shards=len(detect_shards)):
        detect_state, detect_report = detect.run(
            detect_shards,
            partial(
                _detect_periods_shard,
                detector_config=detector_config,
                match_tolerance=match_tolerance,
            ),
        )
    objects = detect_state.objects if detect_state is not None else {}
    report = PeriodicityReport(
        objects={object_id: objects[object_id] for object_id in sorted(objects)},
        total_json_requests=flow_state.total_json_requests,
    )
    if with_stats:
        return report, [collect_report, detect_report]
    return report


def run_ngram_parallel(
    logs: Optional[Iterable[RequestLog]] = None,
    *,
    logs_dir: Optional[str] = None,
    ns: Sequence[int] = (1,),
    ks: Sequence[int] = (1, 5, 10),
    test_fraction: float = 0.25,
    seed: int = 0,
    model_order: Optional[int] = None,
    workers: int = 1,
    backend: str = "auto",
    num_shards: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    progress=None,
    with_stats: bool = False,
    shard_timeout_s: Optional[float] = None,
    retries: int = 0,
    faults=None,
    lenient: bool = False,
):
    """The Table 3 sweep through the sharded engine.

    Three engine stages per URL variant (raw, clustered):

    1. **Sequences** — record shards fold into mergeable
       :class:`~repro.engine.ngramstate.NgramSequenceState`
       per-client token buffers (both variants in one pass over the
       records); buffers merge by concatenation and sort once.
    2. **Training** — the training clients' sequences (hash-split
       exactly like :func:`~repro.ngram.evaluate.split_clients`)
       shard by client id; each shard trains a shard-local
       :class:`~repro.ngram.model.BackoffNgramModel` and the models
       merge count tables and vocabularies losslessly.
    3. **Evaluation** — test sequences shard by client id; each
       shard scores top-K hits against the merged model and the hit
       counters sum.

    Accuracies are identical to
    :func:`~repro.ngram.evaluate.run_table3` for any
    ``workers``/``backend``/``num_shards``: training counts and
    evaluation tallies are order-independent sums, and the model
    ranks equal-count successors by token, never by insertion order.
    With ``with_stats=True`` returns ``(results, [RunReport, …])``.
    """
    from ..engine.ngramstate import NgramSequenceState
    from ..engine.shard import plan_item_shards
    from ..ngram.evaluate import split_clients
    from ..ngram.model import BackoffNgramModel

    shards, num_shards = _plan_record_shards(
        logs, logs_dir, workers, num_shards, lenient=lenient
    )
    sequence_stage = _stage_executor(
        workers, backend,
        _stage_checkpoint(checkpoint_dir, "ngram-sequences"), progress,
        shard_timeout_s=shard_timeout_s, retries=retries, faults=faults,
    )
    with span("pipeline.ngram-sequences", shards=len(shards)):
        sequence_state, sequence_report = sequence_stage.run(
            shards, _ngram_sequences_shard
        )
    if sequence_state is None:
        sequence_state = NgramSequenceState()

    order = model_order if model_order is not None else max(ns)
    results: Dict[Tuple[int, int, bool], AccuracyResult] = {}
    stage_reports = [sequence_report]
    for clustered in (False, True):
        variant = "clustered" if clustered else "raw"
        sequences = sequence_state.sequences(clustered)
        train_ids, test_ids = split_clients(
            sequences, test_fraction=test_fraction, seed=seed
        )

        train_shards = plan_item_shards(
            [(client_id, sequences[client_id]) for client_id in sorted(train_ids)],
            num_shards,
            key=_ngram_client_id,
            prefix=f"ngram-train-{variant}",
        )
        train = _stage_executor(
            workers, backend,
            _stage_checkpoint(checkpoint_dir, f"ngram-train-{variant}"),
            progress,
            shard_timeout_s=shard_timeout_s, retries=retries, faults=faults,
        )
        with span("pipeline.ngram-train", variant=variant):
            model, train_report = train.run(
                train_shards, partial(_ngram_train_shard, order=order)
            )
        if model is None:
            model = BackoffNgramModel(order=order)

        eval_shards = plan_item_shards(
            [(client_id, sequences[client_id]) for client_id in sorted(test_ids)],
            num_shards,
            key=_ngram_client_id,
            prefix=f"ngram-eval-{variant}",
        )
        evaluate = _stage_executor(
            workers, backend,
            _stage_checkpoint(checkpoint_dir, f"ngram-eval-{variant}"),
            progress,
            shard_timeout_s=shard_timeout_s, retries=retries, faults=faults,
        )
        with span("pipeline.ngram-eval", variant=variant):
            eval_state, eval_report = evaluate.run(
                eval_shards, partial(_ngram_eval_shard, model=model, ns=ns, ks=ks)
            )
        stage_reports.extend([train_report, eval_report])
        for n in ns:
            for k in sorted(ks):
                cell = (n, k)
                correct = eval_state.correct.get(cell, 0) if eval_state else 0
                total = eval_state.total.get(cell, 0) if eval_state else 0
                results[(n, k, clustered)] = AccuracyResult(
                    n=n, k=k, clustered=clustered, correct=correct, total=total
                )
    if with_stats:
        return results, stage_reports
    return results


def run_stream(
    logs: Optional[Iterable[RequestLog]] = None,
    *,
    logs_dir: Optional[str] = None,
    window_s: float = 300.0,
    slide_s: Optional[float] = None,
    watermark_lag_s: float = 0.0,
    flow_filter: Optional[FlowFilter] = None,
    detector_config: Optional[DetectorConfig] = None,
    detect_periods: bool = True,
    predict_urls: bool = True,
    top_k: int = 5,
    drift_threshold: float = 0.10,
    tracks: Optional[Sequence[str]] = None,
    queue_capacity: int = 65_536,
    queue_policy: str = "block",
    ingest_workers: int = 1,
    checkpoint_dir: Optional[str] = None,
    emit=None,
    on_snapshot=None,
    keep_accumulators: bool = False,
    faults=None,
):
    """Online windowed analysis over a log source (:mod:`repro.stream`).

    Exactly one input source must be given: ``logs`` (any iterable —
    replayed in-process) or ``logs_dir`` (a partitioned directory;
    with ``ingest_workers > 1`` each edge streams as its own source
    through the bounded ingest queue and keeps its own watermark
    frontier, so inter-edge skew never makes records late —
    ``watermark_lag_s`` only needs to cover disorder *within* an
    edge's own stream).

    Returns the :class:`~repro.stream.service.StreamResult` with one
    :class:`~repro.stream.snapshots.WindowSnapshot` per sealed
    window.  ``emit`` (a path or text handle) appends each snapshot
    as a JSONL line as it seals; ``checkpoint_dir`` persists sealed
    windows so a killed stream resumes without double-counting
    (see ``docs/streaming.md``).  ``faults`` installs a
    :class:`~repro.faults.FaultPlan` for the run (ingest stalls, torn
    window checkpoints, damaged source lines — see
    ``docs/robustness.md``).
    """
    from ..faults import runtime as fault_runtime
    from ..stream import (
        ALL_TRACKS,
        JsonlEmitter,
        StreamConfig,
        StreamService,
        directory_sources,
        iterable_source,
        merged_directory_source,
    )

    if (logs is None) == (logs_dir is None):
        raise ValueError("provide exactly one of logs= or logs_dir=")
    config = StreamConfig(
        window_s=window_s,
        slide_s=slide_s,
        watermark_lag_s=watermark_lag_s,
        tracks=tuple(tracks) if tracks is not None else ALL_TRACKS,
        flow_filter=flow_filter,
        detector_config=detector_config,
        match_tolerance=0.10,
        detect_periods=detect_periods,
        predict_urls=predict_urls,
        top_k=top_k,
        drift_threshold=drift_threshold,
        queue_capacity=queue_capacity,
        queue_policy=queue_policy,
        ingest_workers=ingest_workers,
        checkpoint_dir=checkpoint_dir,
    )
    emitter = None
    if emit is not None:
        emitter = emit if isinstance(emit, JsonlEmitter) else JsonlEmitter(emit)
    service = StreamService(
        config,
        emitter=emitter,
        on_snapshot=on_snapshot,
        keep_accumulators=keep_accumulators,
    )
    try:
        with fault_runtime.installed(faults):
            if logs is not None:
                if ingest_workers > 1 or queue_policy == "drop":
                    return service.run([iterable_source(logs)])
                return service.replay(logs)
            if ingest_workers > 1:
                return service.run(directory_sources(logs_dir))
            return service.run([merged_directory_source(logs_dir)])
    finally:
        if emitter is not None and not isinstance(emit, JsonlEmitter):
            emitter.close()


def run_pattern_analysis(
    logs: Iterable[RequestLog],
    flow_filter: Optional[FlowFilter] = None,
    detector_config: Optional[DetectorConfig] = None,
    ngram_ns: Sequence[int] = (1,),
    ngram_ks: Sequence[int] = (1, 5, 10),
) -> PatternReport:
    """Run every §5 analysis over a log collection."""
    materialized = list(logs)
    periodicity = analyze_logs(
        materialized, flow_filter=flow_filter, detector_config=detector_config
    )
    ngram = run_table3(materialized, ns=ngram_ns, ks=ngram_ks)
    return PatternReport(periodicity=periodicity, ngram=ngram)


def run_pattern_analysis_parallel(
    logs: Optional[Iterable[RequestLog]] = None,
    *,
    logs_dir: Optional[str] = None,
    flow_filter: Optional[FlowFilter] = None,
    detector_config: Optional[DetectorConfig] = None,
    ngram_ns: Sequence[int] = (1,),
    ngram_ks: Sequence[int] = (1, 5, 10),
    workers: int = 1,
    backend: str = "auto",
    num_shards: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    progress=None,
    shard_timeout_s: Optional[float] = None,
    retries: int = 0,
    faults=None,
    lenient: bool = False,
) -> PatternReport:
    """Every §5 analysis through the sharded engine.

    Composes :func:`run_periodicity_parallel` and
    :func:`run_ngram_parallel` into the same :class:`PatternReport`
    that :func:`run_pattern_analysis` builds serially — and with
    identical contents, for any ``workers``/``backend``/shard split.
    An in-memory ``logs`` iterable is materialized once and shared by
    both pipelines; with ``logs_dir`` each pipeline streams the
    partition files itself.
    """
    if (logs is None) == (logs_dir is None):
        raise ValueError("provide exactly one of logs= or logs_dir=")
    if logs is not None:
        logs = list(logs)
    periodicity = run_periodicity_parallel(
        logs,
        logs_dir=logs_dir,
        flow_filter=flow_filter,
        detector_config=detector_config,
        workers=workers,
        backend=backend,
        num_shards=num_shards,
        checkpoint_dir=checkpoint_dir,
        progress=progress,
        shard_timeout_s=shard_timeout_s,
        retries=retries,
        faults=faults,
        lenient=lenient,
    )
    ngram = run_ngram_parallel(
        logs,
        logs_dir=logs_dir,
        ns=ngram_ns,
        ks=ngram_ks,
        workers=workers,
        backend=backend,
        num_shards=num_shards,
        checkpoint_dir=checkpoint_dir,
        progress=progress,
        shard_timeout_s=shard_timeout_s,
        retries=retries,
        faults=faults,
        lenient=lenient,
    )
    return PatternReport(periodicity=periodicity, ngram=ngram)
