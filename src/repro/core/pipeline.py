"""End-to-end analysis pipeline: logs in, paper artifacts out.

:func:`run_characterization` reproduces §4 (traffic source, request
type, response type) and :func:`run_pattern_analysis` reproduces §5
(periodicity + prediction) over any iterable of
:class:`repro.logs.record.RequestLog` — synthetic or real.
:meth:`CharacterizationReport.render` prints the §4 findings as text.

:func:`run_characterization_parallel` produces the same §4 report
through the sharded engine (:mod:`repro.engine`): the dataset splits
into shards, each shard folds into a mergeable
:class:`~repro.engine.sketches.CharacterizationState`, and the merged
state finalizes into a report whose counter metrics are identical to
the serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.cacheability import (
    CacheabilityHeatmap,
    CacheabilityStats,
    analyze_cacheability,
)
from ..analysis.characterize import (
    RequestTypeBreakdown,
    TrafficSourceBreakdown,
    characterize,
)
from ..analysis.sizes import SizeComparison, SizeDistribution, analyze_sizes
from ..logs.record import RequestLog
from ..logs.summary import DatasetSummary
from ..ngram.evaluate import AccuracyResult, run_table3
from ..useragent.appid import AppUsageReport, aggregate_apps
from ..periodicity.detector import DetectorConfig
from ..periodicity.flows import FlowFilter
from ..periodicity.results import PeriodicityReport, analyze_logs
from .report import format_pct, render_bar_chart, render_heatmap, render_table

__all__ = [
    "CharacterizationReport",
    "PatternReport",
    "run_characterization",
    "run_characterization_parallel",
    "run_pattern_analysis",
]

_HEATMAP_COLUMNS = ("never", "low", "mid", "high", "always")


@dataclass
class CharacterizationReport:
    """Bundle of every §4 artifact for one dataset."""

    summary: DatasetSummary
    traffic_source: TrafficSourceBreakdown
    request_type: RequestTypeBreakdown
    cacheability: CacheabilityStats
    heatmap: CacheabilityHeatmap
    sizes: Dict[str, SizeDistribution]
    apps: Optional[AppUsageReport] = None

    @property
    def size_comparison(self) -> Optional[SizeComparison]:
        json_dist = self.sizes.get("application/json")
        html_dist = self.sizes.get("text/html")
        if not json_dist or not html_dist or not json_dist.count or not html_dist.count:
            return None
        return SizeComparison.between(json_dist, html_dist)

    def render(self, name: str = "dataset") -> str:
        """Human-readable §4 report."""
        parts: List[str] = []
        parts.append(
            render_table(
                ["dataset", "logs", "duration_s", "domains", "clients", "objects"],
                [
                    [
                        name,
                        self.summary.total_logs,
                        f"{self.summary.duration_seconds:.0f}",
                        self.summary.num_domains,
                        self.summary.num_clients,
                        self.summary.num_objects,
                    ]
                ],
                title="Table 2 — dataset summary",
            )
        )
        device_shares = self.traffic_source.device_shares()
        parts.append(
            render_bar_chart(
                [(device, share * 100) for device, share in device_shares.items()],
                title="Figure 3 — JSON requests by device type (%)",
                value_format="{:.1f}%",
            )
        )
        parts.append(
            render_table(
                ["metric", "value"],
                [
                    ["non-browser traffic", format_pct(self.traffic_source.non_browser_fraction)],
                    ["mobile browser traffic", format_pct(self.traffic_source.mobile_browser_fraction)],
                    ["mobile native-app traffic", format_pct(self.traffic_source.mobile_app_fraction)],
                    ["GET requests", format_pct(self.request_type.get_fraction)],
                    ["POST share of non-GET", format_pct(self.request_type.post_share_of_non_get)],
                    ["uncacheable JSON traffic", format_pct(self.cacheability.uncacheable_fraction)],
                ],
                title="§4 — headline shares",
            )
        )
        comparison = self.size_comparison
        if comparison is not None:
            parts.append(
                render_table(
                    ["comparison", "p50", "p75"],
                    [
                        [
                            "JSON smaller than HTML by",
                            format_pct(comparison.smaller_at_p50),
                            format_pct(comparison.smaller_at_p75),
                        ]
                    ],
                    title="§4 — response sizes",
                )
            )
        parts.append(
            render_heatmap(
                self.heatmap.rows(),
                _HEATMAP_COLUMNS,
                title="Figure 4 — domain cacheability by category",
            )
        )
        if self.apps is not None and self.apps.total_requests:
            rows = [
                [
                    name,
                    requests,
                    format_pct(requests / self.apps.total_requests),
                    self.apps.version_spread(name),
                ]
                for name, requests in self.apps.top_apps(8)
            ]
            rows.append(
                [
                    "(identified total)",
                    "-",
                    format_pct(self.apps.identified_fraction),
                    "-",
                ]
            )
            parts.append(
                render_table(
                    ["application", "requests", "share", "versions"],
                    rows,
                    title="§4 — top applications consuming JSON",
                )
            )
        return "\n\n".join(parts)


@dataclass
class PatternReport:
    """Bundle of the §5 artifacts for one dataset."""

    periodicity: PeriodicityReport
    ngram: Dict[Tuple[int, int, bool], AccuracyResult]

    def render(self) -> str:
        parts: List[str] = []
        parts.append(
            render_table(
                ["metric", "value"],
                [
                    ["periodic JSON requests", format_pct(self.periodicity.periodic_request_fraction)],
                    ["periodic traffic upload share", format_pct(self.periodicity.periodic_upload_fraction)],
                    ["periodic traffic uncacheable", format_pct(self.periodicity.periodic_uncacheable_fraction)],
                    ["objects with periodic majority", format_pct(self.periodicity.majority_periodic_fraction())],
                ],
                title="§5.1 — periodicity",
            )
        )
        histogram = self.periodicity.period_histogram(10.0)
        if histogram:
            parts.append(
                render_bar_chart(
                    [(f"{int(start)}s", count) for start, count in histogram],
                    title="Figure 5 — object periods (10s bins)",
                )
            )
        if self.ngram:
            ks = sorted({k for _, k, _ in self.ngram})
            ns = sorted({n for n, _, _ in self.ngram})
            rows = []
            for n in ns:
                for k in ks:
                    clustered = self.ngram.get((n, k, True))
                    actual = self.ngram.get((n, k, False))
                    rows.append(
                        [
                            n,
                            k,
                            f"{clustered.accuracy:.2f}" if clustered else "-",
                            f"{actual.accuracy:.2f}" if actual else "-",
                        ]
                    )
            parts.append(
                render_table(
                    ["N", "K", "clustered", "actual"],
                    rows,
                    title="Table 3 — ngram top-K accuracy",
                )
            )
        return "\n\n".join(parts)


def run_characterization(
    logs: Iterable[RequestLog],
    domain_categories: Optional[Mapping[str, str]] = None,
) -> CharacterizationReport:
    """Run every §4 analysis over a log collection."""
    materialized = list(logs)
    summary = DatasetSummary().update(materialized)
    json_logs = [record for record in materialized if record.is_json]
    traffic_source, request_type = characterize(json_logs, json_only=False)
    cache_stats, heatmap = analyze_cacheability(
        json_logs, domain_categories, json_only=False
    )
    sizes = analyze_sizes(materialized)
    apps = aggregate_apps(json_logs, json_only=False)
    return CharacterizationReport(
        summary=summary,
        traffic_source=traffic_source,
        request_type=request_type,
        cacheability=cache_stats,
        heatmap=heatmap,
        sizes=sizes,
        apps=apps,
    )


def _characterize_shard(shard):
    """Engine map function: fold one shard into a partial §4 state.

    Top-level (not a closure) so the process backend can pickle it.
    """
    from ..engine.state import CharacterizationState

    return CharacterizationState().update(shard.iter_logs())


def run_characterization_parallel(
    logs: Optional[Iterable[RequestLog]] = None,
    domain_categories: Optional[Mapping[str, str]] = None,
    *,
    logs_dir: Optional[str] = None,
    workers: int = 1,
    backend: str = "auto",
    num_shards: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    progress=None,
    with_stats: bool = False,
):
    """§4 characterization through the sharded engine.

    Exactly one input source must be given: ``logs`` (an in-memory
    iterable, sharded by client hash) or ``logs_dir`` (a partitioned
    log directory written by :func:`repro.logs.partition.write_partitioned`,
    sharded per edge × hour file so the dataset never materializes).

    The counter metrics of the returned report — traffic source,
    request type, cacheability, summary counters — are identical to
    :func:`run_characterization` on the same records, for any
    ``workers``/``backend``/``num_shards``: the per-shard states
    merge losslessly and always in plan order.

    ``checkpoint_dir`` enables resume: completed shards persist there
    and a re-run loads them instead of recomputing.  ``progress`` is
    called with ``(ShardResult, done, total)`` per finished shard.
    With ``with_stats=True`` returns ``(report, RunReport)``.
    """
    from ..engine.checkpoint import CheckpointStore
    from ..engine.executor import ShardExecutor
    from ..engine.shard import plan_directory_shards, plan_memory_shards
    from ..engine.state import CharacterizationState

    if (logs is None) == (logs_dir is None):
        raise ValueError("provide exactly one of logs= or logs_dir=")
    if logs_dir is not None:
        shards = plan_directory_shards(logs_dir)
    else:
        materialized = list(logs)
        if num_shards is None:
            num_shards = max(1, workers) * 4
        shards = plan_memory_shards(materialized, num_shards)

    checkpoint = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    executor = ShardExecutor(
        workers=workers, backend=backend, checkpoint=checkpoint, progress=progress
    )
    state, run_report = executor.run(shards, _characterize_shard)
    if state is None:
        state = CharacterizationState()
    report = state.to_report(domain_categories)
    if with_stats:
        return report, run_report
    return report


def run_pattern_analysis(
    logs: Iterable[RequestLog],
    flow_filter: Optional[FlowFilter] = None,
    detector_config: Optional[DetectorConfig] = None,
    ngram_ns: Sequence[int] = (1,),
    ngram_ks: Sequence[int] = (1, 5, 10),
) -> PatternReport:
    """Run every §5 analysis over a log collection."""
    materialized = list(logs)
    periodicity = analyze_logs(
        materialized, flow_filter=flow_filter, detector_config=detector_config
    )
    ngram = run_table3(materialized, ns=ngram_ns, ks=ngram_ks)
    return PatternReport(periodicity=periodicity, ngram=ngram)
