"""The paper's core: taxonomy, end-to-end pipeline, reporting."""

from .inventory import EXPERIMENTS, Experiment, experiments_by_kind
from .pipeline import (
    CharacterizationReport,
    PatternReport,
    run_characterization,
    run_pattern_analysis,
)
from .report import format_pct, render_bar_chart, render_heatmap, render_table
from .stats import ecdf, histogram, relative_error, within
from .taxonomy import (
    AppClass,
    DeviceType,
    IndustryCategory,
    RequestKind,
    TrafficSource,
    TriggerType,
)

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "experiments_by_kind",
    "DeviceType",
    "AppClass",
    "TriggerType",
    "RequestKind",
    "IndustryCategory",
    "TrafficSource",
    "CharacterizationReport",
    "PatternReport",
    "run_characterization",
    "run_pattern_analysis",
    "render_table",
    "render_bar_chart",
    "render_heatmap",
    "format_pct",
    "ecdf",
    "histogram",
    "relative_error",
    "within",
]
