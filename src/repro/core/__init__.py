"""The paper's core: taxonomy, end-to-end pipeline, reporting."""

from .inventory import EXPERIMENTS, Experiment, experiments_by_kind
from .pipeline import (
    CharacterizationReport,
    PatternReport,
    run_characterization,
    run_characterization_parallel,
    run_ngram_parallel,
    run_pattern_analysis,
    run_pattern_analysis_parallel,
    run_periodicity_parallel,
)
from .report import format_pct, render_bar_chart, render_heatmap, render_table
from .stats import ecdf, histogram, relative_error, within
from .taxonomy import (
    AppClass,
    DeviceType,
    IndustryCategory,
    RequestKind,
    TrafficSource,
    TriggerType,
)

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "experiments_by_kind",
    "DeviceType",
    "AppClass",
    "TriggerType",
    "RequestKind",
    "IndustryCategory",
    "TrafficSource",
    "CharacterizationReport",
    "PatternReport",
    "run_characterization",
    "run_characterization_parallel",
    "run_ngram_parallel",
    "run_pattern_analysis",
    "run_pattern_analysis_parallel",
    "run_periodicity_parallel",
    "render_table",
    "render_bar_chart",
    "render_heatmap",
    "format_pct",
    "ecdf",
    "histogram",
    "relative_error",
    "within",
]
