"""repro — reproduction of "Characterizing JSON Traffic Patterns on a
CDN" (Vargas, Goel, Steiner, Balasubramanian; IMC 2019).

The package is organized as the paper's system stack:

* :mod:`repro.logs` — edge request-log substrate (records, schema,
  anonymization, serialization, filters, summaries);
* :mod:`repro.useragent` — user-agent parsing, reference databases,
  device/app classification, and a UA generation grammar;
* :mod:`repro.synth` — the synthetic CDN traffic generator standing
  in for the proprietary Akamai datasets (see DESIGN.md);
* :mod:`repro.cdn` — edge cache/origin/latency simulator plus the
  proposed optimizations (prefetching, M2M deprioritization);
* :mod:`repro.periodicity` — §5.1 period detection;
* :mod:`repro.ngram` — §5.2 request prediction;
* :mod:`repro.analysis` — §4 characterization analyses;
* :mod:`repro.core` — taxonomy, end-to-end pipeline, reporting.

Quickstart::

    from repro.synth import WorkloadBuilder, short_term_config
    from repro.core import run_characterization

    dataset = WorkloadBuilder(short_term_config(50_000, seed=7)).build()
    report = run_characterization(
        dataset.logs,
        {d.name: d.category.value for d in dataset.domains},
    )
    print(report.render("short-term"))
"""

from .core import run_characterization, run_pattern_analysis
from .logs import RequestLog
from .synth import (
    PAPER,
    Dataset,
    WorkloadBuilder,
    long_term_config,
    short_term_config,
)

__version__ = "1.0.0"

__all__ = [
    "RequestLog",
    "WorkloadBuilder",
    "Dataset",
    "short_term_config",
    "long_term_config",
    "PAPER",
    "run_characterization",
    "run_pattern_analysis",
    "__version__",
]
