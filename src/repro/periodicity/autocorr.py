"""Autocorrelation of request-arrival series (time domain).

Requests are binned into a count series at the analysis sampling
rate (the paper uses 1 second, judging finer periods undetectable
under network jitter).  The circularity-free autocorrelation is
computed via FFT with zero padding — O(n log n), which matters
because the permutation test recomputes it hundreds of times per
flow.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["bin_series", "autocorrelation", "acf_peak"]


def bin_series(
    timestamps: np.ndarray,
    sampling_rate_s: float = 1.0,
    origin: Optional[float] = None,
) -> np.ndarray:
    """Bin event timestamps into a count series.

    The series spans the flow's own extent (first to last event), not
    the whole dataset window — a 20-minute app-session flow should be
    analyzed over 20 minutes of signal, not 24 hours of zeros.
    """
    if timestamps.size == 0:
        return np.zeros(0, dtype=np.float64)
    if sampling_rate_s <= 0:
        raise ValueError("sampling_rate_s must be positive")
    start = timestamps[0] if origin is None else origin
    indices = np.floor((timestamps - start) / sampling_rate_s).astype(np.int64)
    indices = indices[indices >= 0]
    if indices.size == 0:
        return np.zeros(0, dtype=np.float64)
    return np.bincount(indices).astype(np.float64)


def autocorrelation(series: np.ndarray) -> np.ndarray:
    """Linear (non-circular) autocorrelation, normalized to acf[0]=1.

    The mean is removed first so a flow's overall rate does not
    register as correlation.
    """
    n = series.size
    if n == 0:
        return np.zeros(0)
    centered = series - series.mean()
    if not np.any(centered):
        return np.zeros(n)
    nfft = 1 << int(np.ceil(np.log2(2 * n)))
    spectrum = np.fft.rfft(centered, nfft)
    acf = np.fft.irfft(spectrum * np.conjugate(spectrum), nfft)[:n]
    if acf[0] <= 0:
        return np.zeros(n)
    return acf / acf[0]


def acf_peak(
    acf: np.ndarray,
    min_lag: int = 2,
    max_lag: Optional[int] = None,
) -> Tuple[int, float]:
    """Largest autocorrelation peak in the admissible lag range.

    Lags below ``min_lag`` are excluded (adjacent-bin correlation is
    burstiness, not periodicity) and lags beyond half the series are
    excluded (fewer than two full cycles of evidence).

    Returns ``(lag_bins, value)``; ``(0, 0.0)`` when no admissible lag
    exists.
    """
    n = acf.size
    ceiling = n // 2 if max_lag is None else min(max_lag, n - 1)
    if ceiling < min_lag:
        return 0, 0.0
    window = acf[min_lag : ceiling + 1]
    if window.size == 0:
        return 0, 0.0
    offset = int(np.argmax(window))
    return min_lag + offset, float(window[offset])


def acf_local_peak(
    acf: np.ndarray, around_lag: int, tolerance: int
) -> Tuple[int, float]:
    """Best ACF value within ``around_lag ± tolerance`` (hill climb).

    Used to "line up" a periodogram candidate with the time domain:
    the periodogram's frequency resolution is coarse for long
    periods, so the exact period is read off the nearest ACF hill.
    """
    n = acf.size
    low = max(1, around_lag - tolerance)
    high = min(n - 1, around_lag + tolerance)
    if high < low:
        return 0, 0.0
    window = acf[low : high + 1]
    offset = int(np.argmax(window))
    return low + offset, float(window[offset])
