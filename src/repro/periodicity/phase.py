"""Phase-coherence analysis of periodic flows.

Figure 6 establishes that many clients share an object's *period*;
the operational question that follows is whether they also share its
*phase*.  Phase-aligned timers (devices synchronized by a push
rollout, cron-style on-the-minute scheduling) all fire in the same
instant and hammer the origin in bursts; phase-staggered timers
spread the same load evenly.

For a flow with period ``p``, each event has a phase ``t mod p``
mapped onto the unit circle.  The *resultant length* R of the mean
phase vector measures coherence: R→1 means all clients fire together
(thundering herd), R→0 means phases are uniformly staggered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from .flows import ObjectFlow

__all__ = ["PhaseProfile", "phase_coherence", "object_phase_profile"]


@dataclass(frozen=True)
class PhaseProfile:
    """Phase structure of one periodic object flow."""

    object_id: str
    period_s: float
    #: Circular resultant length of client mean phases, in [0, 1].
    coherence: float
    #: Each client's mean phase (seconds past the period boundary).
    client_phases_s: Mapping[str, float]
    #: Peak-to-mean ratio of the per-phase-bin arrival histogram: the
    #: load-spike factor an origin sees each period.
    burst_factor: float

    @property
    def synchronized(self) -> bool:
        """Heuristic: R above 0.7 means a de-facto thundering herd."""
        return self.coherence > 0.7


def _mean_phase(timestamps: np.ndarray, period_s: float) -> Optional[float]:
    """Circular mean of event phases, or None for empty input."""
    if timestamps.size == 0:
        return None
    angles = (timestamps % period_s) / period_s * 2 * math.pi
    x = float(np.mean(np.cos(angles)))
    y = float(np.mean(np.sin(angles)))
    angle = math.atan2(y, x) % (2 * math.pi)
    return angle / (2 * math.pi) * period_s


def phase_coherence(phases_s: Sequence[float], period_s: float) -> float:
    """Resultant length R of a set of phases on the period circle."""
    if not phases_s:
        return 0.0
    angles = np.asarray(phases_s) / period_s * 2 * math.pi
    x = float(np.mean(np.cos(angles)))
    y = float(np.mean(np.sin(angles)))
    return math.hypot(x, y)


def object_phase_profile(
    flow: ObjectFlow,
    period_s: float,
    bins: int = 20,
) -> PhaseProfile:
    """Phase profile of one object flow at a known period.

    The period usually comes from the §5.1 detector; callers pass it
    in so this analysis stays decoupled from detection.
    """
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    client_phases: Dict[str, float] = {}
    all_offsets: List[np.ndarray] = []
    for client_id, client_flow in flow.client_flows.items():
        mean = _mean_phase(client_flow.timestamps, period_s)
        if mean is not None:
            client_phases[client_id] = mean
        all_offsets.append(client_flow.timestamps % period_s)

    coherence = phase_coherence(list(client_phases.values()), period_s)

    merged = np.concatenate(all_offsets) if all_offsets else np.empty(0)
    if merged.size:
        counts, _ = np.histogram(merged, bins=bins, range=(0.0, period_s))
        mean_count = counts.mean() if counts.mean() > 0 else 1.0
        burst_factor = float(counts.max() / mean_count)
    else:
        burst_factor = 1.0

    return PhaseProfile(
        object_id=flow.object_id,
        period_s=period_s,
        coherence=coherence,
        client_phases_s=client_phases,
        burst_factor=burst_factor,
    )
