"""The §5.1 period detector.

Implements the paper's four-step extension of Vlachos et al. [29]:

1. compute the autocorrelation and Fourier periodogram of the flow;
2. randomly permute the flow ``x`` times, recording each
   permutation's maximum autocorrelation peak and maximum spectral
   power;
3. take the ``(x-1)``-th largest permuted maxima as thresholds
   (with x=100 this is the strictest-but-one order statistic — a
   ~99th-percentile noise bar);
4. discard insignificant peaks and *line up* the two domains: a
   period is reported only where a strong spectral peak and a strong
   autocorrelation hill agree, and the reported period is read off
   the ACF hill (better resolution at long periods).

The detector returns the single most significant period or None —
the paper explicitly assumes one period per flow and leaves
multi-period analysis to future work.

Permutations shuffle the *binned count series*, which preserves the
marginal rate while destroying all temporal structure; this is the
null model both domains are thresholded against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .autocorr import acf_local_peak, acf_peak, autocorrelation, bin_series
from .spectrum import dominant_frequencies, frequency_to_period_bins, periodogram

__all__ = ["DetectorConfig", "DetectedPeriod", "PeriodDetector"]


@dataclass(frozen=True)
class DetectorConfig:
    """Detector parameters (§5.1 "Choosing Parameters")."""

    #: Number of random permutations (paper: x = 100; beyond that,
    #: results stop changing).
    permutations: int = 100
    #: Bin width; periods below it are unresolvable under jitter.
    sampling_rate_s: float = 1.0
    #: Smallest admissible period, in bins.
    min_period_bins: int = 2
    #: Require at least this many full cycles of evidence.
    min_cycles: int = 3
    #: Spectral candidates to try lining up with the ACF.
    top_k_frequencies: int = 8
    #: Harmonic multiples of each spectral candidate to consider: a
    #: comb signal's spectral energy concentrates in harmonics, so the
    #: true period is often an integer multiple of the strongest
    #: spectral peak's implied period.
    max_harmonic: int = 8
    #: Relative half-width of the ACF window around each spectral
    #: candidate when lining up the two domains.
    lineup_tolerance: float = 0.15
    #: Among lined-up lags, prefer the *smallest* lag whose ACF value
    #: is within this factor of the best — an ACF comb peaks at every
    #: multiple of the period, and the period is the smallest of them.
    fundamental_slack: float = 0.85
    #: Minimum events for the detector to even try.
    min_events: int = 8
    #: Bound on series length; longer flows are re-binned coarser and
    #: the reported period then refined at full resolution.
    max_bins: int = 8192
    #: RNG seed for the permutation test (fixed ⇒ deterministic runs).
    seed: int = 0


@dataclass(frozen=True)
class DetectedPeriod:
    """A significant period found in one flow."""

    period_s: float
    acf_value: float
    spectral_power: float
    acf_threshold: float
    power_threshold: float

    def matches(self, other: "DetectedPeriod", tolerance: float = 0.10) -> bool:
        """Whether two detections describe the same period.

        Relative tolerance, floored at one sampling bin — two flows
        polled from the same timer can disagree by a bin after
        jitter.
        """
        if other is None:
            return False
        big = max(self.period_s, other.period_s)
        allowed = max(tolerance * big, 1.0)
        return abs(self.period_s - other.period_s) <= allowed


class PeriodDetector:
    """Runs the permutation-thresholded two-domain detection."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()

    # -- public API ---------------------------------------------------------

    def detect(self, timestamps: np.ndarray) -> Optional[DetectedPeriod]:
        """Detect the most significant period in an event-time array.

        Returns None when the flow shows no period that clears both
        permutation thresholds and the cross-domain line-up.

        Flows spanning more than ``max_bins`` sampling intervals are
        handled in two attempts: first at full resolution on the
        densest ``max_bins``-second crop of the flow (short timer
        periods live inside duty windows and survive cropping), then —
        if the crop shows nothing — at a coarser bin width over the
        whole span (long infrastructure periods need the full extent),
        with the detected period refined back to full resolution from
        the raw inter-arrival structure.
        """
        config = self.config
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if timestamps.size < config.min_events:
            return None
        span = float(timestamps[-1] - timestamps[0])
        if span / config.sampling_rate_s <= config.max_bins:
            return self._detect_at(timestamps, config.sampling_rate_s)

        fine_result: Optional[DetectedPeriod] = None
        cropped = self._densest_window(timestamps)
        if cropped.size >= config.min_events:
            fine_result = self._detect_at(cropped, config.sampling_rate_s)

        coarse_rate = span / config.max_bins
        coarse_result = self._detect_at(timestamps, coarse_rate)
        if coarse_result is not None:
            refined = self._refine_period(
                timestamps, coarse_result.period_s, coarse_rate
            )
            coarse_result = DetectedPeriod(
                period_s=refined,
                acf_value=coarse_result.acf_value,
                spectral_power=coarse_result.spectral_power,
                acf_threshold=coarse_result.acf_threshold,
                power_threshold=coarse_result.power_threshold,
            )

        # Both passes can succeed with different answers (short timer
        # periods favor the fine crop; long infrastructure periods
        # need the full span).  The stronger autocorrelation evidence
        # wins.
        if fine_result is None:
            return coarse_result
        if coarse_result is None:
            return fine_result
        if coarse_result.acf_value > fine_result.acf_value:
            return coarse_result
        return fine_result

    def _densest_window(self, timestamps: np.ndarray) -> np.ndarray:
        """The busiest ``max_bins``-second contiguous slice of a flow."""
        window = self.config.max_bins * self.config.sampling_rate_s
        ends = np.searchsorted(timestamps, timestamps + window, side="right")
        counts = ends - np.arange(timestamps.size)
        start = int(np.argmax(counts))
        return timestamps[start : ends[start]]

    def _detect_at(
        self, timestamps: np.ndarray, rate: float
    ) -> Optional[DetectedPeriod]:
        """One detection pass at a fixed bin width."""
        config = self.config
        series = bin_series(timestamps, rate)
        n = series.size
        max_lag = n // max(config.min_cycles, 1)
        if n < 2 * config.min_period_bins or max_lag < config.min_period_bins:
            return None

        acf = autocorrelation(series)
        best_lag, best_acf = acf_peak(acf, config.min_period_bins, max_lag)
        freqs, power = periodogram(series)
        candidates = dominant_frequencies(
            freqs,
            power,
            top_k=config.top_k_frequencies,
            min_period_bins=config.min_period_bins,
            max_period_bins=max_lag,
        )
        if best_lag == 0 or not candidates:
            return None

        acf_threshold, power_threshold = self._permutation_thresholds(
            series, max_lag
        )
        if best_acf <= acf_threshold:
            return None

        lined_up = self._line_up(
            acf, candidates, power_threshold, acf_threshold, max_lag
        )
        if lined_up is None:
            return None
        lag, acf_value, spectral_power = lined_up
        lag, acf_value = self._descend_to_fundamental(
            acf, lag, acf_value, acf_threshold
        )
        return DetectedPeriod(
            period_s=lag * rate,
            acf_value=acf_value,
            spectral_power=spectral_power,
            acf_threshold=acf_threshold,
            power_threshold=power_threshold,
        )

    def _descend_to_fundamental(
        self,
        acf: np.ndarray,
        lag: int,
        value: float,
        acf_threshold: float,
    ) -> Tuple[int, float]:
        """Replace a harmonic-multiple lag by the true fundamental.

        The ACF of a periodic flow peaks at *every* multiple of the
        period, and bin quantization can make a multiple's peak edge
        out the fundamental's.  A genuine fundamental at ``lag / k``
        must itself clear the permutation threshold — random
        coincidences at a sub-multiple do not — so the smallest
        threshold-clearing sub-multiple is the period.
        """
        config = self.config
        best_lag, best_value = lag, value
        for divisor in range(config.max_harmonic, 1, -1):
            candidate = lag / divisor
            if candidate < config.min_period_bins:
                continue
            tolerance = max(1, int(round(candidate * config.lineup_tolerance)))
            sub_lag, sub_value = acf_local_peak(
                acf, int(round(candidate)), tolerance
            )
            if sub_lag < config.min_period_bins:
                continue
            if sub_value > acf_threshold and sub_value >= 0.5 * value:
                return sub_lag, sub_value
        return best_lag, best_value

    def _refine_period(
        self, timestamps: np.ndarray, estimate_s: float, coarse_rate_s: float
    ) -> float:
        """Sharpen a coarse period estimate to full resolution.

        Collects pairwise event gaps within ±1.5 coarse bins of the
        estimate (via a sorted-array window walk, not an O(n²) sweep),
        histograms them at full resolution, and returns the median of
        the gaps in the modal bin — the mode, not the overall median,
        because merged multi-client flows mix timer gaps with uniform
        cross-client gaps inside the window.
        """
        window = 1.5 * coarse_rate_s
        low, high = estimate_s - window, estimate_s + window
        if low <= 0:
            return estimate_s
        gaps: list = []
        right_lo = np.searchsorted(timestamps, timestamps + low, side="left")
        right_hi = np.searchsorted(timestamps, timestamps + high, side="right")
        for i in range(timestamps.size):
            for j in range(right_lo[i], right_hi[i]):
                gaps.append(timestamps[j] - timestamps[i])
            if len(gaps) > 10_000:
                break
        if not gaps:
            return estimate_s
        values = np.asarray(gaps)
        fine = self.config.sampling_rate_s
        bins = np.floor((values - low) / fine).astype(np.int64)
        modal = np.bincount(bins).argmax()
        in_mode = values[(bins >= modal - 1) & (bins <= modal + 1)]
        return float(np.median(in_mode))

    # -- steps ------------------------------------------------------------------

    def _permutation_thresholds(
        self, series: np.ndarray, max_lag: int
    ) -> Tuple[float, float]:
        """Step 2-3: noise thresholds from permuted series.

        All permutations are evaluated as a batch: one (x, nfft) FFT
        for the spectra and one for the autocorrelations, which keeps
        x=100 affordable on day-long series.
        """
        config = self.config
        x = max(2, config.permutations)
        rng = np.random.default_rng(config.seed)
        n = series.size
        matrix = np.tile(series, (x, 1))
        # Row-wise independent shuffles.
        permuted_columns = rng.random((x, n)).argsort(axis=1)
        matrix = np.take_along_axis(matrix, permuted_columns, axis=1)
        centered = matrix - matrix.mean(axis=1, keepdims=True)

        nfft = 1 << int(np.ceil(np.log2(2 * n)))
        spectra = np.fft.rfft(centered, nfft, axis=1)
        power = (np.abs(spectra) ** 2) / n
        # Admissible band matches the real analysis.
        freqs = np.fft.rfftfreq(nfft, d=1.0)
        band = (freqs > 0) & (freqs <= 1.0 / config.min_period_bins)
        band &= freqs >= 1.0 / max(max_lag, config.min_period_bins)
        max_power = (
            power[:, band].max(axis=1) if np.any(band) else np.zeros(x)
        )

        acf_matrix = np.fft.irfft(spectra * np.conjugate(spectra), nfft, axis=1)[:, :n]
        zero = acf_matrix[:, 0].copy()
        zero[zero <= 0] = 1.0
        acf_matrix /= zero[:, None]
        lag_ceiling = min(max_lag, n - 1)
        window = acf_matrix[:, config.min_period_bins : lag_ceiling + 1]
        max_acf = window.max(axis=1) if window.size else np.zeros(x)

        # (x-1)-th largest = second-largest of x maxima.
        acf_threshold = float(np.sort(max_acf)[-2])
        power_threshold = float(np.sort(max_power)[-2])
        return acf_threshold, power_threshold

    def _line_up(
        self,
        acf: np.ndarray,
        candidates: Sequence[Tuple[float, float]],
        power_threshold: float,
        acf_threshold: float,
        max_lag: int,
    ) -> Optional[Tuple[int, float, float]]:
        """Step 4: cross-validate spectral candidates on the ACF.

        A comb signal spreads its spectral energy over harmonics, so
        each significant frequency is expanded to the periods implied
        by its harmonic multiples before the ACF look-up.  Among all
        lined-up lags, the reported period is the *smallest* lag whose
        ACF value is within ``fundamental_slack`` of the best — the
        ACF of a periodic flow peaks at every multiple of the true
        period and the fundamental is the smallest such peak.

        Returns ``(lag, acf_value, power)`` or None.
        """
        config = self.config
        lined: List[Tuple[int, float, float]] = []
        seen_lags: set = set()
        for frequency, spectral_power in candidates:
            if spectral_power <= power_threshold:
                continue
            base_period = frequency_to_period_bins(frequency)
            for harmonic in range(1, config.max_harmonic + 1):
                period_bins = base_period * harmonic
                if period_bins > max_lag:
                    break
                tolerance = max(
                    1, int(round(period_bins * config.lineup_tolerance))
                )
                lag, value = acf_local_peak(
                    acf, int(round(period_bins)), tolerance
                )
                if lag < config.min_period_bins or lag > max_lag:
                    continue
                if value <= acf_threshold or lag in seen_lags:
                    continue
                seen_lags.add(lag)
                lined.append((lag, value, spectral_power))
        if not lined:
            return None
        best_value = max(value for _, value, _ in lined)
        eligible = [
            entry
            for entry in lined
            if entry[1] >= config.fundamental_slack * best_value
        ]
        return min(eligible, key=lambda entry: entry[0])
