"""Periodicity mining (§5.1): flows, two-domain detection with
permutation thresholds, and dataset-level aggregation.
"""

from .autocorr import acf_local_peak, acf_peak, autocorrelation, bin_series
from .detector import DetectedPeriod, DetectorConfig, PeriodDetector
from .multiperiod import MultiPeriodDetector, PeriodComponent
from .phase import PhaseProfile, object_phase_profile, phase_coherence
from .flows import ClientObjectFlow, FlowFilter, ObjectFlow, extract_flows
from .results import (
    ObjectPeriodicity,
    PeriodicityReport,
    analyze_flows,
    analyze_logs,
)
from .spectrum import dominant_frequencies, frequency_to_period_bins, periodogram

__all__ = [
    "bin_series",
    "autocorrelation",
    "acf_peak",
    "acf_local_peak",
    "periodogram",
    "dominant_frequencies",
    "frequency_to_period_bins",
    "DetectorConfig",
    "DetectedPeriod",
    "PeriodDetector",
    "MultiPeriodDetector",
    "PhaseProfile",
    "object_phase_profile",
    "phase_coherence",
    "PeriodComponent",
    "ClientObjectFlow",
    "ObjectFlow",
    "FlowFilter",
    "extract_flows",
    "ObjectPeriodicity",
    "PeriodicityReport",
    "analyze_flows",
    "analyze_logs",
]
