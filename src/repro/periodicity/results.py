"""Periodicity analysis over a whole dataset (§5.1 results).

Runs the detector over every object flow and client-object flow,
labels a client flow *periodic* when its period matches its object's
period (the paper's rule), and aggregates:

* the share of JSON requests that is periodic (paper: 6.3%),
* the Figure 5 histogram of object-flow periods,
* the Figure 6 CDF of each object's periodic-client share,
* the method/cacheability mix of periodic traffic (paper: 78%
  upload, 56.2% uncacheable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..logs.record import RequestLog
from .detector import DetectedPeriod, DetectorConfig, PeriodDetector
from .flows import FlowFilter, ObjectFlow, extract_flows

__all__ = [
    "ObjectPeriodicity",
    "PeriodicityReport",
    "analyze_object_flow",
    "analyze_flows",
    "analyze_logs",
]


@dataclass
class ObjectPeriodicity:
    """Detection outcome for one object flow."""

    object_id: str
    object_period: Optional[DetectedPeriod]
    #: How the object period was determined: "object-flow" (the
    #: paper's method — detection on the merged flow) or
    #: "client-consensus" (our extension — the merged flow of a few
    #: interleaved same-period clients can show phase artifacts, but a
    #: majority of per-client detections agreeing on one period is
    #: stronger evidence).
    object_period_source: str = "object-flow"
    #: client id → detected period (None when no period found).
    client_periods: Dict[str, Optional[DetectedPeriod]] = field(default_factory=dict)
    #: Clients whose period matches the object period.
    periodic_clients: List[str] = field(default_factory=list)
    periodic_request_count: int = 0
    periodic_upload_count: int = 0
    periodic_uncacheable_count: int = 0
    total_request_count: int = 0

    @property
    def is_periodic(self) -> bool:
        return self.object_period is not None and bool(self.periodic_clients)

    @property
    def periodic_client_share(self) -> float:
        total = len(self.client_periods)
        return len(self.periodic_clients) / total if total else 0.0


@dataclass
class PeriodicityReport:
    """Dataset-level periodicity summary."""

    objects: Dict[str, ObjectPeriodicity]
    total_json_requests: int

    # -- headline fractions ----------------------------------------------------

    @property
    def periodic_request_count(self) -> int:
        return sum(obj.periodic_request_count for obj in self.objects.values())

    @property
    def periodic_request_fraction(self) -> float:
        """Share of all JSON requests in periodic client flows (6.3%)."""
        if not self.total_json_requests:
            return 0.0
        return self.periodic_request_count / self.total_json_requests

    @property
    def periodic_upload_fraction(self) -> float:
        """Upload share within periodic traffic (paper: 78%)."""
        total = self.periodic_request_count
        if not total:
            return 0.0
        uploads = sum(obj.periodic_upload_count for obj in self.objects.values())
        return uploads / total

    @property
    def periodic_uncacheable_fraction(self) -> float:
        """Uncacheable share within periodic traffic (paper: 56.2%)."""
        total = self.periodic_request_count
        if not total:
            return 0.0
        uncacheable = sum(
            obj.periodic_uncacheable_count for obj in self.objects.values()
        )
        return uncacheable / total

    # -- Figure 5 ------------------------------------------------------------

    def object_periods(self) -> List[float]:
        """Detected object-flow periods (seconds), periodic objects only."""
        return [
            obj.object_period.period_s
            for obj in self.objects.values()
            if obj.is_periodic and obj.object_period is not None
        ]

    def period_histogram(
        self, bin_width_s: float = 10.0
    ) -> List[Tuple[float, int]]:
        """Histogram of object periods — the Figure 5 series.

        Returns (bin start, count) pairs for non-empty bins.
        """
        periods = self.object_periods()
        if not periods:
            return []
        counts: Dict[int, int] = {}
        for period in periods:
            counts[int(period // bin_width_s)] = (
                counts.get(int(period // bin_width_s), 0) + 1
            )
        return sorted(
            (index * bin_width_s, count) for index, count in counts.items()
        )

    # -- Figure 6 -----------------------------------------------------------

    def periodic_client_shares(self) -> List[float]:
        """Per-object share of periodic clients — the Figure 6 sample."""
        return [
            obj.periodic_client_share
            for obj in self.objects.values()
            if obj.object_period is not None
        ]

    def share_cdf(self) -> List[Tuple[float, float]]:
        """(share, cumulative fraction of objects) — the Figure 6 line."""
        shares = sorted(self.periodic_client_shares())
        n = len(shares)
        return [(share, (index + 1) / n) for index, share in enumerate(shares)]

    def majority_periodic_fraction(self) -> float:
        """Fraction of periodic objects with >50% periodic clients."""
        shares = self.periodic_client_shares()
        if not shares:
            return 0.0
        return sum(1 for share in shares if share > 0.5) / len(shares)


#: Minimum per-client detections that must agree before a client
#: consensus may override (or supply) the object-flow period.
_CONSENSUS_MIN_CLIENTS = 3


def _client_consensus(
    client_periods: Mapping[str, Optional[DetectedPeriod]],
    match_tolerance: float,
) -> Optional[DetectedPeriod]:
    """Largest cluster of agreeing client periods, if big enough.

    Per-client false positives are rare (the permutation threshold
    holds each to ~1%), so three independent clients agreeing on one
    period is strong evidence that it is the object's period.

    Candidates are scanned in sorted period order, so equal-size
    cluster ties resolve to the smallest period no matter how the
    client map is ordered — the parallel pipeline rebuilds flows in
    a different client order than the serial pass, and both must
    elect the same consensus.
    """
    detected = sorted(
        (period for period in client_periods.values() if period is not None),
        key=lambda period: (
            period.period_s,
            period.acf_value,
            period.spectral_power,
        ),
    )
    best_cluster: List[DetectedPeriod] = []
    for candidate in detected:
        cluster = [
            other for other in detected if candidate.matches(other, match_tolerance)
        ]
        if len(cluster) > len(best_cluster):
            best_cluster = cluster
    if len(best_cluster) < _CONSENSUS_MIN_CLIENTS:
        return None
    # The cluster's median period is the consensus representative.
    ordered = sorted(period.period_s for period in best_cluster)
    median = ordered[len(ordered) // 2]
    representative = min(
        best_cluster, key=lambda period: abs(period.period_s - median)
    )
    return representative


def analyze_object_flow(
    flow: ObjectFlow,
    detector: Optional[PeriodDetector] = None,
    match_tolerance: float = 0.10,
) -> ObjectPeriodicity:
    """Run period detection over one object flow.

    The object period comes from the paper's merged-flow detection,
    reconciled against the per-client detections: when more clients
    agree on a different period than match the merged-flow one (an
    interleaving artifact of few same-period clients at distinct
    phases), the client consensus wins.

    Every value computed here is a pure function of the flow's
    contents: clients are visited in sorted-id order and consensus
    ties resolve canonically, so the sharded pipeline (which rebuilds
    flows in a different client order than the serial pass) produces
    an identical outcome.
    """
    detector = detector or PeriodDetector()
    outcome = ObjectPeriodicity(
        object_id=flow.object_id,
        object_period=detector.detect(flow.merged_timestamps()),
    )
    outcome.total_request_count = flow.request_count
    ordered_flows = sorted(flow.client_flows.items())
    for client_id, client_flow in ordered_flows:
        outcome.client_periods[client_id] = detector.detect(
            client_flow.timestamps
        )

    consensus = _client_consensus(outcome.client_periods, match_tolerance)
    if consensus is not None:
        matches_object = (
            sum(
                1
                for period in outcome.client_periods.values()
                if period is not None
                and outcome.object_period is not None
                and period.matches(outcome.object_period, match_tolerance)
            )
            if outcome.object_period is not None
            else 0
        )
        matches_consensus = sum(
            1
            for period in outcome.client_periods.values()
            if period is not None and period.matches(consensus, match_tolerance)
        )
        if outcome.object_period is None or matches_consensus > matches_object:
            outcome.object_period = consensus
            outcome.object_period_source = "client-consensus"

    for client_id, client_flow in ordered_flows:
        detected = outcome.client_periods[client_id]
        if (
            detected is not None
            and outcome.object_period is not None
            and detected.matches(outcome.object_period, match_tolerance)
        ):
            outcome.periodic_clients.append(client_id)
            outcome.periodic_request_count += client_flow.request_count
            outcome.periodic_upload_count += client_flow.upload_count
            outcome.periodic_uncacheable_count += client_flow.uncacheable_count
    return outcome


def analyze_flows(
    flows: Mapping[str, ObjectFlow],
    total_json_requests: int,
    detector: Optional[PeriodDetector] = None,
    match_tolerance: float = 0.10,
) -> PeriodicityReport:
    """Run period detection over pre-extracted flows."""
    detector = detector or PeriodDetector()
    objects: Dict[str, ObjectPeriodicity] = {
        object_id: analyze_object_flow(
            flow, detector=detector, match_tolerance=match_tolerance
        )
        for object_id, flow in flows.items()
    }
    return PeriodicityReport(
        objects=objects, total_json_requests=total_json_requests
    )


def analyze_logs(
    logs: Iterable[RequestLog],
    flow_filter: Optional[FlowFilter] = None,
    detector_config: Optional[DetectorConfig] = None,
    match_tolerance: float = 0.10,
) -> PeriodicityReport:
    """End-to-end §5.1 analysis of a log collection.

    Materializes the JSON request count and the filtered flows in one
    pass, then runs detection.
    """
    materialized = list(logs)
    total_json = sum(1 for record in materialized if record.is_json)
    flows = extract_flows(materialized, flow_filter)
    detector = PeriodDetector(detector_config) if detector_config else None
    return analyze_flows(
        flows, total_json, detector=detector, match_tolerance=match_tolerance
    )
