"""Flow extraction (§5.1).

The paper defines:

* an **object flow** — the sequence of requests made by *all* clients
  to a specific object (unique URL);
* a **client-object flow** (CO_flow) — the subsequence from one
  client, identified by the (user agent, anonymized IP) pair.

and filters out client-object flows with fewer than 10 requests and
object flows with fewer than 10 clients.  This module builds those
flows from a log stream in one pass, carrying along the method and
cacheability tallies needed for the §5.1 result that periodic traffic
is 56.2% uncacheable and 78% upload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..logs.record import RequestLog

__all__ = ["ClientObjectFlow", "ObjectFlow", "FlowFilter", "extract_flows"]


@dataclass
class ClientObjectFlow:
    """One client's request subsequence to one object."""

    object_id: str
    client_id: str
    timestamps: np.ndarray  # sorted, seconds
    upload_count: int = 0
    uncacheable_count: int = 0

    @property
    def request_count(self) -> int:
        return int(self.timestamps.size)

    @property
    def span_seconds(self) -> float:
        if self.timestamps.size < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])


@dataclass
class ObjectFlow:
    """All requests to one object, with per-client breakdown."""

    object_id: str
    client_flows: Dict[str, ClientObjectFlow] = field(default_factory=dict)

    @property
    def client_count(self) -> int:
        return len(self.client_flows)

    @property
    def request_count(self) -> int:
        return sum(flow.request_count for flow in self.client_flows.values())

    def merged_timestamps(self) -> np.ndarray:
        """All clients' timestamps merged and sorted (the object flow)."""
        if not self.client_flows:
            return np.empty(0)
        return np.sort(
            np.concatenate(
                [flow.timestamps for flow in self.client_flows.values()]
            )
        )


@dataclass(frozen=True)
class FlowFilter:
    """The paper's §5.1 significance filters."""

    min_requests_per_client_flow: int = 10
    min_clients_per_object_flow: int = 10
    json_only: bool = True


def extract_flows(
    logs: Iterable[RequestLog],
    flow_filter: Optional[FlowFilter] = None,
) -> Dict[str, ObjectFlow]:
    """Build filtered object flows from a log stream.

    Returns a mapping of object id → :class:`ObjectFlow` containing
    only flows that pass both filters.  Client flows below the request
    threshold are dropped *before* the object-level client count is
    applied, mirroring the paper's order (a client that touched an
    object twice does not make the object "popular").
    """
    criteria = flow_filter or FlowFilter()
    raw: Dict[Tuple[str, str], List[float]] = {}
    uploads: Dict[Tuple[str, str], int] = {}
    uncacheable: Dict[Tuple[str, str], int] = {}

    for record in logs:
        if criteria.json_only and not record.is_json:
            continue
        key = (record.object_id, record.client_id)
        raw.setdefault(key, []).append(record.timestamp)
        if record.is_upload:
            uploads[key] = uploads.get(key, 0) + 1
        if not record.cacheable:
            uncacheable[key] = uncacheable.get(key, 0) + 1

    objects: Dict[str, ObjectFlow] = {}
    for (object_id, client_id), times in raw.items():
        if len(times) < criteria.min_requests_per_client_flow:
            continue
        flow = ClientObjectFlow(
            object_id=object_id,
            client_id=client_id,
            timestamps=np.sort(np.asarray(times, dtype=np.float64)),
            upload_count=uploads.get((object_id, client_id), 0),
            uncacheable_count=uncacheable.get((object_id, client_id), 0),
        )
        objects.setdefault(object_id, ObjectFlow(object_id)).client_flows[
            client_id
        ] = flow

    return {
        object_id: flow
        for object_id, flow in objects.items()
        if flow.client_count >= criteria.min_clients_per_object_flow
    }
