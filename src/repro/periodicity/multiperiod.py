"""Multi-period detection — the paper's §5.1 future work.

The paper's algorithm "either returns the most significant period ...
or no period for the flow" and explicitly assumes one period per
flow, leaving multi-period analysis open.  Real flows can carry
several timers at once: an app polling scores every 30 s while its
telemetry batcher fires every 10 min, both against the same API host.

This module detects multiple periods by *iterative comb subtraction*:

1. run the single-period detector;
2. estimate the detected timer's phase, and peel off the events that
   lie on that comb (within a jitter window);
3. recurse on the residual events until no significant period
   remains or ``max_periods`` is reached.

Peeling in the *event* domain (rather than notch-filtering the
spectrum) keeps the residual a genuine point process, so the
permutation thresholds of the inner detector remain valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .detector import DetectedPeriod, DetectorConfig, PeriodDetector

__all__ = ["PeriodComponent", "MultiPeriodDetector"]


@dataclass(frozen=True)
class PeriodComponent:
    """One timer found in a flow."""

    detection: DetectedPeriod
    #: Events attributed to this timer.
    event_count: int
    #: Estimated phase offset of the comb (seconds past flow start).
    phase_s: float

    @property
    def period_s(self) -> float:
        return self.detection.period_s


class MultiPeriodDetector:
    """Finds up to ``max_periods`` timers in one event flow.

    Parameters
    ----------
    config:
        Inner single-period detector configuration.
    max_periods:
        Upper bound on components to extract.
    jitter_window_s:
        Half-width of the comb when peeling events; should cover the
        timer jitter (the §5.1 sampling argument suggests ~1 s).
    min_comb_share:
        A detected comb must claim at least this share of the
        remaining events to be accepted — a guard against peeling
        accidental alignments.
    """

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        max_periods: int = 3,
        jitter_window_s: float = 1.5,
        min_comb_share: float = 0.15,
    ) -> None:
        if max_periods < 1:
            raise ValueError("max_periods must be >= 1")
        self._detector = PeriodDetector(config)
        self.max_periods = max_periods
        self.jitter_window_s = jitter_window_s
        self.min_comb_share = min_comb_share

    def detect(self, timestamps: np.ndarray) -> List[PeriodComponent]:
        """Extract period components, strongest first."""
        remaining = np.sort(np.asarray(timestamps, dtype=np.float64))
        components: List[PeriodComponent] = []
        for _ in range(self.max_periods):
            if remaining.size < self._detector.config.min_events:
                break
            found = self._detector.detect(remaining)
            if found is None:
                break
            on_comb, phase = self._comb_membership(remaining, found.period_s)
            claimed = int(on_comb.sum())
            if claimed < self.min_comb_share * remaining.size:
                break
            components.append(
                PeriodComponent(
                    detection=found, event_count=claimed, phase_s=phase
                )
            )
            remaining = remaining[~on_comb]
        return components

    # -- internals -----------------------------------------------------------

    def _comb_membership(
        self, timestamps: np.ndarray, period_s: float
    ) -> Tuple[np.ndarray, float]:
        """Mark events lying on the detected comb.

        The comb phase is the circular mode of ``t mod period``; an
        event belongs to the comb when its phase residual is within
        the jitter window.
        """
        offsets = np.mod(timestamps - timestamps[0], period_s)
        # Histogram the phases at jitter resolution and take the modal
        # bin; circular wrap handled by duplicating the first bin.
        resolution = max(self.jitter_window_s / 2.0, 1e-3)
        bins = max(4, int(np.ceil(period_s / resolution)))
        counts, edges = np.histogram(offsets, bins=bins, range=(0.0, period_s))
        modal = int(np.argmax(counts))
        phase = (edges[modal] + edges[modal + 1]) / 2.0

        residual = np.abs(offsets - phase)
        residual = np.minimum(residual, period_s - residual)  # circular
        on_comb = residual <= self.jitter_window_s
        return on_comb, float(phase)
