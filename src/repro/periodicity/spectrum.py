"""Periodogram of request-arrival series (frequency domain).

The Fourier side of the §5.1 detector.  The periodogram is good at
*flagging* that some periodicity exists and at which approximate
frequency; the autocorrelation side then pins down the exact period.
This division of labor follows Vlachos et al. [29].
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["periodogram", "dominant_frequencies", "frequency_to_period_bins"]


def periodogram(series: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mean-removed periodogram.

    Returns ``(frequencies, power)`` where frequencies are in cycles
    per bin (0 < f <= 0.5).  The DC term is dropped.
    """
    n = series.size
    if n == 0:
        return np.zeros(0), np.zeros(0)
    centered = series - series.mean()
    nfft = 1 << int(np.ceil(np.log2(max(2, n))))
    spectrum = np.fft.rfft(centered, nfft)
    power = (np.abs(spectrum) ** 2) / n
    freqs = np.fft.rfftfreq(nfft, d=1.0)
    return freqs[1:], power[1:]


def dominant_frequencies(
    freqs: np.ndarray,
    power: np.ndarray,
    top_k: int = 5,
    min_period_bins: int = 2,
    max_period_bins: Optional[int] = None,
) -> List[Tuple[float, float]]:
    """The strongest admissible spectral peaks, by descending power.

    Frequencies implying periods shorter than ``min_period_bins`` or
    longer than ``max_period_bins`` are excluded — the same
    admissibility window the ACF search uses, so the two domains can
    be lined up.
    """
    if freqs.size == 0:
        return []
    mask = freqs > 0
    mask &= freqs <= 1.0 / max(min_period_bins, 1)
    if max_period_bins is not None and max_period_bins > 0:
        mask &= freqs >= 1.0 / max_period_bins
    if not np.any(mask):
        return []
    candidate_freqs = freqs[mask]
    candidate_power = power[mask]
    order = np.argsort(candidate_power)[::-1][:top_k]
    return [
        (float(candidate_freqs[i]), float(candidate_power[i])) for i in order
    ]


def frequency_to_period_bins(frequency: float) -> float:
    """Convert cycles-per-bin to a period in bins."""
    if frequency <= 0:
        raise ValueError("frequency must be positive")
    return 1.0 / frequency
