"""Per-window accumulators built from the engine's mergeable states.

A window's state is not a new kind of aggregate: it is exactly one
:class:`~repro.engine.state.CharacterizationState` (§4), one
:class:`~repro.engine.flowstate.FlowCollectionState` (§5.1) and one
:class:`~repro.engine.ngramstate.NgramSequenceState` (§5.2), the same
units the sharded batch engine maps and merges.  That buys the stream
the engine's already-tested exactness contract for free: merging the
accumulators of *all* sealed tumbling windows of a replay yields the
same states a single batch pass builds, so finalizing the merge
reproduces the batch reports bit for bit
(:func:`merged_characterization`, :func:`merged_pattern_report`).

``tracks`` lets a deployment drop analyses it does not need (for
example ``("characterization",)`` for a pure traffic monitor) — each
omitted track removes its per-record fold cost and its window memory.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..engine.flowstate import FlowCollectionState
from ..engine.ngramstate import NgramSequenceState
from ..engine.state import CharacterizationState
from ..logs.record import RequestLog
from ..periodicity.detector import DetectorConfig, PeriodDetector
from ..periodicity.flows import FlowFilter
from ..periodicity.results import PeriodicityReport, analyze_flows

__all__ = [
    "ALL_TRACKS",
    "WindowAccumulator",
    "merge_accumulators",
    "merged_characterization",
    "merged_periodicity",
    "merged_ngram",
    "merged_pattern_report",
]

ALL_TRACKS: Tuple[str, ...] = ("characterization", "periodicity", "ngram")


class WindowAccumulator:
    """All mergeable analysis state for one event-time window."""

    def __init__(
        self,
        window_start: float,
        window_end: float,
        flow_filter: Optional[FlowFilter] = None,
        tracks: Sequence[str] = ALL_TRACKS,
    ) -> None:
        unknown = set(tracks) - set(ALL_TRACKS)
        if unknown:
            raise ValueError(f"unknown analysis tracks: {sorted(unknown)}")
        self.window_start = window_start
        self.window_end = window_end
        self.tracks = tuple(tracks)
        self.record_count = 0
        self.characterization = (
            CharacterizationState() if "characterization" in tracks else None
        )
        self.flows = (
            FlowCollectionState(flow_filter) if "periodicity" in tracks else None
        )
        self.ngrams = NgramSequenceState() if "ngram" in tracks else None

    @property
    def bounds(self) -> Tuple[float, float]:
        return (self.window_start, self.window_end)

    def ingest(self, record: RequestLog) -> None:
        self.record_count += 1
        if self.characterization is not None:
            self.characterization.ingest(record)
        if self.flows is not None:
            self.flows.ingest(record)
        if self.ngrams is not None:
            self.ngrams.ingest(record)

    def update(self, records: Iterable[RequestLog]) -> "WindowAccumulator":
        for record in records:
            self.ingest(record)
        return self

    def merge(self, other: "WindowAccumulator") -> "WindowAccumulator":
        """Fold another window's states in; bounds become the union.

        Exact for every underlying state (the engine merge contract),
        so merging disjoint windows equals accumulating their records
        in one state.
        """
        if other.tracks != self.tracks:
            raise ValueError(
                f"cannot merge accumulators with different tracks: "
                f"{self.tracks} != {other.tracks}"
            )
        self.window_start = min(self.window_start, other.window_start)
        self.window_end = max(self.window_end, other.window_end)
        self.record_count += other.record_count
        if self.characterization is not None:
            self.characterization.merge(other.characterization)
        if self.flows is not None:
            self.flows.merge(other.flows)
        if self.ngrams is not None:
            self.ngrams.merge(other.ngrams)
        return self


def merge_accumulators(
    accumulators: Iterable[WindowAccumulator],
) -> Optional[WindowAccumulator]:
    """Fold window accumulators into one; ``None`` when empty."""
    merged: Optional[WindowAccumulator] = None
    for accumulator in accumulators:
        if merged is None:
            merged = WindowAccumulator(
                accumulator.window_start,
                accumulator.window_end,
                flow_filter=(
                    accumulator.flows.flow_filter
                    if accumulator.flows is not None
                    else None
                ),
                tracks=accumulator.tracks,
            )
        merged.merge(accumulator)
    return merged


# -- batch-equivalent finalizers ----------------------------------------
#
# These take a (merged) accumulator to the exact objects the batch
# pipelines produce; the differential suite replays a static log
# through the stream, merges every sealed window, and asserts equality
# against `run_characterization` / `run_pattern_analysis`.


def merged_characterization(
    accumulator: WindowAccumulator,
    domain_categories: Optional[Mapping[str, str]] = None,
):
    """§4 report from a merged accumulator (== batch serial)."""
    if accumulator.characterization is None:
        raise ValueError("accumulator does not track characterization")
    return accumulator.characterization.to_report(domain_categories)


def merged_periodicity(
    accumulator: WindowAccumulator,
    detector_config: Optional[DetectorConfig] = None,
    match_tolerance: float = 0.10,
) -> PeriodicityReport:
    """§5.1 report from a merged accumulator (== batch serial)."""
    if accumulator.flows is None:
        raise ValueError("accumulator does not track periodicity")
    detector = PeriodDetector(detector_config) if detector_config else None
    return analyze_flows(
        accumulator.flows.finalize(),
        accumulator.flows.total_json_requests,
        detector=detector,
        match_tolerance=match_tolerance,
    )


def merged_ngram(
    accumulator: WindowAccumulator,
    ns: Sequence[int] = (1,),
    ks: Sequence[int] = (1, 5, 10),
    test_fraction: float = 0.25,
    seed: int = 0,
    model_order: Optional[int] = None,
):
    """Table 3 sweep from a merged accumulator (== batch serial).

    Identical to :func:`repro.ngram.evaluate.run_table3` because the
    state's finalized sequences equal ``build_client_sequences`` over
    the unsplit stream, the hash split is order-independent, and model
    counts/evaluation tallies are sums.
    """
    from ..ngram.evaluate import AccuracyResult, evaluate_topk, split_clients
    from ..ngram.model import BackoffNgramModel

    if accumulator.ngrams is None:
        raise ValueError("accumulator does not track ngram sequences")
    order = model_order if model_order is not None else max(ns)
    results: Dict[Tuple[int, int, bool], AccuracyResult] = {}
    for clustered in (False, True):
        sequences = accumulator.ngrams.sequences(clustered)
        train_ids, test_ids = split_clients(
            sequences, test_fraction=test_fraction, seed=seed
        )
        model = BackoffNgramModel(order=order)
        model.fit(sequences[client_id] for client_id in train_ids)
        test_flows = [sequences[client_id] for client_id in test_ids]
        for n in ns:
            for result in evaluate_topk(model, test_flows, n, ks, clustered):
                results[(n, result.k, clustered)] = result
    return results


def merged_pattern_report(
    accumulator: WindowAccumulator,
    detector_config: Optional[DetectorConfig] = None,
    match_tolerance: float = 0.10,
    ngram_ns: Sequence[int] = (1,),
    ngram_ks: Sequence[int] = (1, 5, 10),
):
    """§5 PatternReport from a merged accumulator (== batch serial)."""
    from ..core.pipeline import PatternReport

    return PatternReport(
        periodicity=merged_periodicity(
            accumulator,
            detector_config=detector_config,
            match_tolerance=match_tolerance,
        ),
        ngram=merged_ngram(accumulator, ns=ngram_ns, ks=ngram_ks),
    )
