"""Bounded-queue ingest: sources in, one ordered record stream out.

The ingest stage decouples *reading* log records (file parsing, gzip
inflation, socket/stdin waits) from *analyzing* them (the window
manager), with an explicit, bounded hand-off queue in between:

* **Bounded** — the queue never holds more than ``capacity`` records,
  so a slow analysis stage cannot make the process balloon while
  sources race ahead.
* **Backpressure or shed** — when the queue is full, policy
  ``"block"`` stalls the producing worker (lossless; the right choice
  for replays and tailing a file), policy ``"drop"`` sheds the record
  and counts it in :attr:`IngestStats.dropped` (the right choice when
  the source is a live feed that must not be stalled).  Nothing is
  ever lost silently: every record is either delivered or counted.
* **Parallel sources** — N worker threads split the source list
  round-robin; each worker drains its sources in order, so a single
  time-ordered source stays ordered while separate sources (edges)
  interleave.  Every delivered record carries its source index
  (:meth:`IngestStage.events`), and a source's exhaustion is
  delivered in-band, so the window manager can keep one watermark
  frontier per source — cross-source skew (scheduler bursts, one
  edge hours behind another) holds the watermark back instead of
  mass-dropping the slow edge's records as late.

Worker exceptions propagate to the consumer at the next
:meth:`IngestStage.records` step — a crashed source never turns into
a silently truncated stream.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from ..faults import runtime as fault_runtime
from ..logs.record import RequestLog
from ..obs import runtime as obs_runtime

__all__ = ["IngestStats", "IngestStage"]

#: Queue poll granularity; bounds shutdown latency, not throughput.
_POLL_S = 0.05

_DONE = object()  # per-worker end-of-stream sentinel


class _SourceDone:
    """In-band marker: the source with this index is exhausted."""

    __slots__ = ("source",)

    def __init__(self, source: int) -> None:
        self.source = source


@dataclass
class IngestStats:
    """Counters the ingest stage maintains; all monotone."""

    ingested: int = 0  # records enqueued from sources
    delivered: int = 0  # records handed to the consumer
    dropped: int = 0  # records shed by the "drop" policy
    queue_peak: int = 0  # high-water mark of the bounded queue
    blocked_puts: int = 0  # producer stalls (backpressure events)
    stalls: int = 0  # injected source stalls (fault plans only)
    sources: int = 0
    workers: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict:
        return {
            "ingested": self.ingested,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "queue_peak": self.queue_peak,
            "blocked_puts": self.blocked_puts,
            "stalls": self.stalls,
            "sources": self.sources,
            "workers": self.workers,
        }


class IngestStage:
    """Pulls records from sources through a bounded queue.

    Parameters
    ----------
    sources:
        Iterables of :class:`RequestLog` (files, tails, generators).
    capacity:
        Maximum records buffered between producers and the consumer.
    policy:
        ``"block"`` (backpressure, lossless) or ``"drop"``
        (load-shedding with a counter).
    workers:
        Producer threads; sources are split round-robin among them.
    """

    def __init__(
        self,
        sources: Sequence[Iterable[RequestLog]],
        capacity: int = 65_536,
        policy: str = "block",
        workers: int = 1,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in ("block", "drop"):
            raise ValueError("policy must be 'block' or 'drop'")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sources = list(sources)
        self.capacity = capacity
        self.policy = policy
        self.workers = min(workers, len(self.sources)) if self.sources else 1
        self.stats = IngestStats(
            sources=len(self.sources), workers=self.workers
        )
        self._queue: "queue.Queue" = queue.Queue(maxsize=capacity)
        self._threads: List[threading.Thread] = []
        self._errors: List[BaseException] = []
        self._stop = threading.Event()

    # -- producer side ---------------------------------------------------

    def _put(self, source: int, record: RequestLog) -> None:
        stats = self.stats
        if self.policy == "drop":
            try:
                self._queue.put_nowait((source, record))
            except queue.Full:
                with stats._lock:
                    stats.dropped += 1
                return
        else:
            blocked = False
            while not self._stop.is_set():
                try:
                    self._queue.put((source, record), timeout=_POLL_S)
                    break
                except queue.Full:
                    blocked = True
            else:
                return
            if blocked:
                with stats._lock:
                    stats.blocked_puts += 1
        size = self._queue.qsize()
        with stats._lock:
            stats.ingested += 1
            if size > stats.queue_peak:
                stats.queue_peak = size

    def _put_control(self, item: object) -> None:
        # Control markers bypass the drop policy (shedding an
        # end-of-source marker would hold the watermark forever) but
        # must not deadlock on a full queue after the consumer has
        # gone away.
        while True:
            try:
                self._queue.put(item, timeout=_POLL_S)
                break
            except queue.Full:
                if self._stop.is_set():
                    break

    def _worker(
        self, worker_sources: List[tuple]
    ) -> None:
        try:
            for index, source in worker_sources:
                self._fault_stall(index)
                for record in source:
                    if self._stop.is_set():
                        return
                    self._put(index, record)
                self._put_control(_SourceDone(index))
        except BaseException as exc:  # propagated via records()
            self._errors.append(exc)
        finally:
            self._put_control(_DONE)

    def _fault_stall(self, source: int) -> None:
        """``ingest.stall`` hook: delay one source's drain.

        Simulates a cold NFS mount or a slow edge feed.  A stall is a
        pure delay — no records are lost or reordered within the
        source — so per-source watermark frontiers must absorb it
        without declaring the stalled source's records late.  No-op
        unless a fault plan is installed.
        """
        rule = fault_runtime.should_fire("ingest.stall", f"source-{source}")
        if rule is None:
            return
        with self.stats._lock:
            self.stats.stalls += 1
        time.sleep(rule.param)

    # -- consumer side ---------------------------------------------------

    def events(self) -> Iterator[tuple]:
        """Start the workers and yield ``(source_index, record)`` events.

        A ``(source_index, None)`` event marks that source as
        exhausted — the window manager uses it to release the
        source's watermark frontier.  Re-raises the first worker
        exception after draining what was already queued; callers
        never see a short stream without also seeing the failure.
        """
        if self._threads:
            raise RuntimeError("IngestStage may only be consumed once")
        indexed = list(enumerate(self.sources))
        groups = [indexed[index :: self.workers] for index in range(self.workers)]
        for group in groups:
            thread = threading.Thread(
                target=self._worker, args=(group,), daemon=True
            )
            self._threads.append(thread)
            thread.start()
        try:
            done = 0
            while done < len(self._threads):
                item = self._queue.get()
                if item is _DONE:
                    done += 1
                    continue
                if isinstance(item, _SourceDone):
                    yield (item.source, None)
                    continue
                self.stats.delivered += 1
                if self.stats.delivered % 4096 == 0:
                    obs_runtime.set_gauge(
                        "ingest.queue_depth", self._queue.qsize()
                    )
                yield item
            if self._errors:
                raise RuntimeError("ingest source failed") from self._errors[0]
        finally:
            self._stop.set()
            for thread in self._threads:
                thread.join(timeout=5.0)
            self._flush_obs()

    def _flush_obs(self) -> None:
        """Mirror the stage's counters into the ambient registry.

        Flushed once, when consumption ends (including on error), so
        the obs counters are the settled totals — the producer threads
        themselves never touch the ambient registry.
        """
        registry = obs_runtime.active()
        if registry is None:
            return
        snap = self.stats.snapshot()
        registry.inc("ingest.records_ingested", snap["ingested"])
        registry.inc("ingest.records_delivered", snap["delivered"])
        registry.inc("ingest.records_dropped", snap["dropped"])
        registry.inc("ingest.blocked_puts", snap["blocked_puts"])
        registry.inc("ingest.stalls", snap["stalls"])
        registry.inc("ingest.sources", snap["sources"])
        registry.max_gauge("ingest.queue_peak", snap["queue_peak"])

    def records(self) -> Iterator[RequestLog]:
        """The record stream alone, source tags stripped."""
        for _, record in self.events():
            if record is not None:
                yield record

    def __iter__(self) -> Iterator[RequestLog]:
        return self.records()
