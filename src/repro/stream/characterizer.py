"""Windowed (streaming) traffic characterization.

The lightweight sibling of the full stream service: where
:class:`~repro.stream.service.StreamService` maintains complete
mergeable analysis states per window, :class:`WindowedCharacterizer`
folds a *time-ordered* log stream into tumbling windows of cheap §4
headline counters and emits one :class:`WindowStats` per window —
the time series of JSON share, JSON:HTML ratio, GET share,
uncacheable share and device mix, from which diurnal patterns and
drift become visible.

Works on unbounded iterables in O(window) memory: the per-window
client set is a :class:`~repro.engine.sketches.UniqueCounter`, exact
up to a threshold and a constant-memory HyperLogLog beyond it, so a
window flooded by millions of distinct clients can no longer grow an
unbounded ``set``.

This module is the home of what used to live at
``repro.analysis.streaming``; that path remains as a deprecated
re-export.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..engine.sketches import UniqueCounter
from ..logs.record import CacheStatus, HttpMethod, RequestLog
from ..useragent.classify import UserAgentClassifier

__all__ = ["WindowStats", "WindowedCharacterizer"]

#: Distinct clients a window tracks exactly before spilling to the
#: HyperLogLog sketch (~0.8% error); keeps typical windows exact.
CLIENT_EXACT_THRESHOLD = 10_000


@dataclass
class WindowStats:
    """Aggregates for one tumbling window."""

    window_start: float
    window_end: float
    total_requests: int = 0
    json_requests: int = 0
    html_requests: int = 0
    get_requests: int = 0
    json_uncacheable: int = 0
    json_bytes: int = 0
    device_counts: Counter = field(default_factory=Counter)
    unique_clients: UniqueCounter = field(
        default_factory=lambda: UniqueCounter(CLIENT_EXACT_THRESHOLD)
    )

    # -- derived -----------------------------------------------------------

    @property
    def json_share(self) -> float:
        return self.json_requests / self.total_requests if self.total_requests else 0.0

    @property
    def json_html_ratio(self) -> float:
        if self.html_requests == 0:
            return float("inf") if self.json_requests else 0.0
        return self.json_requests / self.html_requests

    @property
    def get_share(self) -> float:
        return self.get_requests / self.total_requests if self.total_requests else 0.0

    @property
    def uncacheable_share(self) -> float:
        """Uncacheable share of the window's JSON traffic."""
        return (
            self.json_uncacheable / self.json_requests if self.json_requests else 0.0
        )

    @property
    def mean_json_bytes(self) -> float:
        return self.json_bytes / self.json_requests if self.json_requests else 0.0

    @property
    def client_count(self) -> int:
        """Distinct clients; exact below the spill threshold, then
        a sketch estimate (see :attr:`unique_clients`)."""
        return len(self.unique_clients)

    @property
    def client_count_exact(self) -> bool:
        """Whether :attr:`client_count` is exact for this window."""
        return self.unique_clients.is_exact

    def device_shares(self) -> Dict[str, float]:
        total = sum(self.device_counts.values())
        if not total:
            return {}
        return {
            device: count / total for device, count in self.device_counts.items()
        }

class WindowedCharacterizer:
    """Folds a log stream into tumbling windows.

    Parameters
    ----------
    window_s:
        Window width in seconds.
    classifier:
        Shared user-agent classifier (memoized).
    track_devices:
        Disable to skip UA classification in high-rate pipelines.

    Notes
    -----
    Input must be time-ordered (CDN log streams are, per edge); a
    record older than the current window start raises ``ValueError``
    rather than silently corrupting earlier windows.  For
    out-of-order streams use the watermark-aware
    :class:`~repro.stream.service.StreamService` instead.
    """

    def __init__(
        self,
        window_s: float = 300.0,
        classifier: Optional[UserAgentClassifier] = None,
        track_devices: bool = True,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self.classifier = classifier or UserAgentClassifier()
        self.track_devices = track_devices

    def windows(self, logs: Iterable[RequestLog]) -> Iterator[WindowStats]:
        """Lazily yield completed windows from a time-ordered stream."""
        current: Optional[WindowStats] = None
        for record in logs:
            if current is None:
                start = (record.timestamp // self.window_s) * self.window_s
                current = WindowStats(start, start + self.window_s)
            if record.timestamp < current.window_start:
                raise ValueError(
                    "log stream is not time-ordered: "
                    f"{record.timestamp} < window start {current.window_start}"
                )
            while record.timestamp >= current.window_end:
                yield current
                current = WindowStats(
                    current.window_end, current.window_end + self.window_s
                )
            self._fold(current, record)
        if current is not None:
            yield current

    def series(
        self, logs: Iterable[RequestLog], metric: str
    ) -> List[float]:
        """Convenience: one metric's value per window.

        ``metric`` is any numeric :class:`WindowStats` property name.
        """
        return [getattr(window, metric) for window in self.windows(logs)]

    # -- internals ------------------------------------------------------------

    def _fold(self, window: WindowStats, record: RequestLog) -> None:
        window.total_requests += 1
        window.unique_clients.add(record.client_id)
        if record.method is HttpMethod.GET:
            window.get_requests += 1
        if record.is_html:
            window.html_requests += 1
        if record.is_json:
            window.json_requests += 1
            window.json_bytes += record.response_bytes
            if record.cache_status is CacheStatus.NO_STORE:
                window.json_uncacheable += 1
            if self.track_devices:
                traffic = self.classifier.classify(record.user_agent)
                window.device_counts[traffic.device.value] += 1
