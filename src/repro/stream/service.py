"""The online analysis service: ingest → windows → snapshots → store.

:class:`StreamService` assembles the subsystem end to end:

1. an :class:`~repro.stream.ingest.IngestStage` pulls records from
   the configured sources through a bounded queue (backpressure or
   counted shedding),
2. a :class:`~repro.stream.windows.WindowManager` routes each record
   into event-time windows whose accumulators are the engine's
   mergeable states, sealing windows as the watermark advances,
3. each sealed window is checkpointed
   (:class:`repro.engine.checkpoint.CheckpointStore` — the same
   atomic-write store the batch engine uses), snapshotted
   (:class:`~repro.stream.snapshots.SnapshotBuilder`) and emitted.

**Crash safety.**  The seal path is checkpoint-then-emit: a window is
persisted before its snapshot leaves the process.  On restart with
the same ``checkpoint_dir``, the service loads the sealed windows'
bounds, replays the source from the beginning, silently skips records
belonging to already-sealed windows (``resumed_skips`` — counted, not
re-accumulated) and continues sealing from the first incomplete
window, so no window is ever double-counted or double-emitted.

**Exactness.**  For a lossless replay (``policy="block"``, watermark
lag at least the stream's disorder bound), merging every sealed
window's accumulator reproduces the batch pipelines' states exactly —
:mod:`repro.stream.accumulators` holds that contract and
``tests/test_stream_differential.py`` enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..engine.checkpoint import CheckpointError, CheckpointStore
from ..logs.record import RequestLog
from ..obs import runtime as obs_runtime
from ..obs.spans import span
from ..periodicity.detector import DetectorConfig
from ..periodicity.flows import FlowFilter
from .accumulators import ALL_TRACKS, WindowAccumulator
from .ingest import IngestStage, IngestStats
from .snapshots import JsonlEmitter, SnapshotBuilder, WindowSnapshot
from .windows import WindowBounds, WindowManager, WindowSpec

__all__ = ["StreamConfig", "StreamResult", "StreamService", "window_id"]

_CHECKPOINT_SUBDIR = "stream-windows"


def window_id(bounds: WindowBounds) -> str:
    """Stable checkpoint key for a window: ``window-<start>-<end>``."""
    return f"window-{bounds[0]!r}-{bounds[1]!r}"


@dataclass
class StreamConfig:
    """Everything a stream deployment tunes, in one picklable bundle."""

    window_s: float = 300.0
    slide_s: Optional[float] = None
    watermark_lag_s: float = 0.0
    tracks: Sequence[str] = ALL_TRACKS
    flow_filter: Optional[FlowFilter] = None
    #: Snapshot-time period detection (None → detector defaults).
    detector_config: Optional[DetectorConfig] = None
    match_tolerance: float = 0.10
    detect_periods: bool = True
    predict_urls: bool = True
    top_k: int = 5
    drift_threshold: float = 0.10
    #: Ingest bounds: queue capacity and full-queue policy.
    queue_capacity: int = 65_536
    queue_policy: str = "block"
    ingest_workers: int = 1
    checkpoint_dir: Optional[str] = None

    def spec(self) -> WindowSpec:
        return WindowSpec(self.window_s, self.slide_s)


@dataclass
class StreamResult:
    """What one service run produced and counted."""

    snapshots: List[WindowSnapshot] = dataclass_field(default_factory=list)
    #: Sealed accumulators, only when the run kept them
    #: (``keep_accumulators=True`` — replays and differential tests).
    accumulators: List[WindowAccumulator] = dataclass_field(
        default_factory=list
    )
    sealed_windows: int = 0
    resumed_windows: int = 0
    #: Per-record outcomes; exactly one bucket per record, so
    #: ``records_windowed + late_dropped + resumed_skips`` equals the
    #: record count fed in (the conservation law).
    records_windowed: int = 0
    late_dropped: int = 0
    resumed_skips: int = 0
    #: Per-assignment (pane-level) outcomes for sliding windows; a
    #: record accepted in one pane but late for another shows up here
    #: without double-counting above.
    accepted_assignments: int = 0
    late_assignments: int = 0
    resumed_assignments: int = 0
    ingest: Optional[IngestStats] = None

    @property
    def total_windows(self) -> int:
        return self.sealed_windows + self.resumed_windows


class StreamService:
    """Continuously windowed analysis over one or more record sources."""

    def __init__(
        self,
        config: Optional[StreamConfig] = None,
        emitter: Optional[JsonlEmitter] = None,
        on_snapshot: Optional[Callable[[WindowSnapshot], None]] = None,
        keep_accumulators: bool = False,
    ) -> None:
        self.config = config or StreamConfig()
        self.emitter = emitter
        self.on_snapshot = on_snapshot
        self.keep_accumulators = keep_accumulators
        self.store: Optional[CheckpointStore] = None
        self._presealed: List[WindowBounds] = []
        if self.config.checkpoint_dir is not None:
            self.store = CheckpointStore(
                Path(self.config.checkpoint_dir) / _CHECKPOINT_SUBDIR
            )
            self._presealed = self._load_sealed_bounds(self.store)
        self._builder = SnapshotBuilder(
            detector_config=self.config.detector_config,
            match_tolerance=self.config.match_tolerance,
            top_k=self.config.top_k,
            drift_threshold=self.config.drift_threshold,
            detect_periods=self.config.detect_periods,
            predict_urls=self.config.predict_urls,
        )
        self._result: Optional[StreamResult] = None
        self._manager: Optional[WindowManager] = None

    # -- public API ------------------------------------------------------

    @property
    def resumed_windows(self) -> List[WindowBounds]:
        """Windows sealed by a previous run on this checkpoint dir."""
        return sorted(self._presealed)

    def run(
        self, sources: Sequence[Iterable[RequestLog]]
    ) -> StreamResult:
        """Drain the sources through the full pipeline; returns totals.

        Blocks until every source is exhausted (use bounded tail
        sources, or run in a thread, for endless feeds).
        """
        ingest = IngestStage(
            sources,
            capacity=self.config.queue_capacity,
            policy=self.config.queue_policy,
            workers=self.config.ingest_workers,
        )
        self._begin(
            ingest_stats=ingest.stats,
            sources=max(1, len(ingest.sources)),
        )
        for source, record in ingest.events():
            if record is None:
                self._manager.finish_source(source)
            else:
                self._manager.process(record, source)
        return self._finish()

    def replay(self, records: Iterable[RequestLog]) -> StreamResult:
        """Synchronous single-source run, bypassing the ingest queue.

        The differential harness and unit tests use this: identical
        windowing semantics, no threads.
        """
        self._begin(ingest_stats=None)
        for record in records:
            self._manager.process(record)
        return self._finish()

    def load_sealed_accumulators(self) -> List[WindowAccumulator]:
        """Previous runs' sealed window accumulators, window order.

        Lets a resumed run (or an offline audit) rebuild the full
        stream-equals-batch merge across a kill: checkpointed windows
        plus the windows the resumed run sealed itself.
        """
        if self.store is None:
            return []
        accumulators: List[WindowAccumulator] = []
        for shard_id in self.store.completed_ids():
            try:
                payload = self.store.load(shard_id)
            except (CheckpointError, FileNotFoundError):
                continue
            accumulators.append(payload["accumulator"])
        accumulators.sort(key=lambda acc: (acc.window_end, acc.window_start))
        return accumulators

    # -- internals -------------------------------------------------------

    def _begin(
        self, ingest_stats: Optional[IngestStats], sources: int = 1
    ) -> StreamResult:
        self._result = StreamResult(
            resumed_windows=len(self._presealed), ingest=ingest_stats
        )
        self._manager = WindowManager(
            self.config.spec(),
            watermark_lag_s=self.config.watermark_lag_s,
            factory=self._make_accumulator,
            on_seal=self._seal,
            presealed=self._presealed,
            sources=sources,
        )
        return self._result

    def _finish(self) -> StreamResult:
        self._manager.flush()
        result = self._result
        result.sealed_windows = self._manager.sealed_windows
        result.records_windowed = self._manager.records_windowed
        result.late_dropped = self._manager.late_dropped
        result.resumed_skips = self._manager.resumed_skips
        result.accepted_assignments = self._manager.accepted_assignments
        result.late_assignments = self._manager.late_assignments
        result.resumed_assignments = self._manager.resumed_assignments
        return result

    def _make_accumulator(self, start: float, end: float) -> WindowAccumulator:
        return WindowAccumulator(
            start,
            end,
            flow_filter=self.config.flow_filter,
            tracks=self.config.tracks,
        )

    def _seal(
        self, bounds: WindowBounds, accumulator: WindowAccumulator
    ) -> None:
        # Checkpoint before emitting: a kill between the two re-seals
        # nothing (the resume skips this window) and at worst re-emits
        # nothing — the window is either durable or not yet announced.
        with span("stream.seal_window", window_end=bounds[1]):
            if self.store is not None:
                self.store.save(
                    window_id(bounds),
                    {"bounds": bounds, "accumulator": accumulator},
                )
            snapshot = self._builder.build(
                accumulator, late_dropped=self._manager.late_dropped
            )
        obs_runtime.inc("stream.windows_sealed")
        obs_runtime.inc("stream.snapshots_built")
        clock = self._manager.watermark
        if clock.max_event_time != float("-inf"):
            # Event-time distance between the newest record seen and
            # the watermark: the stream's current disorder exposure.
            obs_runtime.set_gauge(
                "stream.watermark_lag", clock.max_event_time - clock.value
            )
        result = self._result
        result.snapshots.append(snapshot)
        if self.keep_accumulators:
            result.accumulators.append(accumulator)
        if self.emitter is not None:
            self.emitter.emit(snapshot)
        if self.on_snapshot is not None:
            self.on_snapshot(snapshot)

    @staticmethod
    def _load_sealed_bounds(store: CheckpointStore) -> List[WindowBounds]:
        bounds: List[WindowBounds] = []
        for shard_id in store.completed_ids():
            try:
                payload = store.load(shard_id)
            except (CheckpointError, FileNotFoundError):
                # Torn checkpoints read as "window never sealed"; the
                # resumed run recomputes and re-seals that window.
                continue
            if isinstance(payload, dict) and "bounds" in payload:
                bounds.append(tuple(payload["bounds"]))
        return bounds
