"""Incremental results: per-window snapshots and cross-window drift.

When the window manager seals a window, :class:`SnapshotBuilder`
finalizes its accumulator into a :class:`WindowSnapshot` — the
paper's headline metrics for that slice of traffic (JSON share,
cacheability, GET share, device mix, unique clients), the detected
object periods (§5.1 over the window's flows), and the window-local
ngram model's top-K predicted next URLs (§5.2's exploitable output,
the input to a prefetcher).

The builder also remembers the previous window's metric vector and
attaches a drift report (:func:`repro.analysis.drift.compare_metrics`)
to every snapshot after the first, so "uncacheable share jumped 30%
this window" is part of the emitted record, not a post-hoc query.

:class:`JsonlEmitter` appends snapshots to a JSONL file (or any text
handle) one flushed line per window — the resume-safe output format:
a killed stream leaves complete lines only, and a resumed one appends
the windows the first run never sealed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from ..analysis.drift import compare_metrics
from ..periodicity.detector import DetectorConfig, PeriodDetector
from ..periodicity.results import analyze_flows
from .accumulators import WindowAccumulator

__all__ = ["WindowSnapshot", "SnapshotBuilder", "JsonlEmitter"]


@dataclass
class WindowSnapshot:
    """Finalized, serializable results for one sealed window."""

    window_start: float
    window_end: float
    records: int
    json_requests: int
    json_share: float
    get_share: float
    uncacheable_share: float
    unique_clients: int
    non_browser_share: float = 0.0
    #: JSON response-size statistics; ``None`` when the window saw no
    #: JSON traffic (undefined, not zero — see repro.analysis.drift).
    mean_json_bytes: Optional[float] = None
    p50_json_bytes: Optional[float] = None
    device_shares: Dict[str, float] = field(default_factory=dict)
    #: Detected object periods in seconds, sorted (Figure 5 slice).
    detected_periods: List[float] = field(default_factory=list)
    periodic_objects: int = 0
    periodic_request_fraction: float = 0.0
    #: The window model's top-K most likely next URLs, best first.
    top_predicted: List[str] = field(default_factory=list)
    #: Metrics whose relative change vs the previous window exceeded
    #: the drift threshold: name → (before, after, relative).
    drift: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Cumulative stream-level late drops at seal time.
    late_dropped: int = 0

    def to_dict(self) -> dict:
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "records": self.records,
            "json_requests": self.json_requests,
            "json_share": round(self.json_share, 6),
            "get_share": round(self.get_share, 6),
            "uncacheable_share": round(self.uncacheable_share, 6),
            "unique_clients": self.unique_clients,
            "non_browser_share": round(self.non_browser_share, 6),
            "mean_json_bytes": (
                None
                if self.mean_json_bytes is None
                else round(self.mean_json_bytes, 3)
            ),
            "p50_json_bytes": (
                None
                if self.p50_json_bytes is None
                else round(self.p50_json_bytes, 3)
            ),
            "device_shares": {
                device: round(share, 6)
                for device, share in sorted(self.device_shares.items())
            },
            "detected_periods": self.detected_periods,
            "periodic_objects": self.periodic_objects,
            "periodic_request_fraction": round(
                self.periodic_request_fraction, 6
            ),
            "top_predicted": self.top_predicted,
            "drift": self.drift,
            "late_dropped": self.late_dropped,
        }

    @property
    def metrics(self) -> Dict[str, Optional[float]]:
        """The drift-comparison vector for this window.

        Shape-stable: every key is present for every window, quiet or
        busy, so consecutive-window drift reports always cover the
        full vector (size statistics are ``None`` when undefined).
        """
        return {
            "json_share": self.json_share,
            "get_share": self.get_share,
            "uncacheable_share": self.uncacheable_share,
            "mobile_share": self.device_shares.get("mobile", 0.0),
            "embedded_share": self.device_shares.get("embedded", 0.0),
            "unknown_share": self.device_shares.get("unknown", 0.0),
            "non_browser_share": self.non_browser_share,
            "mean_json_bytes": self.mean_json_bytes,
            "p50_json_bytes": self.p50_json_bytes,
            "unique_clients": float(self.unique_clients),
            "records": float(self.records),
        }


class SnapshotBuilder:
    """Turns sealed window accumulators into snapshots, in seal order.

    Stateful only for drift: it keeps the previous window's metric
    vector.  Period detection and prediction are optional (both cost
    CPU at seal time) and run only on tracks the accumulator carries.
    """

    def __init__(
        self,
        detector_config: Optional[DetectorConfig] = None,
        match_tolerance: float = 0.10,
        top_k: int = 5,
        drift_threshold: float = 0.10,
        detect_periods: bool = True,
        predict_urls: bool = True,
    ) -> None:
        self.detector_config = detector_config
        self.match_tolerance = match_tolerance
        self.top_k = top_k
        self.drift_threshold = drift_threshold
        self.detect_periods = detect_periods
        self.predict_urls = predict_urls
        self._previous_metrics: Optional[Dict[str, float]] = None

    def build(
        self, accumulator: WindowAccumulator, late_dropped: int = 0
    ) -> WindowSnapshot:
        snapshot = WindowSnapshot(
            window_start=accumulator.window_start,
            window_end=accumulator.window_end,
            records=accumulator.record_count,
            json_requests=0,
            json_share=0.0,
            get_share=0.0,
            uncacheable_share=0.0,
            unique_clients=0,
            late_dropped=late_dropped,
        )
        state = accumulator.characterization
        if state is not None:
            summary = state.summary
            total = summary.total_logs
            json_requests = summary.content_types.get("application/json", 0)
            snapshot.json_requests = json_requests
            snapshot.json_share = json_requests / total if total else 0.0
            snapshot.get_share = (
                summary.methods.get("GET", 0) / total if total else 0.0
            )
            snapshot.uncacheable_share = state.cacheability.uncacheable_fraction
            snapshot.unique_clients = len(summary.clients)
            snapshot.device_shares = state.traffic_source.device_shares()
            snapshot.non_browser_share = (
                state.traffic_source.non_browser_fraction
            )
            json_sizes = state.sizes.get("application/json")
            if json_sizes is not None and json_sizes.count:
                snapshot.mean_json_bytes = json_sizes.mean
                snapshot.p50_json_bytes = json_sizes.percentile(50)
        if self.detect_periods and accumulator.flows is not None:
            detector = (
                PeriodDetector(self.detector_config)
                if self.detector_config
                else None
            )
            report = analyze_flows(
                accumulator.flows.finalize(),
                accumulator.flows.total_json_requests,
                detector=detector,
                match_tolerance=self.match_tolerance,
            )
            snapshot.detected_periods = sorted(
                round(period, 3) for period in report.object_periods()
            )
            snapshot.periodic_objects = len(snapshot.detected_periods)
            snapshot.periodic_request_fraction = (
                report.periodic_request_fraction
            )
        if self.predict_urls and accumulator.ngrams is not None:
            snapshot.top_predicted = self._predict(accumulator)
        metrics = snapshot.metrics
        if self._previous_metrics is not None:
            report = compare_metrics(
                self._previous_metrics, metrics, threshold=self.drift_threshold
            )
            snapshot.drift = {
                delta.name: {
                    "before": delta.before,
                    "after": delta.after,
                    "relative": (
                        delta.relative
                        if delta.relative != float("inf")
                        else -1.0
                    ),
                }
                for delta in report.drifted()
            }
        self._previous_metrics = metrics
        return snapshot

    def _predict(self, accumulator: WindowAccumulator) -> List[str]:
        """Top-K next URLs from a model fit on the window's sequences.

        An order-1 model over the window's raw per-client sequences;
        the empty-history query backs off to the unigram successor
        table, i.e. the URLs most likely to be requested next by any
        client — the prefetch candidate list.
        """
        from ..ngram.model import BackoffNgramModel

        sequences = accumulator.ngrams.sequences(clustered=False)
        model = BackoffNgramModel(order=1)
        model.fit(sequences.values())
        if not model.context_count():
            return []
        return model.predict([], k=self.top_k)


class JsonlEmitter:
    """Appends one JSON line per snapshot; resume-safe by design."""

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owned = False
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8")
            self._owned = True
        self.emitted = 0

    def emit(self, snapshot: WindowSnapshot) -> None:
        self._handle.write(
            json.dumps(snapshot.to_dict(), separators=(",", ":"))
        )
        self._handle.write("\n")
        self._handle.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._owned:
            self._handle.close()

    def __enter__(self) -> "JsonlEmitter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
