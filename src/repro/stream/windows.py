"""Event-time windowing core: assignment, watermarks, sealing.

The stream subsystem orders work by *event time* (the ``timestamp``
field of each :class:`~repro.logs.record.RequestLog`), not by arrival
time — CDN edges flush log lines out of order, and a multi-source
ingest stage interleaves edges arbitrarily.  Three pieces make that
safe:

* :class:`WindowSpec` maps an event timestamp to the window bounds it
  belongs to — one window when tumbling, ``window/slide`` windows
  when sliding.  Assignment is a pure function of the timestamp, so
  the stream path and a batch replay agree on every record's window.
* :class:`WatermarkClock` tracks the stream's progress: each source
  keeps a *frontier* (its maximum event time observed) and the
  watermark is the minimum frontier minus a configured *lag* — a
  slow edge holds the watermark back instead of getting its records
  declared late, exactly the multi-source semantics of production
  stream processors.  A finished source's frontier goes to
  ``+inf`` so it stops holding the watermark.  The lag is the
  *within-source* disorder budget — a promise that no record older
  than ``watermark`` will be accepted any more.
* :class:`WindowManager` keeps the open windows, routes each record
  into its window accumulator(s), **seals** a window once the
  watermark passes its end (no future in-lag record can touch it),
  and routes records that arrive after their window sealed to a
  ``late_dropped`` counter — counted, never silently lost.

Sealing happens in window-end order, so "sealed" is equivalent to
``window_end <= seal_horizon``; the manager stores one float, not an
ever-growing set.  Resuming from a checkpoint passes the previous
run's sealed bounds in as ``presealed``: records replayed into those
windows count as ``resumed_skips`` (they were already accumulated and
emitted before the kill), distinct from genuinely late data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..logs.record import RequestLog
from ..obs import runtime as obs_runtime

__all__ = ["WindowBounds", "WindowSpec", "WatermarkClock", "WindowManager"]

#: (window_start, window_end) in event-time seconds.
WindowBounds = Tuple[float, float]


@dataclass(frozen=True)
class WindowSpec:
    """Window geometry: tumbling (``slide_s is None``) or sliding.

    Sliding windows start at multiples of ``slide_s`` and span
    ``window_s`` seconds, so a record falls into
    ``ceil(window_s / slide_s)`` windows at most.
    """

    window_s: float
    slide_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.slide_s is not None:
            if self.slide_s <= 0:
                raise ValueError("slide_s must be positive")
            if self.slide_s > self.window_s:
                raise ValueError(
                    "slide_s must not exceed window_s (gaps would drop records)"
                )

    @property
    def tumbling(self) -> bool:
        return self.slide_s is None

    def assign(self, timestamp: float) -> List[WindowBounds]:
        """Every window containing ``timestamp``, earliest first."""
        if self.slide_s is None:
            start = math.floor(timestamp / self.window_s) * self.window_s
            return [(start, start + self.window_s)]
        bounds: List[WindowBounds] = []
        latest = math.floor(timestamp / self.slide_s) * self.slide_s
        start = latest
        while start + self.window_s > timestamp:
            bounds.append((start, start + self.window_s))
            start -= self.slide_s
        bounds.reverse()
        return bounds


class WatermarkClock:
    """Event-time progress tracker with a fixed disorder budget.

    Each source advances its own *frontier* (maximum event time it
    has produced); ``value`` = min over source frontiers − ``lag_s``.
    With one source that degenerates to the familiar
    ``max_event_time - lag``.  A record with timestamp below the
    watermark is *late*: the stream has promised downstream consumers
    that its window may be finalized.

    :meth:`finish` marks a source exhausted (frontier → ``+inf``) so
    an ended edge stops holding the watermark back; once every source
    is finished the watermark rests at the overall maximum event time
    minus the lag (flush seals the remainder).
    """

    def __init__(self, lag_s: float = 0.0, sources: int = 1) -> None:
        if lag_s < 0:
            raise ValueError("watermark lag must be >= 0")
        if sources < 1:
            raise ValueError("sources must be >= 1")
        self.lag_s = lag_s
        self._frontiers = [float("-inf")] * sources
        #: Maximum event time seen across all sources (introspection).
        self.max_event_time = float("-inf")

    @property
    def value(self) -> float:
        frontier = min(self._frontiers)
        if frontier == float("inf"):  # every source finished
            frontier = self.max_event_time
        if frontier == float("-inf"):
            return float("-inf")
        return frontier - self.lag_s

    def observe(self, timestamp: float, source: int = 0) -> float:
        """Advance one source's frontier; returns the watermark."""
        if timestamp > self._frontiers[source]:
            self._frontiers[source] = timestamp
        if timestamp > self.max_event_time:
            self.max_event_time = timestamp
        return self.value

    def finish(self, source: int = 0) -> float:
        """Mark a source exhausted; it no longer holds the watermark."""
        self._frontiers[source] = float("inf")
        return self.value


class WindowManager:
    """Routes records into per-window accumulators and seals them.

    Parameters
    ----------
    spec:
        Window geometry.
    watermark_lag_s:
        Disorder budget; windows seal when the watermark passes their
        end, so any record at most this much older than its source's
        frontier lands in the correct (still open) window.
    sources:
        Number of independent sources feeding :meth:`process`; each
        gets its own watermark frontier (see :class:`WatermarkClock`).
    factory:
        ``factory(start, end)`` → fresh accumulator with an
        ``ingest(record)`` method; called lazily per window.
    on_seal:
        ``on_seal(bounds, accumulator)`` called exactly once per
        window, in window-end order.
    presealed:
        Window bounds sealed by a previous run (checkpoint resume).
        Records falling into them are skipped and tallied in
        :attr:`resumed_skips` — they were counted before the kill.
    """

    def __init__(
        self,
        spec: WindowSpec,
        watermark_lag_s: float = 0.0,
        factory: Callable[[float, float], object] = None,
        on_seal: Optional[Callable[[WindowBounds, object], None]] = None,
        presealed: Iterable[WindowBounds] = (),
        sources: int = 1,
    ) -> None:
        if factory is None:
            raise ValueError("WindowManager requires an accumulator factory")
        self.spec = spec
        self.watermark = WatermarkClock(watermark_lag_s, sources=sources)
        self.factory = factory
        self.on_seal = on_seal
        self._open: Dict[WindowBounds, object] = {}
        #: Everything ending at or before this horizon sealed *this
        #: session*; sealing is monotone in window end.
        self.seal_horizon = float("-inf")
        #: Exact bounds sealed by a previous run.  A set, not a
        #: horizon: a torn checkpoint leaves a *hole* in the sealed
        #: range, and that window must re-accumulate on resume.
        self.presealed = frozenset(
            (bounds[0], bounds[1]) for bounds in presealed
        )
        self.records_in = 0
        #: Per-record outcomes.  Exactly one of these increments per
        #: processed record (accepted beats late beats resumed), so
        #: ``records_windowed + late_dropped + resumed_skips ==
        #: records_in`` holds for tumbling and sliding specs alike.
        self.records_windowed = 0
        self.late_dropped = 0
        self.resumed_skips = 0
        #: Per-assignment outcomes.  A sliding record lands in up to
        #: ``window/slide`` panes and may be accepted in some while
        #: late for others; these tally every pane-level outcome so
        #: partial lateness stays observable without breaking the
        #: per-record conservation law above.
        self.accepted_assignments = 0
        self.late_assignments = 0
        self.resumed_assignments = 0
        self.sealed_windows = 0
        self._obs_flushed = False

    # -- ingest ----------------------------------------------------------

    def process(self, record: RequestLog, source: int = 0) -> None:
        """Route one record, then seal any window the watermark passed.

        A sliding record's panes can disagree — accepted in one pane,
        late for another already-sealed pane — so the per-record
        counters classify by the *best* pane outcome (accepted > late
        > resumed) while the ``*_assignments`` counters record every
        pane-level verdict.  Counting the record in more than one
        per-record bucket would break the conservation law.
        """
        self.records_in += 1
        targets = self.spec.assign(record.timestamp)
        late = 0
        resumed = 0
        accepted = 0
        for bounds in targets:
            if bounds in self.presealed:
                resumed += 1
                continue
            if bounds[1] <= self.seal_horizon:
                late += 1
                continue
            accumulator = self._open.get(bounds)
            if accumulator is None:
                accumulator = self.factory(bounds[0], bounds[1])
                self._open[bounds] = accumulator
            accumulator.ingest(record)
            accepted += 1
        self.accepted_assignments += accepted
        self.late_assignments += late
        self.resumed_assignments += resumed
        if accepted:
            self.records_windowed += 1
        elif late:
            self.late_dropped += 1
        elif resumed:
            self.resumed_skips += 1
        self._seal_up_to(self.watermark.observe(record.timestamp, source))

    def finish_source(self, source: int = 0) -> None:
        """An input source ended; seal what its frontier was holding."""
        self._seal_up_to(self.watermark.finish(source))

    def flush(self) -> None:
        """End of stream: seal every window still open."""
        self._seal_up_to(float("inf"))
        self._flush_obs()

    def _flush_obs(self) -> None:
        """Mirror the manager's settled counters into the ambient
        registry, once per manager (flush may be called repeatedly)."""
        if self._obs_flushed:
            return
        registry = obs_runtime.active()
        if registry is None:
            return
        self._obs_flushed = True
        registry.inc("windows.records_in", self.records_in)
        registry.inc("windows.records_windowed", self.records_windowed)
        registry.inc("windows.late_dropped", self.late_dropped)
        registry.inc("windows.resumed_skips", self.resumed_skips)
        registry.inc("windows.accepted_assignments", self.accepted_assignments)
        registry.inc("windows.late_assignments", self.late_assignments)
        registry.inc("windows.resumed_assignments", self.resumed_assignments)
        registry.inc("windows.sealed", self.sealed_windows)

    # -- introspection ---------------------------------------------------

    @property
    def open_windows(self) -> List[WindowBounds]:
        return sorted(self._open)

    # -- internals -------------------------------------------------------

    def _seal_up_to(self, horizon: float) -> None:
        if horizon <= self.seal_horizon:
            return
        ready = sorted(
            (bounds for bounds in self._open if bounds[1] <= horizon),
            key=lambda bounds: (bounds[1], bounds[0]),
        )
        for bounds in ready:
            accumulator = self._open.pop(bounds)
            self.sealed_windows += 1
            if self.on_seal is not None:
                self.on_seal(bounds, accumulator)
        if horizon != float("inf"):
            self.seal_horizon = horizon
        elif ready:
            self.seal_horizon = max(bounds[1] for bounds in ready)
