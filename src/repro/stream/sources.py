"""Record sources for the ingest stage.

A *source* is just an iterable of :class:`~repro.logs.record.RequestLog`;
these helpers build the ones a streaming deployment needs:

* :func:`iterable_source` — wrap an in-memory collection/generator
  (replays, tests).
* :func:`file_source` — stream one JSONL/TSV file, quarantining
  malformed lines by default (live pipelines must tolerate torn
  writes).
* :func:`directory_sources` — a partitioned log directory
  (:mod:`repro.logs.partition` layout) as one time-ordered source per
  edge; edges interleave at ingest, bounded by the watermark lag.
* :func:`merged_directory_source` — the same directory as a single
  globally time-ordered stream (k-way merge), for lag-0 replays.
* :func:`tail_source` — follow a growing log file via
  :class:`repro.logs.io.LogTailer`.
* :func:`stdin_source` — parse JSONL records from a text stream
  (``repro stream --stdin``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from ..logs.io import read_logs, tail_records
from ..logs.partition import iter_partition_files, read_partitioned
from ..logs.record import RequestLog

__all__ = [
    "iterable_source",
    "file_source",
    "directory_sources",
    "merged_directory_source",
    "tail_source",
    "stdin_source",
]

PathLike = Union[str, Path]


def iterable_source(records: Iterable[RequestLog]) -> Iterator[RequestLog]:
    """An in-memory iterable as a source (materializes nothing)."""
    return iter(records)


def file_source(
    path: PathLike, on_error: str = "skip"
) -> Iterator[RequestLog]:
    """Stream one log file; malformed lines quarantined by default."""
    return read_logs(path, on_error=on_error)


def directory_sources(
    root: PathLike, on_error: str = "skip"
) -> List[Iterator[RequestLog]]:
    """One time-ordered source per edge of a partitioned directory.

    Each edge's hour files are concatenated in bucket order, so each
    source is internally time-ordered; *across* sources the ingest
    stage interleaves arbitrarily, which the window manager absorbs
    as long as the watermark lag covers the skew between edges.
    """
    root = Path(root)
    by_edge: dict = {}
    for path in iter_partition_files(root):
        by_edge.setdefault(path.parent.name, []).append(path)

    def edge_stream(paths: List[Path]) -> Iterator[RequestLog]:
        for path in paths:
            for record in read_logs(path, on_error=on_error):
                yield record

    return [edge_stream(paths) for _, paths in sorted(by_edge.items())]


def merged_directory_source(
    root: PathLike,
) -> Iterator[RequestLog]:
    """A partitioned directory as one globally time-ordered stream."""
    return read_partitioned(root)


def tail_source(
    path: PathLike,
    poll_interval: float = 0.1,
    idle_polls: Optional[int] = None,
    on_error: str = "skip",
) -> Iterator[RequestLog]:
    """Follow a growing file; see :func:`repro.logs.io.tail_records`."""
    return tail_records(
        path,
        poll_interval=poll_interval,
        idle_polls=idle_polls,
        on_error=on_error,
    )


def stdin_source(
    stream: Optional[IO[str]] = None, on_error: str = "skip"
) -> Iterator[RequestLog]:
    """Parse JSONL records from a text stream (default ``sys.stdin``)."""
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
    handle = stream if stream is not None else sys.stdin
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield RequestLog.from_dict(json.loads(line))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            if on_error == "skip":
                continue
            raise ValueError(
                f"stdin: malformed JSONL record on line {line_number}: {exc}"
            ) from exc
