"""Online windowed analysis: the batch pipelines as a service.

The batch pipelines answer "what did this dataset look like"; this
subsystem answers the question the paper's use cases (prefetching,
cache tuning — §6) actually ask: "what does the traffic look like
*right now*, and how is it drifting?"  It turns the sharded engine's
mergeable states into continuously maintained per-window results:

* :mod:`repro.stream.sources` / :mod:`repro.stream.ingest` — file,
  directory, tail and stdin sources feeding a bounded queue with
  explicit backpressure or counted load-shedding;
* :mod:`repro.stream.windows` — event-time tumbling/sliding windows
  with watermark-based sealing and late-record accounting;
* :mod:`repro.stream.accumulators` — per-window state is exactly the
  engine's :class:`~repro.engine.state.CharacterizationState`,
  :class:`~repro.engine.flowstate.FlowCollectionState` and
  :class:`~repro.engine.ngramstate.NgramSequenceState`, so merging
  all sealed windows of a replay reproduces the batch results;
* :mod:`repro.stream.snapshots` — per-window JSON share /
  cacheability / periods / top-K next-URL snapshots with
  cross-window drift deltas, emitted as JSONL;
* :mod:`repro.stream.service` — the assembled service, checkpointing
  every sealed window through :mod:`repro.engine.checkpoint` so a
  killed stream resumes at the first unsealed window;
* :mod:`repro.stream.characterizer` — the lightweight tumbling
  counter series (formerly ``repro.analysis.streaming``).

See ``docs/streaming.md`` for the windowing model and the
resume-from-checkpoint walkthrough.
"""

from .accumulators import (
    ALL_TRACKS,
    WindowAccumulator,
    merge_accumulators,
    merged_characterization,
    merged_ngram,
    merged_pattern_report,
    merged_periodicity,
)
from .characterizer import WindowStats, WindowedCharacterizer
from .ingest import IngestStage, IngestStats
from .service import StreamConfig, StreamResult, StreamService, window_id
from .snapshots import JsonlEmitter, SnapshotBuilder, WindowSnapshot
from .sources import (
    directory_sources,
    file_source,
    iterable_source,
    merged_directory_source,
    stdin_source,
    tail_source,
)
from .windows import WatermarkClock, WindowBounds, WindowManager, WindowSpec

__all__ = [
    "ALL_TRACKS",
    "IngestStage",
    "IngestStats",
    "JsonlEmitter",
    "SnapshotBuilder",
    "StreamConfig",
    "StreamResult",
    "StreamService",
    "WatermarkClock",
    "WindowAccumulator",
    "WindowBounds",
    "WindowManager",
    "WindowSnapshot",
    "WindowSpec",
    "WindowStats",
    "WindowedCharacterizer",
    "directory_sources",
    "file_source",
    "iterable_source",
    "merge_accumulators",
    "merged_characterization",
    "merged_directory_source",
    "merged_ngram",
    "merged_pattern_report",
    "merged_periodicity",
    "stdin_source",
    "tail_source",
    "window_id",
]
