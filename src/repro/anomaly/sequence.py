"""Request-sequence anomaly detection.

§5.2: "prediction of clustered objects can also be used for anomaly
detection of unusual requests" — "detect when a highly unlikely
object is requested".

:class:`SequenceAnomalyDetector` scores each request in a client flow
by its stupid-backoff transition score under a model trained on
normal traffic (clustered URLs, so per-object ids don't fragment the
statistics).  A request whose transition score falls below a
threshold calibrated on held-out normal traffic is flagged — the
signature of scanners, scrapers walking the URL space, or injection
probing, none of which follow the app's screen graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..logs.record import RequestLog
from ..ngram.clustering import UrlClusterer
from ..ngram.evaluate import build_client_sequences
from ..ngram.model import BackoffNgramModel

__all__ = ["SequenceAlert", "SequenceAnomalyDetector"]


@dataclass(frozen=True)
class SequenceAlert:
    """One improbable transition in a client flow."""

    client_id: str
    previous_token: str
    token: str
    score: float
    threshold: float
    position: int

    def describe(self) -> str:
        return (
            f"{self.client_id}: {self.previous_token} -> {self.token} "
            f"(score {self.score:.2e} < threshold {self.threshold:.2e})"
        )


class SequenceAnomalyDetector:
    """Transition-probability anomaly scoring over client flows.

    Parameters
    ----------
    order:
        Ngram history length.
    clustered:
        Score on clustered URLs (recommended: the paper's anomaly
        suggestion is specifically about clustered objects).
    quantile:
        Calibration quantile: the alert threshold is this quantile of
        transition scores on *normal* calibration traffic, so roughly
        ``quantile`` of benign transitions would be flagged — pick it
        for your alert budget.
    """

    def __init__(
        self,
        order: int = 1,
        clustered: bool = True,
        quantile: float = 0.005,
    ) -> None:
        if not 0 < quantile < 0.5:
            raise ValueError("quantile must be in (0, 0.5)")
        self.order = order
        self.clustered = clustered
        self.quantile = quantile
        self.model = BackoffNgramModel(order=order)
        self.threshold: Optional[float] = None
        #: Unseen-token floor: scores for never-seen successors are 0;
        #: they sit below any threshold and always alert.
        self._clusterer = UrlClusterer() if clustered else None

    # -- training ------------------------------------------------------------

    def fit(
        self,
        normal_logs: Iterable[RequestLog],
        calibration_fraction: float = 0.25,
    ) -> "SequenceAnomalyDetector":
        """Train on normal traffic and calibrate the alert threshold.

        Flows are split (by client hash) into a training part for the
        ngram counts and a calibration part whose transition-score
        distribution sets the threshold.
        """
        sequences = build_client_sequences(
            normal_logs, clustered=self.clustered
        )
        client_ids = sorted(sequences)
        split = max(1, int(len(client_ids) * (1.0 - calibration_fraction)))
        train_ids, calibration_ids = client_ids[:split], client_ids[split:]
        self.model = BackoffNgramModel(order=self.order)
        self.model.fit(sequences[cid] for cid in train_ids)

        scores: List[float] = []
        for cid in calibration_ids:
            flow = sequences[cid]
            for position in range(1, len(flow)):
                history = flow[max(0, position - self.order) : position]
                scores.append(self.model.probability(history, flow[position]))
        if scores:
            self.threshold = float(np.quantile(scores, self.quantile))
        else:
            self.threshold = 0.0
        return self

    # -- scoring ------------------------------------------------------------------

    def score_sequence(self, tokens: Sequence[str]) -> List[float]:
        """Transition score for each position (index 0 is skipped)."""
        out: List[float] = []
        for position in range(1, len(tokens)):
            history = tokens[max(0, position - self.order) : position]
            out.append(self.model.probability(history, tokens[position]))
        return out

    def scan_flow(self, client_id: str, tokens: Sequence[str]) -> List[SequenceAlert]:
        """Alerts for one client flow of (possibly raw) URL tokens."""
        if self.threshold is None:
            raise RuntimeError("detector not fitted; call fit() first")
        alerts: List[SequenceAlert] = []
        for position in range(1, len(tokens)):
            history = tokens[max(0, position - self.order) : position]
            score = self.model.probability(history, tokens[position])
            if score <= self.threshold:
                alerts.append(
                    SequenceAlert(
                        client_id=client_id,
                        previous_token=tokens[position - 1],
                        token=tokens[position],
                        score=score,
                        threshold=self.threshold,
                        position=position,
                    )
                )
        return alerts

    def scan(self, live_logs: Iterable[RequestLog]) -> List[SequenceAlert]:
        """Scan live traffic; returns alerts across all client flows."""
        sequences = build_client_sequences(live_logs, clustered=self.clustered)
        alerts: List[SequenceAlert] = []
        for client_id, flow in sequences.items():
            alerts.extend(self.scan_flow(client_id, flow))
        return alerts

    def flow_anomaly_rate(self, tokens: Sequence[str]) -> float:
        """Share of a flow's transitions at or below the threshold.

        A whole-flow summary: scanners walking the URL space score
        near 1.0; organic flows score near the calibration quantile.
        """
        if self.threshold is None:
            raise RuntimeError("detector not fitted; call fit() first")
        scores = self.score_sequence(tokens)
        if not scores:
            return 0.0
        return sum(1 for score in scores if score <= self.threshold) / len(scores)
