"""Traffic anomaly detection built on the §5 patterns.

The paper proposes both uses without building them; this package
does: period-deviation monitoring (an object polled at the wrong
rate, §5.1) and sequence anomaly scoring (a client requesting highly
unlikely objects, §5.2).
"""

from .periodic import PeriodAlert, PeriodBaseline, PeriodicAnomalyMonitor
from .sequence import SequenceAlert, SequenceAnomalyDetector

__all__ = [
    "PeriodBaseline",
    "PeriodAlert",
    "PeriodicAnomalyMonitor",
    "SequenceAlert",
    "SequenceAnomalyDetector",
]
