"""Period-deviation anomaly detection.

§5.1: "Periodic information can also be used for anomaly detection
when an object is requested at a different period than it is intended
to be requested."

:class:`PeriodicAnomalyMonitor` learns each object's intended period
from a baseline log window (via the §5.1 detector) and then watches
live flows: a client whose observed polling interval deviates from
the intended period — too fast (runaway or abusive client), too slow
is usually benign — raises an alert.  Detection on the live side is
interval-based rather than FFT-based so alerts fire after a handful
of requests instead of after a full window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..logs.record import RequestLog
from ..periodicity.detector import DetectedPeriod, PeriodDetector
from ..periodicity.flows import FlowFilter, extract_flows

__all__ = ["PeriodBaseline", "PeriodAlert", "PeriodicAnomalyMonitor"]


@dataclass(frozen=True)
class PeriodBaseline:
    """An object's learned intended period."""

    object_id: str
    period_s: float
    acf_value: float


@dataclass(frozen=True)
class PeriodAlert:
    """One flagged client-object flow."""

    object_id: str
    client_id: str
    observed_period_s: float
    intended_period_s: float
    #: observed / intended; < 1 means faster than intended.
    speed_ratio: float
    request_count: int

    def describe(self) -> str:
        direction = "faster" if self.speed_ratio < 1.0 else "slower"
        return (
            f"{self.client_id} polls {self.object_id} every "
            f"{self.observed_period_s:.1f}s — {1 / self.speed_ratio:.1f}x "
            f"{direction} than the intended {self.intended_period_s:.1f}s"
        )


class PeriodicAnomalyMonitor:
    """Learns intended periods, then flags deviating live flows.

    Parameters
    ----------
    tolerance:
        Relative deviation of the observed interval from the intended
        period before a flow is flagged (0.35 → anything outside
        ±35%, excluding clean harmonics, alerts).
    min_live_requests:
        Requests needed in a live flow before judging it.
    allow_harmonics:
        Do not alert on flows polling at an integer multiple of the
        intended period (a device on a battery-saver schedule).
    """

    def __init__(
        self,
        tolerance: float = 0.35,
        min_live_requests: int = 6,
        allow_harmonics: bool = True,
    ) -> None:
        if not 0 < tolerance < 1:
            raise ValueError("tolerance must be in (0, 1)")
        self.tolerance = tolerance
        self.min_live_requests = min_live_requests
        self.allow_harmonics = allow_harmonics
        self.baselines: Dict[str, PeriodBaseline] = {}

    # -- learning ------------------------------------------------------------

    def learn(
        self,
        baseline_logs: Iterable[RequestLog],
        detector: Optional[PeriodDetector] = None,
        flow_filter: Optional[FlowFilter] = None,
    ) -> Dict[str, PeriodBaseline]:
        """Extract intended periods from a baseline window."""
        detector = detector or PeriodDetector()
        flows = extract_flows(baseline_logs, flow_filter)
        for object_id, flow in flows.items():
            found = detector.detect(flow.merged_timestamps())
            if found is not None:
                self.baselines[object_id] = PeriodBaseline(
                    object_id=object_id,
                    period_s=found.period_s,
                    acf_value=found.acf_value,
                )
        return self.baselines

    def set_baseline(self, object_id: str, period_s: float) -> None:
        """Register a known intended period (e.g. from app config)."""
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.baselines[object_id] = PeriodBaseline(object_id, period_s, 1.0)

    # -- live checking ------------------------------------------------------------

    def check_flow(
        self, object_id: str, client_id: str, timestamps: np.ndarray
    ) -> Optional[PeriodAlert]:
        """Judge one live client-object flow against its baseline.

        The observed period is the median inter-arrival time — robust
        against missed polls (which produce 2x-period gaps) as long
        as most intervals are regular.
        """
        baseline = self.baselines.get(object_id)
        if baseline is None:
            return None
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if timestamps.size < self.min_live_requests:
            return None
        gaps = np.diff(np.sort(timestamps))
        gaps = gaps[gaps > 0]
        if gaps.size == 0:
            return None
        observed = float(np.median(gaps))
        ratio = observed / baseline.period_s
        if self._is_acceptable(ratio):
            return None
        return PeriodAlert(
            object_id=object_id,
            client_id=client_id,
            observed_period_s=observed,
            intended_period_s=baseline.period_s,
            speed_ratio=ratio,
            request_count=int(timestamps.size),
        )

    def scan(self, live_logs: Iterable[RequestLog]) -> List[PeriodAlert]:
        """Check every live client-object flow; returns all alerts.

        Live flows are grouped without the baseline's popularity
        filters: an anomalous client must not escape by being the
        only one misbehaving.
        """
        lenient = FlowFilter(
            min_requests_per_client_flow=self.min_live_requests,
            min_clients_per_object_flow=1,
        )
        flows = extract_flows(live_logs, lenient)
        alerts: List[PeriodAlert] = []
        for object_id, flow in flows.items():
            if object_id not in self.baselines:
                continue
            for client_id, client_flow in flow.client_flows.items():
                alert = self.check_flow(
                    object_id, client_id, client_flow.timestamps
                )
                if alert is not None:
                    alerts.append(alert)
        return sorted(alerts, key=lambda alert: alert.speed_ratio)

    # -- internals ------------------------------------------------------------------

    def _is_acceptable(self, ratio: float) -> bool:
        if abs(ratio - 1.0) <= self.tolerance:
            return True
        if self.allow_harmonics and ratio > 1.0:
            nearest = round(ratio)
            if nearest >= 2 and abs(ratio - nearest) <= self.tolerance:
                return True
        return False
