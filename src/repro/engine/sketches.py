"""Mergeable sketch accumulators for sharded analysis.

Every structure here supports three operations with the same shape:

* ``add(item)`` — fold one observation in, O(1);
* ``merge(other)`` — combine two partial states such that
  ``merge(A(x), A(y)) == A(x + y)`` (exactly for the counters,
  within the documented error bound for the sketches);
* pickling — partial states travel across process boundaries and
  into checkpoint files.

The sketches trade exactness for bounded memory:

* :class:`HyperLogLog` — unique-count estimation with relative
  standard error ``1.04 / sqrt(2**precision)`` (~0.8% at the
  default ``precision=14``, 16 KiB of registers).
* :class:`UniqueCounter` — exact ``set`` up to a threshold, then
  spills into a HyperLogLog; small windows stay exact, big ones
  stay bounded.
* :class:`ReservoirSample` — uniform sample of a stream for
  quantile estimation in O(capacity) memory.
* :class:`CountMinSketch` — frequency estimation, overestimates by
  at most ``e/width * N`` with probability ``1 - e**-depth``.
* :class:`TopK` — space-saving heavy hitters; any key with true
  count above ``N/capacity`` is guaranteed present.

:class:`~repro.engine.state.CharacterizationState` composes these
with the exact §4 accumulators into the engine's map/combine unit of
work; this module stays dependency-free (stdlib only) so low-level
consumers (e.g. :mod:`repro.analysis.streaming`) can import a sketch
without pulling in the analysis layer.

All hashing uses :func:`stable_hash64` (keyed BLAKE2b), never the
process-salted builtin ``hash`` — sketch states built in different
worker processes must agree on where an item lands.
"""

from __future__ import annotations

import random
from hashlib import blake2b
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "stable_hash64",
    "HyperLogLog",
    "UniqueCounter",
    "ReservoirSample",
    "CountMinSketch",
    "TopK",
]

_HASH_BITS = 64


def stable_hash64(value: str, salt: bytes = b"") -> int:
    """Process-stable 64-bit hash of a string.

    The builtin ``hash`` is salted per interpreter (PYTHONHASHSEED),
    so sketch registers filled in different worker processes would
    disagree; BLAKE2b is stable everywhere and fast enough.
    """
    return int.from_bytes(
        blake2b(value.encode("utf-8"), digest_size=8, key=salt).digest(), "big"
    )


class HyperLogLog:
    """HyperLogLog unique-count estimator (Flajolet et al. 2007).

    ``precision`` register-index bits give ``m = 2**precision``
    one-byte registers and relative standard error
    ``1.04 / sqrt(m)``.  Merging takes the register-wise max, so a
    merged sketch equals the sketch of the concatenated streams —
    the property the sharded engine relies on.
    """

    __slots__ = ("precision", "registers")

    def __init__(self, precision: int = 14) -> None:
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in [4, 18]")
        self.precision = precision
        self.registers = bytearray(1 << precision)

    @property
    def num_registers(self) -> int:
        return 1 << self.precision

    @property
    def relative_error(self) -> float:
        """Expected relative standard error of :meth:`estimate`."""
        return 1.04 / (self.num_registers ** 0.5)

    def add(self, value: str) -> None:
        hashed = stable_hash64(value)
        index = hashed >> (_HASH_BITS - self.precision)
        remainder = hashed & ((1 << (_HASH_BITS - self.precision)) - 1)
        # Rank: position of the highest set bit in the remainder,
        # counted from the MSB side of the (64 - p)-bit word, 1-based.
        rank = (_HASH_BITS - self.precision) - remainder.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def update(self, values: Iterable[str]) -> "HyperLogLog":
        for value in values:
            self.add(value)
        return self

    def estimate(self) -> float:
        m = self.num_registers
        inverse_sum = 0.0
        zeros = 0
        for register in self.registers:
            inverse_sum += 2.0 ** -register
            if register == 0:
                zeros += 1
        alpha = 0.7213 / (1.0 + 1.079 / m)
        raw = alpha * m * m / inverse_sum
        if raw <= 2.5 * m and zeros:
            # Small-range correction: linear counting is more accurate
            # while most registers are untouched.
            import math

            return m * math.log(m / zeros)
        return raw

    def __len__(self) -> int:
        return int(round(self.estimate()))

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        if other.precision != self.precision:
            raise ValueError(
                f"cannot merge HLL precisions {self.precision} != {other.precision}"
            )
        for index, register in enumerate(other.registers):
            if register > self.registers[index]:
                self.registers[index] = register
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "precision": self.precision,
            "registers": bytes(self.registers).hex(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HyperLogLog":
        sketch = cls(precision=int(data["precision"]))
        sketch.registers = bytearray(bytes.fromhex(data["registers"]))
        return sketch


class UniqueCounter:
    """Hybrid unique counter: exact until a threshold, then a sketch.

    Below ``exact_threshold`` distinct items this is an exact ``set``
    (``len`` is exact, ``is_exact`` is True).  Beyond it, the set
    spills into a :class:`HyperLogLog` and memory stays constant.
    Merging two counters spills if the union would exceed the
    threshold.
    """

    __slots__ = ("exact_threshold", "precision", "exact", "sketch")

    def __init__(self, exact_threshold: int = 10_000, precision: int = 14) -> None:
        if exact_threshold < 0:
            raise ValueError("exact_threshold must be >= 0")
        self.exact_threshold = exact_threshold
        self.precision = precision
        self.exact: Optional[set] = set()
        self.sketch: Optional[HyperLogLog] = None

    @property
    def is_exact(self) -> bool:
        return self.exact is not None

    def _spill(self) -> None:
        sketch = HyperLogLog(self.precision)
        if self.exact:
            sketch.update(self.exact)
        self.sketch = sketch
        self.exact = None

    def add(self, value: str) -> None:
        if self.exact is not None:
            self.exact.add(value)
            if len(self.exact) > self.exact_threshold:
                self._spill()
        else:
            self.sketch.add(value)

    def __len__(self) -> int:
        if self.exact is not None:
            return len(self.exact)
        return len(self.sketch)

    def __contains__(self, value: str) -> bool:
        if self.exact is None:
            raise TypeError("membership is unavailable after sketch spill")
        return value in self.exact

    def merge(self, other: "UniqueCounter") -> "UniqueCounter":
        if self.exact is not None and other.exact is not None:
            self.exact |= other.exact
            if len(self.exact) > self.exact_threshold:
                self._spill()
            return self
        if self.exact is not None:
            self._spill()
        if other.exact is not None:
            self.sketch.update(other.exact)
        else:
            self.sketch.merge(other.sketch)
        return self


class ReservoirSample:
    """Uniform reservoir sample (Vitter's Algorithm R), mergeable.

    Holds at most ``capacity`` items; every stream element has equal
    probability ``capacity / n`` of being retained.  Merging draws
    each slot from the two reservoirs proportionally to their stream
    lengths — the standard distributed-reservoir approximation.
    Randomness comes from a seeded generator, so a fixed shard plan
    produces a fixed sample.
    """

    __slots__ = ("capacity", "items", "count", "_rng")

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.items: List[float] = []
        self.count = 0
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        if len(self.items) < self.capacity:
            self.items.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self.items[slot] = value

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        if other.capacity != self.capacity:
            raise ValueError("cannot merge reservoirs of different capacity")
        if not other.count:
            return self
        if self.count + other.count <= self.capacity:
            self.items.extend(other.items)
            self.count += other.count
            return self
        mine = list(self.items)
        theirs = list(other.items)
        merged: List[float] = []
        weight_self, weight_other = self.count, other.count
        while len(merged) < self.capacity and (mine or theirs):
            total = weight_self + weight_other
            take_self = mine and (
                not theirs or self._rng.random() * total < weight_self
            )
            if take_self:
                merged.append(mine.pop(self._rng.randrange(len(mine))))
                weight_self = max(weight_self - 1, 0)
            else:
                merged.append(theirs.pop(self._rng.randrange(len(theirs))))
                weight_other = max(weight_other - 1, 0)
        self.items = merged
        self.count += other.count
        return self

    def quantile(self, q: float) -> float:
        """Sample quantile, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.items:
            raise ValueError("empty reservoir has no quantiles")
        ordered = sorted(self.items)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class CountMinSketch:
    """Count–min frequency sketch (Cormode & Muthukrishnan 2005).

    ``estimate`` never underestimates; it overestimates by at most
    ``(e / width) * N`` with probability at least ``1 - e**-depth``.
    Merging adds cell-wise, so a merged sketch equals the sketch of
    the concatenated streams.
    """

    __slots__ = ("width", "depth", "rows", "total")

    def __init__(self, width: int = 2048, depth: int = 4) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.total = 0

    def _indexes(self, key: str) -> Iterable[int]:
        for row in range(self.depth):
            yield stable_hash64(key, salt=row.to_bytes(2, "big")) % self.width

    def add(self, key: str, count: int = 1) -> None:
        self.total += count
        for row, index in enumerate(self._indexes(key)):
            self.rows[row][index] += count

    def estimate(self, key: str) -> int:
        return min(
            self.rows[row][index] for row, index in enumerate(self._indexes(key))
        )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        if (other.width, other.depth) != (self.width, self.depth):
            raise ValueError("cannot merge count-min sketches of different shape")
        for mine, theirs in zip(self.rows, other.rows):
            for index, value in enumerate(theirs):
                mine[index] += value
        self.total += other.total
        return self


class TopK:
    """Space-saving heavy hitters (Metwally et al. 2005), mergeable.

    Keeps at most ``capacity`` monitored keys.  Any key whose true
    count exceeds ``N / capacity`` is guaranteed monitored, and each
    reported count overestimates the truth by at most the recorded
    per-key ``error``.  Merging sums counts and errors over the key
    union, then re-truncates to capacity (errors absorb the cut
    counts), which preserves both guarantees.
    """

    __slots__ = ("capacity", "counts", "errors", "total")

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.counts: Dict[str, int] = {}
        self.errors: Dict[str, int] = {}
        self.total = 0

    def add(self, key: str, count: int = 1) -> None:
        self.total += count
        if key in self.counts:
            self.counts[key] += count
            return
        if len(self.counts) < self.capacity:
            self.counts[key] = count
            self.errors[key] = 0
            return
        victim = min(self.counts, key=lambda k: (self.counts[k], k))
        floor = self.counts.pop(victim)
        self.errors.pop(victim)
        self.counts[key] = floor + count
        self.errors[key] = floor

    def merge(self, other: "TopK") -> "TopK":
        if other.capacity != self.capacity:
            raise ValueError("cannot merge TopK summaries of different capacity")
        for key, count in other.counts.items():
            if key in self.counts:
                self.counts[key] += count
                self.errors[key] += other.errors[key]
            else:
                self.counts[key] = count
                self.errors[key] = other.errors[key]
        self.total += other.total
        if len(self.counts) > self.capacity:
            ranked = sorted(
                self.counts, key=lambda k: (-self.counts[k], k)
            )
            for key in ranked[self.capacity:]:
                self.counts.pop(key)
                self.errors.pop(key)
        return self

    def top(self, count: int = 10) -> List[Tuple[str, int]]:
        ranked = sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:count]
