"""Map/combine/reduce over shards with pluggable backends.

The engine's control loop: a ``map_fn`` turns each :class:`Shard`
into a mergeable partial state, the executor runs shards on one of
three backends, and the partial states fold together **in plan
order** — never completion order — so the merged result is
bit-for-bit identical no matter which backend ran it or how the
scheduler interleaved the shards.

Backends:

* ``serial``  — in-process loop; the reference semantics.
* ``thread``  — :class:`~concurrent.futures.ThreadPoolExecutor`;
  wins when shards are I/O-bound (gzip partition files).
* ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`;
  wins when shards are CPU-bound.  ``map_fn`` and shards must
  pickle (top-level functions, dataclass shards).
* ``auto``    — serial for one worker, processes otherwise.

Per-shard failures are captured, not cascaded: every shard gets a
:class:`ShardResult` (ok/error/timing/attempts/provenance), and with
``strict=True`` (default) the run raises :class:`EngineError` *after*
all shards finish, listing the failures (capped — see
:data:`EngineError.MAX_LISTED`).

Partial-failure hardening (see ``docs/robustness.md``):

* ``timeout_s`` — a pooled shard attempt that exceeds the deadline is
  *abandoned* (its eventual result ignored; checkpoints save
  parent-side, so an abandoned attempt cannot persist anything) and
  the shard is resubmitted.  Serial runs cannot preempt, so the
  timeout applies to thread/process backends only.
* ``retries`` — each shard gets up to ``1 + retries`` attempts with
  exponential backoff (``backoff_s * 2**(attempt-1)``, slept on the
  worker so the control loop never blocks).  A worker-process death
  (``BrokenProcessPool``) breaks every outstanding future; the pool
  is rebuilt once and the victims resubmitted on their next attempt.
* **quarantine** — a shard that fails its final attempt is poison.
  With ``strict=False`` the run completes without it; the report
  lists it under :attr:`RunReport.quarantined`.
* **checkpoint recovery** — a checkpoint that fails to load (torn
  file, checksum mismatch) is treated as absent: the shard recomputes
  and the report counts it in
  :attr:`RunReport.recomputed_checkpoints`.  Corruption never
  crashes a run.

A :class:`CheckpointStore` plugs in to skip already-computed shards
and persist fresh ones; a ``progress`` callback observes each
completed shard for live reporting.  A
:class:`~repro.faults.FaultPlan` passed as ``faults`` is installed
for the duration of the run (and shipped to pool workers as a pickled
argument) to exercise all of the above deterministically.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..faults import FaultPlan, InjectedFault
from ..faults import runtime as fault_runtime
from ..obs import runtime as obs_runtime
from ..obs.registry import MetricsRegistry
from ..obs.spans import span
from .checkpoint import CheckpointError, CheckpointStore
from .shard import Shard

__all__ = [
    "ShardResult",
    "RunReport",
    "EngineError",
    "ShardExecutor",
    "run_shards",
]

BACKENDS = ("auto", "serial", "thread", "process")

MapFn = Callable[[Shard], Any]
ProgressFn = Callable[["ShardResult", int, int], None]


def _exception_line(error: Optional[str]) -> str:
    """The exception line of a captured traceback.

    ``traceback.format_exc()`` puts ``ExcType: message`` on the last
    non-empty line; synthetic errors (timeouts) are single lines and
    fall out the same way.
    """
    for line in reversed((error or "").strip().splitlines()):
        if line.strip():
            return line.strip()
    return "?"


class EngineError(RuntimeError):
    """One or more shards failed in a strict run.

    The message lists at most :data:`MAX_LISTED` failing shards with
    their exception lines; the full set is always available on
    :attr:`failures`, so a 500-shard outage stays a 10-line message.
    """

    MAX_LISTED = 8

    def __init__(self, failures: Sequence["ShardResult"]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} shard(s) failed:"]
        for result in self.failures[: self.MAX_LISTED]:
            lines.append(f"  {result.shard_id}: {_exception_line(result.error)}")
        hidden = len(self.failures) - self.MAX_LISTED
        if hidden > 0:
            lines.append(
                f"  ... and {hidden} more (see EngineError.failures)"
            )
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard: state provenance, timing, error capture.

    ``attempts`` counts map-function executions (0 for a shard served
    from a checkpoint); ``seconds`` spans from the first submission to
    the final outcome, retries and backoff included.
    """

    shard_id: str
    ok: bool
    seconds: float = 0.0
    records: Optional[int] = None
    error: Optional[str] = None
    from_checkpoint: bool = False
    attempts: int = 1
    recomputed_checkpoint: bool = False


@dataclass
class RunReport:
    """Aggregate statistics of one engine run."""

    results: List[ShardResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    backend: str = "serial"
    workers: int = 1

    @property
    def total_shards(self) -> int:
        return len(self.results)

    @property
    def failed(self) -> List[ShardResult]:
        return [result for result in self.results if not result.ok]

    @property
    def skipped(self) -> int:
        """Shards satisfied from checkpoints without recomputation."""
        return sum(1 for result in self.results if result.from_checkpoint)

    @property
    def executed(self) -> int:
        return sum(
            1 for result in self.results if result.ok and not result.from_checkpoint
        )

    @property
    def retries(self) -> int:
        """Extra map-function attempts beyond the first, run-wide."""
        return sum(max(0, result.attempts - 1) for result in self.results)

    @property
    def quarantined(self) -> List[str]:
        """Poison shards: failed every attempt (run completes only
        when ``strict=False``)."""
        return [result.shard_id for result in self.results if not result.ok]

    @property
    def recomputed_checkpoints(self) -> int:
        """Shards whose checkpoint failed to load and were recomputed."""
        return sum(
            1 for result in self.results if result.recomputed_checkpoint
        )

    @property
    def total_records(self) -> Optional[int]:
        counts = [result.records for result in self.results if result.ok]
        if not counts or any(count is None for count in counts):
            return None
        return sum(counts)


def _fire_map_faults(shard_id: str) -> None:
    """Consult the installed fault plan at the map-function boundary."""
    rule = fault_runtime.should_fire("map.hang", shard_id)
    if rule is not None:
        time.sleep(rule.param)
    rule = fault_runtime.should_fire("map.worker_death", shard_id)
    if rule is not None:
        if multiprocessing.parent_process() is not None:
            # A real pool worker: die the way an OOM kill would, with
            # no exception propagation and no cleanup.
            os._exit(13)
        # Thread/serial backends have no process to kill; degrade to a
        # raised fault so the plan stays meaningful on every backend.
        raise InjectedFault(f"injected worker death on shard {shard_id!r}")
    if fault_runtime.should_fire("map.exception", shard_id) is not None:
        raise InjectedFault(f"injected map exception on shard {shard_id!r}")


class _MappedShard:
    """A mapped state paired with its worker-side metrics registry.

    An explicit wrapper, not a tuple — map functions are free to
    return tuples as their state, so the unwrap in ``record_outcome``
    must be unambiguous.  Both halves pickle, so the pair crosses the
    process-pool boundary intact.
    """

    __slots__ = ("state", "metrics")

    def __init__(self, state: Any, metrics: MetricsRegistry) -> None:
        self.state = state
        self.metrics = metrics


def _run_one(
    map_fn: MapFn,
    shard: Shard,
    plan: Optional[FaultPlan] = None,
    attempt: int = 0,
    delay_s: float = 0.0,
    collect_metrics: bool = False,
) -> Any:
    """Execute one shard attempt (runs on the pool worker).

    The fault plan arrives as a pickled argument — process-pool
    workers do not share the parent's module globals — and is
    installed around the map call so hooks deep inside ``map_fn``
    (gzip reads, line parsing) see it.  On the thread and serial
    backends the parent's own install is already visible, so the
    worker installs nothing: a hung, abandoned worker thread must
    never touch the global plan after its run has moved on.
    ``delay_s`` is the retry backoff, slept worker-side to keep the
    parent control loop free.

    With ``collect_metrics`` the attempt records into a **fresh
    per-shard registry** (thread-locally scoped, so thread-backend
    workers never race into the parent's ambient registry) and
    returns a :class:`_MappedShard`; the parent folds the registries
    back in plan order, which is what makes the merged metrics
    identical serial vs parallel.  Only the attempt that produces the
    returned state contributes metrics — failed or abandoned attempts
    surface through the parent-side retry/timeout counters instead.
    """
    if delay_s > 0:
        time.sleep(delay_s)
    if fault_runtime.active() is not None:
        plan = None  # parent-side install (thread/serial) already covers us
    with fault_runtime.installed(plan), fault_runtime.attempt(attempt):
        _fire_map_faults(shard.shard_id)
        if not collect_metrics:
            return map_fn(shard)
        registry = MetricsRegistry()
        with obs_runtime.shard_scope(registry):
            with span("engine.map_shard", shard=shard.shard_id):
                state = map_fn(shard)
            registry.inc("engine.shards_mapped")
            records = getattr(state, "record_count", None)
            if records is not None:
                registry.observe("engine.shard_records", records)
        return _MappedShard(state, registry)


@dataclass
class _Inflight:
    """Bookkeeping for one submitted shard attempt."""

    index: int
    attempt: int
    submitted: float


class ShardExecutor:
    """Runs a shard plan through map/combine/reduce."""

    def __init__(
        self,
        workers: int = 1,
        backend: str = "auto",
        checkpoint: Optional[CheckpointStore] = None,
        progress: Optional[ProgressFn] = None,
        strict: bool = True,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.05,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive when set")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        self.workers = workers
        self.backend = (
            ("serial" if workers == 1 else "process") if backend == "auto" else backend
        )
        self.checkpoint = checkpoint
        self.progress = progress
        self.strict = strict
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.faults = faults
        self._collect_metrics = False  # resolved per run from the ambient registry

    # -- public API --------------------------------------------------------

    def run(self, shards: Sequence[Shard], map_fn: MapFn):
        """Execute the plan; returns ``(merged_state, RunReport)``.

        ``map_fn(shard)`` must return a partial state exposing
        ``merge(other)``; states merge in plan order.  With an empty
        plan the merged state is ``None``.
        """
        with fault_runtime.installed(self.faults):
            return self._run(shards, map_fn)

    # -- internals ---------------------------------------------------------

    def _run(self, shards: Sequence[Shard], map_fn: MapFn):
        started = time.perf_counter()
        ids = [shard.shard_id for shard in shards]
        if len(set(ids)) != len(ids):
            raise ValueError("shard plan contains duplicate shard ids")
        if self.backend == "process":
            self._ensure_picklable_map_fn(map_fn)

        # Metrics are collected only when a registry is ambient; the
        # flag is resolved once so every shard attempt of the run
        # agrees, and per-shard worker registries are folded back in
        # plan order below (completion order must not matter).
        self._collect_metrics = obs_runtime.active() is not None
        shard_metrics: Dict[int, MetricsRegistry] = {}

        states: Dict[int, Any] = {}
        results: Dict[int, ShardResult] = {}
        pending: List[int] = []
        recompute: Set[int] = set()

        # Reduce phase 0: satisfy shards from the checkpoint store.  A
        # checkpoint that fails validation (torn file, checksum
        # mismatch) is not an error — the shard recomputes.
        for index, shard in enumerate(shards):
            if self.checkpoint is None or not self.checkpoint.has(shard.shard_id):
                pending.append(index)
                continue
            try:
                state = self.checkpoint.load(shard.shard_id)
            except CheckpointError:
                recompute.add(index)
                pending.append(index)
                continue
            states[index] = state
            results[index] = ShardResult(
                shard_id=shard.shard_id,
                ok=True,
                records=getattr(state, "record_count", None),
                from_checkpoint=True,
                attempts=0,
            )

        done_count = len(results)
        total = len(shards)
        for index in sorted(results):
            self._notify(results[index], done_count, total)

        def record_outcome(index: int, state: Any, seconds: float,
                           error: Optional[str], attempts: int) -> None:
            nonlocal done_count
            shard = shards[index]
            if isinstance(state, _MappedShard):
                shard_metrics[index] = state.metrics
                state = state.state
            if error is None:
                states[index] = state
                if self.checkpoint is not None:
                    self.checkpoint.save(shard.shard_id, state)
            result = ShardResult(
                shard_id=shard.shard_id,
                ok=error is None,
                seconds=seconds,
                records=getattr(state, "record_count", None) if error is None else None,
                error=error,
                attempts=attempts,
                recomputed_checkpoint=index in recompute and error is None,
            )
            results[index] = result
            done_count += 1
            self._notify(result, done_count, total)

        if self.backend == "serial":
            self._map_serial_all(map_fn, shards, pending, record_outcome)
        else:
            self._map_pooled(map_fn, shards, pending, record_outcome)

        # Reduce: merge partial states in plan order, deterministically.
        # ``merge`` may fold into the receiver in place, so a
        # checkpoint-loaded merge base is copied first — a store that
        # caches loaded objects must never see them mutated.
        merged: Any = None
        for index in range(total):
            state = states.get(index)
            if state is None:
                continue
            if merged is None:
                if results[index].from_checkpoint:
                    state = copy.deepcopy(state)
                merged = state
            else:
                merged = merged.merge(state)

        report = RunReport(
            results=[results[index] for index in sorted(results)],
            elapsed_seconds=time.perf_counter() - started,
            backend=self.backend,
            workers=self.workers,
        )
        self._record_run_metrics(report, shard_metrics, total)
        if self.strict and report.failed:
            raise EngineError(report.failed)
        return merged, report

    def _record_run_metrics(
        self,
        report: RunReport,
        shard_metrics: Dict[int, MetricsRegistry],
        total: int,
    ) -> None:
        """Fold worker registries and run-level counters into the
        ambient registry.

        Worker registries merge in plan (index) order — the same
        discipline as the state reduce — so histogram float sums
        accumulate identically on every backend.  Runs before the
        strict-mode raise so a failed run still exports its metrics.
        """
        ambient = obs_runtime.active()
        if ambient is None:
            return
        for index in sorted(shard_metrics):
            ambient.merge(shard_metrics[index])
        ambient.inc("engine.runs")
        ambient.inc("engine.shards_planned", total)
        ambient.inc("engine.shards_from_checkpoint", report.skipped)
        ambient.inc("engine.shards_completed", report.executed)
        ambient.inc("engine.shards_failed", len(report.failed))
        ambient.inc("engine.shard_retries", report.retries)
        ambient.inc(
            "engine.recomputed_checkpoints", report.recomputed_checkpoints
        )
        for result in report.results:
            if result.attempts > 0:
                ambient.observe("engine.shard_seconds", result.seconds)
        ambient.observe("engine.run_seconds", report.elapsed_seconds)

    def _notify(self, result: ShardResult, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(result, done, total)

    def _backoff(self, attempt: int) -> float:
        """Delay before ``attempt`` (attempt 0 never waits)."""
        if attempt <= 0 or self.backoff_s == 0:
            return 0.0
        return self.backoff_s * (2 ** (attempt - 1))

    @staticmethod
    def _ensure_picklable_map_fn(map_fn: MapFn) -> None:
        """Fail fast with a clear message instead of N pickle tracebacks.

        The process backend pickles the map function once per shard;
        a lambda, a closure, or a ``functools.partial`` carrying an
        unpicklable callback would otherwise fail every shard with
        the same cryptic ``PicklingError``.  (The ``progress``
        callback itself never crosses the process boundary — it runs
        in the parent — so it may be a lambda.)
        """
        try:
            pickle.dumps(map_fn)
        except Exception as exc:
            raise ValueError(
                f"process backend requires a picklable map function, got "
                f"{map_fn!r}: {exc}. Define the map function (and any "
                f"callback bound into it, e.g. via functools.partial) at "
                f"module top level, or use the thread/serial backend."
            ) from exc

    def _map_serial_all(
        self,
        map_fn: MapFn,
        shards: Sequence[Shard],
        pending: Sequence[int],
        record_outcome: Callable[[int, Any, float, Optional[str], int], None],
    ) -> None:
        """Serial backend: retry loop in place (no preemptive timeout)."""
        for index in pending:
            first_started = time.perf_counter()
            attempt = 0
            while True:
                delay = self._backoff(attempt)
                if delay > 0:
                    time.sleep(delay)
                try:
                    state = _run_one(
                        map_fn, shards[index], self.faults, attempt,
                        0.0, self._collect_metrics,
                    )
                    error = None
                except Exception:
                    state = None
                    error = traceback.format_exc()
                if error is None or attempt >= self.retries:
                    record_outcome(
                        index,
                        state,
                        time.perf_counter() - first_started,
                        error,
                        attempt + 1,
                    )
                    break
                attempt += 1

    def _map_pooled(
        self,
        map_fn: MapFn,
        shards: Sequence[Shard],
        pending: Sequence[int],
        record_outcome: Callable[[int, Any, float, Optional[str], int], None],
    ) -> None:
        pool_cls = (
            ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        )
        pool = pool_cls(max_workers=self.workers)
        inflight: Dict[Future, _Inflight] = {}
        first_started: Dict[int, float] = {}

        def submit(index: int, attempt: int) -> None:
            nonlocal pool
            first_started.setdefault(index, time.perf_counter())
            args = (map_fn, shards[index], self.faults, attempt,
                    self._backoff(attempt), self._collect_metrics)
            try:
                future = pool.submit(_run_one, *args)
            except (BrokenExecutor, RuntimeError):
                # A dead worker poisons the whole ProcessPoolExecutor;
                # replace it once and resubmit.  (RuntimeError covers
                # "cannot schedule new futures after shutdown" races.)
                pool = pool_cls(max_workers=self.workers)
                future = pool.submit(_run_one, *args)
            inflight[future] = _Inflight(index, attempt, time.perf_counter())

        def finish(info: _Inflight, state: Any, error: Optional[str],
                   retryable: bool) -> None:
            if error is not None and retryable and info.attempt < self.retries:
                submit(info.index, info.attempt + 1)
                return
            record_outcome(
                info.index,
                state,
                time.perf_counter() - first_started[info.index],
                error,
                info.attempt + 1,
            )

        try:
            for index in pending:
                submit(index, 0)
            while inflight:
                done, _ = wait(
                    set(inflight),
                    timeout=self._wait_timeout(inflight),
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    info = inflight.pop(future)
                    try:
                        state = future.result()
                    except BrokenExecutor:
                        # Collateral of a worker death: the attempt
                        # never misbehaved, so retrying it is always
                        # sound.
                        finish(info, None, traceback.format_exc(), True)
                    except Exception:
                        finish(info, None, traceback.format_exc(), True)
                    else:
                        finish(info, state, None, False)
                self._expire(inflight, finish, submit)
        finally:
            # Abandoned (timed-out) attempts may still be running;
            # don't block the run on them.  Their results are ignored
            # and checkpoints save parent-side, so they can't leak.
            pool.shutdown(wait=False, cancel_futures=True)

    def _wait_timeout(self, inflight: Dict[Future, _Inflight]) -> Optional[float]:
        """Time until the next in-flight attempt hits its deadline."""
        if self.timeout_s is None or not inflight:
            return None
        now = time.perf_counter()
        remaining = min(
            self.timeout_s - (now - info.submitted) for info in inflight.values()
        )
        return max(0.01, remaining)

    def _expire(
        self,
        inflight: Dict[Future, _Inflight],
        finish: Callable[[_Inflight, Any, Optional[str], bool], None],
        resubmit: Callable[[int, int], None],
    ) -> None:
        """Abandon attempts past the per-shard deadline and retry them.

        The deadline clock starts at submission, but only *running*
        attempts are charged: an expired future that never left the
        pool queue (it was waiting behind hung workers) is requeued at
        the same attempt number — queue pressure is the pool's fault,
        not the shard's, and must not burn its retry budget.
        """
        if self.timeout_s is None:
            return
        now = time.perf_counter()
        expired = [
            future
            for future, info in inflight.items()
            if now - info.submitted >= self.timeout_s
        ]
        for future in expired:
            info = inflight.pop(future)
            if future.done():
                # Finished in the race window since wait() returned;
                # the next loop pass would have handled it — do so now.
                try:
                    state = future.result()
                except Exception:
                    finish(info, None, traceback.format_exc(), True)
                else:
                    finish(info, state, None, False)
                continue
            if future.cancel():
                # Never started running; queue pressure, not a timeout.
                resubmit(info.index, info.attempt)
                continue
            obs_runtime.inc("engine.shard_timeouts")
            finish(
                info,
                None,
                f"TimeoutError: shard exceeded {self.timeout_s:g}s deadline "
                f"(attempt {info.attempt + 1}); attempt abandoned",
                True,
            )


def run_shards(
    shards: Sequence[Shard],
    map_fn: MapFn,
    workers: int = 1,
    backend: str = "auto",
    checkpoint: Optional[CheckpointStore] = None,
    progress: Optional[ProgressFn] = None,
    strict: bool = True,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.05,
    faults: Optional[FaultPlan] = None,
):
    """One-shot convenience wrapper around :class:`ShardExecutor`."""
    executor = ShardExecutor(
        workers=workers,
        backend=backend,
        checkpoint=checkpoint,
        progress=progress,
        strict=strict,
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        faults=faults,
    )
    return executor.run(shards, map_fn)
