"""Map/combine/reduce over shards with pluggable backends.

The engine's control loop: a ``map_fn`` turns each :class:`Shard`
into a mergeable partial state, the executor runs shards on one of
three backends, and the partial states fold together **in plan
order** — never completion order — so the merged result is
bit-for-bit identical no matter which backend ran it or how the
scheduler interleaved the shards.

Backends:

* ``serial``  — in-process loop; the reference semantics.
* ``thread``  — :class:`~concurrent.futures.ThreadPoolExecutor`;
  wins when shards are I/O-bound (gzip partition files).
* ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`;
  wins when shards are CPU-bound.  ``map_fn`` and shards must
  pickle (top-level functions, dataclass shards).
* ``auto``    — serial for one worker, processes otherwise.

Per-shard failures are captured, not cascaded: every shard gets a
:class:`ShardResult` (ok/error/timing/provenance), and with
``strict=True`` (default) the run raises :class:`EngineError` *after*
all shards finish, listing every failure.  A
:class:`CheckpointStore` plugs in to skip already-computed shards and
persist fresh ones; a ``progress`` callback observes each completed
shard for live reporting.
"""

from __future__ import annotations

import pickle
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .checkpoint import CheckpointStore
from .shard import Shard

__all__ = [
    "ShardResult",
    "RunReport",
    "EngineError",
    "ShardExecutor",
    "run_shards",
]

BACKENDS = ("auto", "serial", "thread", "process")

MapFn = Callable[[Shard], Any]
ProgressFn = Callable[["ShardResult", int, int], None]


class EngineError(RuntimeError):
    """One or more shards failed in a strict run."""

    def __init__(self, failures: Sequence["ShardResult"]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} shard(s) failed:"]
        for result in self.failures:
            first_line = (result.error or "").strip().splitlines()
            lines.append(f"  {result.shard_id}: {first_line[-1] if first_line else '?'}")
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard: state provenance, timing, error capture."""

    shard_id: str
    ok: bool
    seconds: float = 0.0
    records: Optional[int] = None
    error: Optional[str] = None
    from_checkpoint: bool = False


@dataclass
class RunReport:
    """Aggregate statistics of one engine run."""

    results: List[ShardResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    backend: str = "serial"
    workers: int = 1

    @property
    def total_shards(self) -> int:
        return len(self.results)

    @property
    def failed(self) -> List[ShardResult]:
        return [result for result in self.results if not result.ok]

    @property
    def skipped(self) -> int:
        """Shards satisfied from checkpoints without recomputation."""
        return sum(1 for result in self.results if result.from_checkpoint)

    @property
    def executed(self) -> int:
        return sum(
            1 for result in self.results if result.ok and not result.from_checkpoint
        )

    @property
    def total_records(self) -> Optional[int]:
        counts = [result.records for result in self.results if result.ok]
        if not counts or any(count is None for count in counts):
            return None
        return sum(counts)


def _run_one(map_fn: MapFn, shard: Shard) -> Any:
    return map_fn(shard)


class ShardExecutor:
    """Runs a shard plan through map/combine/reduce."""

    def __init__(
        self,
        workers: int = 1,
        backend: str = "auto",
        checkpoint: Optional[CheckpointStore] = None,
        progress: Optional[ProgressFn] = None,
        strict: bool = True,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.workers = workers
        self.backend = (
            ("serial" if workers == 1 else "process") if backend == "auto" else backend
        )
        self.checkpoint = checkpoint
        self.progress = progress
        self.strict = strict

    # -- public API --------------------------------------------------------

    def run(self, shards: Sequence[Shard], map_fn: MapFn):
        """Execute the plan; returns ``(merged_state, RunReport)``.

        ``map_fn(shard)`` must return a partial state exposing
        ``merge(other)``; states merge in plan order.  With an empty
        plan the merged state is ``None``.
        """
        started = time.perf_counter()
        ids = [shard.shard_id for shard in shards]
        if len(set(ids)) != len(ids):
            raise ValueError("shard plan contains duplicate shard ids")
        if self.backend == "process":
            self._ensure_picklable_map_fn(map_fn)

        states: Dict[int, Any] = {}
        results: Dict[int, ShardResult] = {}
        pending: List[int] = []

        # Reduce phase 0: satisfy shards from the checkpoint store.
        for index, shard in enumerate(shards):
            if self.checkpoint is not None and self.checkpoint.has(shard.shard_id):
                state = self.checkpoint.load(shard.shard_id)
                states[index] = state
                results[index] = ShardResult(
                    shard_id=shard.shard_id,
                    ok=True,
                    records=getattr(state, "record_count", None),
                    from_checkpoint=True,
                )
            else:
                pending.append(index)

        done_count = len(results)
        total = len(shards)
        for index in sorted(results):
            self._notify(results[index], done_count, total)

        def record_outcome(index: int, state: Any, seconds: float,
                           error: Optional[str]) -> None:
            nonlocal done_count
            shard = shards[index]
            if error is None:
                states[index] = state
                if self.checkpoint is not None:
                    self.checkpoint.save(shard.shard_id, state)
            result = ShardResult(
                shard_id=shard.shard_id,
                ok=error is None,
                seconds=seconds,
                records=getattr(state, "record_count", None) if error is None else None,
                error=error,
            )
            results[index] = result
            done_count += 1
            self._notify(result, done_count, total)

        if self.backend == "serial":
            for index in pending:
                state, seconds, error = self._map_serial(map_fn, shards[index])
                record_outcome(index, state, seconds, error)
        else:
            self._map_pooled(map_fn, shards, pending, record_outcome)

        # Reduce: merge partial states in plan order, deterministically.
        merged: Any = None
        for index in range(total):
            state = states.get(index)
            if state is None:
                continue
            if merged is None:
                merged = state
            else:
                merged = merged.merge(state)

        report = RunReport(
            results=[results[index] for index in sorted(results)],
            elapsed_seconds=time.perf_counter() - started,
            backend=self.backend,
            workers=self.workers,
        )
        if self.strict and report.failed:
            raise EngineError(report.failed)
        return merged, report

    # -- internals ---------------------------------------------------------

    def _notify(self, result: ShardResult, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(result, done, total)

    @staticmethod
    def _ensure_picklable_map_fn(map_fn: MapFn) -> None:
        """Fail fast with a clear message instead of N pickle tracebacks.

        The process backend pickles the map function once per shard;
        a lambda, a closure, or a ``functools.partial`` carrying an
        unpicklable callback would otherwise fail every shard with
        the same cryptic ``PicklingError``.  (The ``progress``
        callback itself never crosses the process boundary — it runs
        in the parent — so it may be a lambda.)
        """
        try:
            pickle.dumps(map_fn)
        except Exception as exc:
            raise ValueError(
                f"process backend requires a picklable map function, got "
                f"{map_fn!r}: {exc}. Define the map function (and any "
                f"callback bound into it, e.g. via functools.partial) at "
                f"module top level, or use the thread/serial backend."
            ) from exc

    @staticmethod
    def _map_serial(map_fn: MapFn, shard: Shard):
        shard_started = time.perf_counter()
        try:
            state = map_fn(shard)
            return state, time.perf_counter() - shard_started, None
        except Exception:
            return None, time.perf_counter() - shard_started, traceback.format_exc()

    def _map_pooled(
        self,
        map_fn: MapFn,
        shards: Sequence[Shard],
        pending: Sequence[int],
        record_outcome: Callable[[int, Any, float, Optional[str]], None],
    ) -> None:
        pool_cls = ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        pool: Executor
        with pool_cls(max_workers=self.workers) as pool:
            started_at: Dict[Any, float] = {}
            future_index: Dict[Any, int] = {}
            for index in pending:
                future = pool.submit(_run_one, map_fn, shards[index])
                future_index[future] = index
                started_at[future] = time.perf_counter()
            outstanding = set(future_index)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = future_index[future]
                    seconds = time.perf_counter() - started_at[future]
                    try:
                        state = future.result()
                    except Exception:
                        record_outcome(index, None, seconds, traceback.format_exc())
                    else:
                        record_outcome(index, state, seconds, None)


def run_shards(
    shards: Sequence[Shard],
    map_fn: MapFn,
    workers: int = 1,
    backend: str = "auto",
    checkpoint: Optional[CheckpointStore] = None,
    progress: Optional[ProgressFn] = None,
    strict: bool = True,
):
    """One-shot convenience wrapper around :class:`ShardExecutor`."""
    executor = ShardExecutor(
        workers=workers,
        backend=backend,
        checkpoint=checkpoint,
        progress=progress,
        strict=strict,
    )
    return executor.run(shards, map_fn)
