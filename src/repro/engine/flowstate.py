"""Mergeable §5.1 flow-collection state for the sharded engine.

:class:`FlowCollectionState` is the periodicity pipeline's unit of
map work: each shard folds its records into raw per-(object, client)
timestamp lists, states merge by **timestamp union** (list
concatenation; sorting happens at finalize), and the merged state
finalizes into exactly the filtered flow map that
:func:`repro.periodicity.flows.extract_flows` builds serially.

Two properties make it correct under *any* shard split, not just the
client-hash plan:

* the paper's significance filters (min requests per client flow,
  min clients per object flow) are applied only at :meth:`finalize`,
  never per shard — a client flow split across shards still counts
  its full request total;
* timestamps are kept as unsorted raw lists and sorted once at
  finalize, so the final per-flow array is a function of the
  timestamp *multiset* only, not of shard boundaries or merge order.

:class:`PeriodicityDetectionState` is the second map stage's unit:
per-object detection outcomes, merged by disjoint-dict union.  The
engine shards objects by ``stable_hash64(object_id)``, so no two
shards ever produce the same key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..logs.record import RequestLog
from ..periodicity.flows import ClientObjectFlow, FlowFilter, ObjectFlow
from ..periodicity.results import ObjectPeriodicity

__all__ = ["FlowCollectionState", "PeriodicityDetectionState"]

FlowKey = Tuple[str, str]  # (object_id, client_id)


@dataclass
class _RawFlow:
    """Unsorted per-(object, client) accumulators."""

    timestamps: List[float] = field(default_factory=list)
    upload_count: int = 0
    uncacheable_count: int = 0


class FlowCollectionState:
    """Mergeable partial state of the §5.1 flow extraction."""

    def __init__(self, flow_filter: Optional[FlowFilter] = None) -> None:
        self.flow_filter = flow_filter or FlowFilter()
        self.total_json_requests = 0
        self.record_count = 0
        self._raw: Dict[FlowKey, _RawFlow] = {}

    def ingest(self, record: RequestLog) -> None:
        """Fold one record; mirrors ``extract_flows`` exactly."""
        self.record_count += 1
        if record.is_json:
            self.total_json_requests += 1
        if self.flow_filter.json_only and not record.is_json:
            return
        key = (record.object_id, record.client_id)
        raw = self._raw.get(key)
        if raw is None:
            raw = _RawFlow()
            self._raw[key] = raw
        raw.timestamps.append(record.timestamp)
        if record.is_upload:
            raw.upload_count += 1
        if not record.cacheable:
            raw.uncacheable_count += 1

    def update(self, records: Iterable[RequestLog]) -> "FlowCollectionState":
        for record in records:
            self.ingest(record)
        return self

    def merge(self, other: "FlowCollectionState") -> "FlowCollectionState":
        """Timestamp-union merge; exact under any shard split."""
        if other.flow_filter != self.flow_filter:
            raise ValueError(
                f"cannot merge flow states with different filters: "
                f"{self.flow_filter} != {other.flow_filter}"
            )
        self.total_json_requests += other.total_json_requests
        self.record_count += other.record_count
        for key, theirs in other._raw.items():
            mine = self._raw.get(key)
            if mine is None:
                self._raw[key] = _RawFlow(
                    timestamps=list(theirs.timestamps),
                    upload_count=theirs.upload_count,
                    uncacheable_count=theirs.uncacheable_count,
                )
            else:
                mine.timestamps.extend(theirs.timestamps)
                mine.upload_count += theirs.upload_count
                mine.uncacheable_count += theirs.uncacheable_count
        return self

    def finalize(self) -> Dict[str, ObjectFlow]:
        """Apply the §5.1 filters and build the flow map.

        Produces the same flows (same keys, timestamp arrays, and
        tallies) as ``extract_flows`` over the unsplit record stream;
        objects and client flows come out in sorted-id order, which
        is the canonical ordering for the parallel path.
        """
        criteria = self.flow_filter
        objects: Dict[str, ObjectFlow] = {}
        for object_id, client_id in sorted(self._raw):
            raw = self._raw[(object_id, client_id)]
            if len(raw.timestamps) < criteria.min_requests_per_client_flow:
                continue
            flow = ClientObjectFlow(
                object_id=object_id,
                client_id=client_id,
                timestamps=np.sort(np.asarray(raw.timestamps, dtype=np.float64)),
                upload_count=raw.upload_count,
                uncacheable_count=raw.uncacheable_count,
            )
            objects.setdefault(object_id, ObjectFlow(object_id)).client_flows[
                client_id
            ] = flow
        return {
            object_id: flow
            for object_id, flow in objects.items()
            if flow.client_count >= criteria.min_clients_per_object_flow
        }

    def canonical(self):
        """Order-independent value for merge-property comparisons."""
        return (
            self.flow_filter,
            self.total_json_requests,
            self.record_count,
            {
                key: (
                    tuple(sorted(raw.timestamps)),
                    raw.upload_count,
                    raw.uncacheable_count,
                )
                for key, raw in self._raw.items()
            },
        )


class PeriodicityDetectionState:
    """Mergeable per-object detection outcomes (second map stage)."""

    def __init__(
        self, objects: Optional[Dict[str, ObjectPeriodicity]] = None
    ) -> None:
        self.objects: Dict[str, ObjectPeriodicity] = objects or {}

    @property
    def record_count(self) -> int:
        return len(self.objects)

    def merge(self, other: "PeriodicityDetectionState") -> "PeriodicityDetectionState":
        overlap = self.objects.keys() & other.objects.keys()
        if overlap:
            raise ValueError(
                f"detection shards overlap on objects: {sorted(overlap)[:5]}"
            )
        self.objects.update(other.objects)
        return self
