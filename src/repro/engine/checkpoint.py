"""Per-shard checkpointing: interrupted runs resume, not restart.

A :class:`CheckpointStore` maps shard ids to serialized partial
states on disk.  The executor consults it before running a shard and
persists each freshly computed state, so killing a run mid-way loses
at most the shards in flight; a re-run with the same checkpoint
directory loads the finished shards and computes only the rest.

On-disk format (documented for ``docs/engine.md``): one file per
shard, named ``<sanitized shard id>-<8-hex id hash>.ckpt``, holding a
pickled envelope::

    {"format": "repro-engine-checkpoint", "version": 1,
     "shard_id": <original id>, "payload": <partial state>}

Writes are atomic (temp file + ``os.replace``), so a kill during a
save never leaves a truncated checkpoint behind — loads verify the
envelope and the embedded shard id and treat anything malformed as
"not checkpointed".
"""

from __future__ import annotations

import os
import pickle
import re
from hashlib import blake2b
from pathlib import Path
from typing import Any, List, Union

__all__ = ["CheckpointStore", "CheckpointError"]

_FORMAT = "repro-engine-checkpoint"
_VERSION = 1
_SUFFIX = ".ckpt"
_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


class CheckpointError(RuntimeError):
    """A checkpoint file exists but cannot be used."""


class CheckpointStore:
    """Directory of per-shard partial states, keyed by shard id."""

    def __init__(self, directory: Union[str, Path], create: bool = True) -> None:
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise FileNotFoundError(f"no checkpoint directory at {self.directory}")

    def path_for(self, shard_id: str) -> Path:
        """Filesystem-safe, collision-free file path for a shard id."""
        stem = _UNSAFE.sub("_", shard_id)[:80]
        digest = blake2b(shard_id.encode("utf-8"), digest_size=4).hexdigest()
        return self.directory / f"{stem}-{digest}{_SUFFIX}"

    def has(self, shard_id: str) -> bool:
        return self.path_for(shard_id).is_file()

    def save(self, shard_id: str, payload: Any) -> Path:
        """Atomically persist one shard's partial state."""
        envelope = {
            "format": _FORMAT,
            "version": _VERSION,
            "shard_id": shard_id,
            "payload": payload,
        }
        path = self.path_for(shard_id)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    def load(self, shard_id: str) -> Any:
        """Load one shard's partial state, verifying the envelope."""
        path = self.path_for(shard_id)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            raise
        except Exception as exc:  # truncated/corrupt pickle
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != _FORMAT
            or envelope.get("version") != _VERSION
        ):
            raise CheckpointError(f"{path} is not a v{_VERSION} engine checkpoint")
        if envelope.get("shard_id") != shard_id:
            raise CheckpointError(
                f"{path} holds shard {envelope.get('shard_id')!r}, "
                f"expected {shard_id!r}"
            )
        return envelope["payload"]

    def completed_ids(self) -> List[str]:
        """Shard ids with a readable checkpoint, sorted."""
        ids: List[str] = []
        for path in sorted(self.directory.glob(f"*{_SUFFIX}")):
            try:
                with open(path, "rb") as handle:
                    envelope = pickle.load(handle)
                if (
                    isinstance(envelope, dict)
                    and envelope.get("format") == _FORMAT
                ):
                    ids.append(str(envelope["shard_id"]))
            except Exception:
                continue
        return sorted(ids)

    def clear(self) -> int:
        """Delete every checkpoint file; returns the count removed."""
        removed = 0
        for path in self.directory.glob(f"*{_SUFFIX}"):
            path.unlink()
            removed += 1
        return removed
