"""Per-shard checkpointing: interrupted runs resume, not restart.

A :class:`CheckpointStore` maps shard ids to serialized partial
states on disk.  The executor consults it before running a shard and
persists each freshly computed state, so killing a run mid-way loses
at most the shards in flight; a re-run with the same checkpoint
directory loads the finished shards and computes only the rest.

On-disk format (documented for ``docs/engine.md``): one file per
shard, named ``<sanitized shard id>-<8-hex id hash>.ckpt``, holding a
pickled envelope::

    {"format": "repro-engine-checkpoint", "version": 2,
     "shard_id": <original id>,
     "payload": <pickled partial state, as bytes>,
     "checksum": <blake2b-128 hex digest of the payload bytes>}

The payload is pickled separately so the checksum covers its exact
byte representation; :meth:`load` recomputes and compares it, which
catches bit-rot and partial overwrites that still unpickle cleanly.
Version-1 envelopes (inline unchecked ``payload``) are still read so
existing checkpoint directories survive the upgrade; new saves are
always v2.

Durability: writes go temp-file → ``fsync`` → ``os.replace``, so a
kill (or power loss, up to filesystem guarantees) during a save never
leaves a truncated checkpoint under the real name.  Loads verify the
envelope, the embedded shard id, and the checksum, raising
:class:`CheckpointError` for anything malformed — which the executor
treats as "not checkpointed" and recomputes, never crashes
(:attr:`~repro.engine.executor.RunReport.recomputed_checkpoints`).

``checkpoint.torn`` / ``checkpoint.corrupt`` fault hooks (see
``repro.faults``) simulate exactly those failure modes by damaging
the bytes at save time, after the real state has been returned to the
caller — a torn checkpoint affects the *next* run's resume, never the
run that wrote it.
"""

from __future__ import annotations

import os
import pickle
import re
import time
from hashlib import blake2b
from pathlib import Path
from typing import Any, List, Union

from ..faults import runtime as fault_runtime
from ..obs import runtime as obs_runtime

__all__ = ["CheckpointStore", "CheckpointError"]

_FORMAT = "repro-engine-checkpoint"
_VERSION = 2
_LEGACY_VERSION = 1
_SUFFIX = ".ckpt"
_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _checksum(payload_bytes: bytes) -> str:
    return blake2b(payload_bytes, digest_size=16).hexdigest()


class CheckpointError(RuntimeError):
    """A checkpoint file exists but cannot be used."""


class CheckpointStore:
    """Directory of per-shard partial states, keyed by shard id.

    ``load`` always returns a fresh object: payloads are unpickled
    per call and never cached, so callers (the executor merges states
    in place) may mutate what they get back without corrupting later
    loads.  Subclasses that add caching must preserve this contract —
    the executor defends against the merge base specifically, but
    fresh-per-load is the documented API.
    """

    def __init__(self, directory: Union[str, Path], create: bool = True) -> None:
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise FileNotFoundError(f"no checkpoint directory at {self.directory}")

    def path_for(self, shard_id: str) -> Path:
        """Filesystem-safe, collision-free file path for a shard id."""
        stem = _UNSAFE.sub("_", shard_id)[:80]
        digest = blake2b(shard_id.encode("utf-8"), digest_size=4).hexdigest()
        return self.directory / f"{stem}-{digest}{_SUFFIX}"

    def has(self, shard_id: str) -> bool:
        return self.path_for(shard_id).is_file()

    def save(self, shard_id: str, payload: Any) -> Path:
        """Atomically persist one shard's partial state.

        temp file → ``fsync`` → ``os.replace``: the real name only
        ever points at a complete, flushed file.
        """
        started = time.perf_counter()
        payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        # Checksum the pristine bytes first: the corrupt-fault hook
        # damages the payload *after* checksumming, exactly like
        # post-write bit-rot would.
        checksum = _checksum(payload_bytes)
        payload_bytes = self._fault_damage(shard_id, payload_bytes)
        envelope = {
            "format": _FORMAT,
            "version": _VERSION,
            "shard_id": shard_id,
            "payload": payload_bytes,
            "checksum": checksum,
        }
        data = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        data = self._fault_tear(shard_id, data)
        path = self.path_for(shard_id)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        obs_runtime.inc("checkpoint.saves")
        obs_runtime.observe("checkpoint.save_bytes", len(data))
        obs_runtime.observe(
            "checkpoint.save_seconds", time.perf_counter() - started
        )
        return path

    def load(self, shard_id: str) -> Any:
        """Load one shard's partial state, verifying envelope + checksum."""
        started = time.perf_counter()
        try:
            payload = self._load_verified(shard_id)
        except CheckpointError:
            # The executor recomputes on this path; count it so
            # checkpoint rot is visible before it becomes rework.
            obs_runtime.inc("checkpoint.load_failures")
            raise
        obs_runtime.inc("checkpoint.loads")
        obs_runtime.observe(
            "checkpoint.load_seconds", time.perf_counter() - started
        )
        return payload

    def _load_verified(self, shard_id: str) -> Any:
        path = self.path_for(shard_id)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            raise
        except Exception as exc:  # truncated/corrupt pickle
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != _FORMAT
            or envelope.get("version") not in (_VERSION, _LEGACY_VERSION)
        ):
            raise CheckpointError(f"{path} is not a v{_VERSION} engine checkpoint")
        if envelope.get("shard_id") != shard_id:
            raise CheckpointError(
                f"{path} holds shard {envelope.get('shard_id')!r}, "
                f"expected {shard_id!r}"
            )
        if envelope.get("version") == _LEGACY_VERSION:
            # v1: inline payload, no checksum to verify.
            return envelope["payload"]
        payload_bytes = envelope.get("payload")
        if not isinstance(payload_bytes, bytes):
            raise CheckpointError(f"{path} has a non-bytes v{_VERSION} payload")
        if _checksum(payload_bytes) != envelope.get("checksum"):
            raise CheckpointError(
                f"checksum mismatch in {path}: checkpoint bytes were "
                f"corrupted after write"
            )
        try:
            return pickle.loads(payload_bytes)
        except Exception as exc:
            raise CheckpointError(f"undecodable payload in {path}: {exc}") from exc

    def completed_ids(self) -> List[str]:
        """Shard ids with a readable checkpoint, sorted."""
        ids: List[str] = []
        for path in sorted(self.directory.glob(f"*{_SUFFIX}")):
            try:
                with open(path, "rb") as handle:
                    envelope = pickle.load(handle)
                if (
                    isinstance(envelope, dict)
                    and envelope.get("format") == _FORMAT
                ):
                    ids.append(str(envelope["shard_id"]))
            except Exception:
                continue
        return sorted(ids)

    def clear(self) -> int:
        """Delete every checkpoint file; returns the count removed."""
        removed = 0
        for path in self.directory.glob(f"*{_SUFFIX}"):
            path.unlink()
            removed += 1
        return removed

    # -- fault hooks (no-ops unless a plan is installed) ------------------

    @staticmethod
    def _fault_damage(shard_id: str, payload_bytes: bytes) -> bytes:
        """``checkpoint.corrupt``: flip one payload byte post-checksum.

        The envelope still unpickles and carries the checksum of the
        pristine bytes, so the load path must fail on the checksum
        comparison — this is the fault that distinguishes checksum
        validation from mere unpickle-success.
        """
        if fault_runtime.should_fire("checkpoint.corrupt", shard_id) is None:
            return payload_bytes
        damaged = bytearray(payload_bytes)
        damaged[len(damaged) // 2] ^= 0xFF
        return bytes(damaged)

    @staticmethod
    def _fault_tear(shard_id: str, data: bytes) -> bytes:
        """``checkpoint.torn``: keep only the first half of the file.

        Simulates a crash mid-write of a non-atomic writer (or a
        filesystem that lost the tail); the resulting file fails to
        unpickle and must read as "not checkpointed".
        """
        if fault_runtime.should_fire("checkpoint.torn", shard_id) is None:
            return data
        return data[: len(data) // 2]
