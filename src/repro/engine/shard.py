"""Shard planning: split a dataset into independent units of work.

Two sources, one contract.  A :class:`Shard` has a stable
``shard_id`` (the checkpoint key) and yields its records via
:meth:`Shard.iter_logs`; the executor never cares where the records
come from.

* :func:`plan_directory_shards` walks the partitioned log layout
  written by :mod:`repro.logs.partition` (``<root>/<edge>/<bucket>``)
  and makes one shard per edge × time-bucket group.  This is the
  production path — each shard reads only its own files, so a run
  never materializes the dataset.
* :func:`plan_memory_shards` splits an in-memory record list by a
  stable hash of the client id, so all of one client's traffic lands
  in one shard (per-client analyses stay shard-local) and the plan
  is identical across runs and processes.
* :func:`plan_item_shards` splits an arbitrary item list (object
  flows, client sequences, …) by a stable hash of a caller-supplied
  key, for second map stages that fan out over merged state rather
  than raw records.

Shard identity is deliberately content-addressed-ish: directory
shards are named by their relative file paths, memory shards by
``index-of-count``.  Re-planning the same inputs yields the same ids
in the same order — the engine's determinism and checkpoint-resume
both hang off that.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..logs.io import PathLike, read_logs
from ..logs.partition import iter_partition_files
from ..logs.record import RequestLog
from .sketches import stable_hash64

__all__ = [
    "Shard",
    "FileShard",
    "MemoryShard",
    "ItemShard",
    "plan_directory_shards",
    "plan_memory_shards",
    "plan_item_shards",
]


@dataclass(frozen=True)
class Shard:
    """One independent unit of work with a stable identity."""

    shard_id: str

    def iter_logs(self) -> Iterator[RequestLog]:
        raise NotImplementedError


@dataclass(frozen=True)
class FileShard(Shard):
    """A shard backed by partition files (one edge, ≥1 time buckets)."""

    paths: Tuple[str, ...] = ()
    on_error: str = "raise"

    def iter_logs(self) -> Iterator[RequestLog]:
        for path in self.paths:
            yield from read_logs(path, on_error=self.on_error)


@dataclass(frozen=True)
class MemoryShard(Shard):
    """A shard backed by an in-memory record tuple."""

    records: Tuple[RequestLog, ...] = ()

    def iter_logs(self) -> Iterator[RequestLog]:
        return iter(self.records)


@dataclass(frozen=True)
class ItemShard(Shard):
    """A shard of arbitrary picklable items (no log records).

    Used by second map stages that fan out over merged state — e.g.
    period detection over object flows, or ngram training/evaluation
    over client sequences — where the unit of work is not a
    :class:`~repro.logs.record.RequestLog`.
    """

    items: Tuple[Any, ...] = ()

    def iter_logs(self) -> Iterator[RequestLog]:
        raise TypeError("ItemShard carries items, not log records")


def plan_directory_shards(
    root: PathLike,
    edge_id: Optional[str] = None,
    files_per_shard: int = 1,
    on_error: str = "raise",
) -> List[FileShard]:
    """Plan shards over a partitioned log directory.

    Files are grouped per edge in bucket order, ``files_per_shard``
    consecutive buckets per shard (1 = one shard per hour file).  The
    shard id is the relative path of the group's first file plus the
    group size, so the same directory always plans the same ids.
    """
    if files_per_shard <= 0:
        raise ValueError("files_per_shard must be positive")
    root = Path(root)
    per_edge: dict = {}
    for path in iter_partition_files(root, edge_id):
        per_edge.setdefault(path.parent.name, []).append(path)

    shards: List[FileShard] = []
    for edge in sorted(per_edge):
        paths = per_edge[edge]
        for start in range(0, len(paths), files_per_shard):
            group = paths[start:start + files_per_shard]
            first_rel = group[0].relative_to(root).as_posix()
            shard_id = (
                first_rel
                if len(group) == 1
                else f"{first_rel}+{len(group) - 1}"
            )
            shards.append(
                FileShard(
                    shard_id=shard_id,
                    paths=tuple(str(path) for path in group),
                    on_error=on_error,
                )
            )
    return shards


def plan_memory_shards(
    logs: Sequence[RequestLog],
    num_shards: int,
) -> List[MemoryShard]:
    """Split an in-memory dataset into ``num_shards`` by client hash.

    The split is a stable partition: records keep their stream order
    within a shard, and a client's records all land in the shard
    ``stable_hash64(client_id) % num_shards`` — identical in every
    process regardless of PYTHONHASHSEED.  Empty shards are kept so
    the plan shape depends only on ``num_shards``.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    buckets: List[List[RequestLog]] = [[] for _ in range(num_shards)]
    for record in logs:
        buckets[stable_hash64(record.client_id) % num_shards].append(record)
    return [
        MemoryShard(
            shard_id=f"mem-{index:04d}-of-{num_shards:04d}",
            records=tuple(bucket),
        )
        for index, bucket in enumerate(buckets)
    ]


def plan_item_shards(
    items: Sequence[Any],
    num_shards: int,
    key: Callable[[Any], str],
    prefix: str = "items",
) -> List[ItemShard]:
    """Split arbitrary items into ``num_shards`` by a stable key hash.

    Same contract as :func:`plan_memory_shards`, generalized: items
    keep their order within a shard, an item lands in shard
    ``stable_hash64(key(item)) % num_shards`` in every process, and
    empty shards are kept so the plan shape depends only on
    ``num_shards``.  ``prefix`` namespaces the shard ids so two item
    stages of one run never collide in a checkpoint store.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    buckets: List[List[Any]] = [[] for _ in range(num_shards)]
    for item in items:
        buckets[stable_hash64(key(item)) % num_shards].append(item)
    return [
        ItemShard(
            shard_id=f"{prefix}-{index:04d}-of-{num_shards:04d}",
            items=tuple(bucket),
        )
        for index, bucket in enumerate(buckets)
    ]
