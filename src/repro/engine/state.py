"""The engine's unit of work: a mergeable §4 characterization state.

:class:`CharacterizationState` is what the map phase produces per
shard and what the reduce phase folds together.  It composes the
exact accumulators the serial pipeline uses (dataset summary,
traffic-source/request-type breakdowns, cacheability, per-domain
counts, size distributions, app usage) — all of which merge
losslessly because they are counters and sets — with the bounded-
memory sketches from :mod:`repro.engine.sketches` (HyperLogLog unique
clients, reservoir size sample, count–min + top-K popularity).

The invariant the engine tests enforce: for any split of a dataset
into shards, ``merge``-ing the per-shard states and finalizing with
:meth:`CharacterizationState.to_report` yields counter metrics
identical to :func:`repro.core.pipeline.run_characterization` over
the unsplit records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..analysis.cacheability import (
    CacheabilityHeatmap,
    CacheabilityStats,
    DomainCacheability,
)
from ..analysis.characterize import RequestTypeBreakdown, TrafficSourceBreakdown
from ..analysis.sizes import SizeDistribution
from ..logs.record import RequestLog
from ..logs.summary import DatasetSummary
from ..useragent.appid import AppIdentity, AppUsageReport, identify_app
from ..useragent.classify import UserAgentClassifier
from .sketches import CountMinSketch, HyperLogLog, ReservoirSample, TopK

__all__ = ["CharacterizationState"]

_SIZE_CONTENT_TYPES: Tuple[str, ...] = ("application/json", "text/html")


@dataclass
class CharacterizationState:
    """Mergeable partial state of the §4 characterization.

    One instance per shard: :meth:`ingest` folds records in exactly
    the way :func:`repro.core.pipeline.run_characterization` does
    serially, :meth:`merge` combines shard states losslessly (the
    underlying accumulators are counters and sets), and
    :meth:`to_report` finalizes a
    :class:`~repro.core.pipeline.CharacterizationReport` equal to the
    serial one.  The sketches ride along for bounded-memory variants
    of the same questions.
    """

    summary: DatasetSummary = field(default_factory=DatasetSummary)
    traffic_source: TrafficSourceBreakdown = field(
        default_factory=TrafficSourceBreakdown
    )
    request_type: RequestTypeBreakdown = field(default_factory=RequestTypeBreakdown)
    cacheability: CacheabilityStats = field(default_factory=CacheabilityStats)
    domains: Dict[str, DomainCacheability] = field(default_factory=dict)
    sizes: Dict[str, SizeDistribution] = field(
        default_factory=lambda: {
            ct: SizeDistribution(ct) for ct in _SIZE_CONTENT_TYPES
        }
    )
    apps: AppUsageReport = field(default_factory=AppUsageReport)
    client_sketch: HyperLogLog = field(default_factory=HyperLogLog)
    json_size_sample: ReservoirSample = field(default_factory=ReservoirSample)
    url_counts: CountMinSketch = field(default_factory=CountMinSketch)
    top_urls: TopK = field(default_factory=TopK)
    top_domains: TopK = field(default_factory=TopK)

    def __post_init__(self) -> None:
        self._classifier: Optional[UserAgentClassifier] = None
        self._app_memo: Dict[str, AppIdentity] = {}

    # Transient per-shard caches must not travel through pickle (the
    # classifier memo can be large, and it rebuilds for free).
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_classifier", None)
        state.pop("_app_memo", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._classifier = None
        self._app_memo = {}

    @property
    def record_count(self) -> int:
        return self.summary.total_logs

    def unique_clients_estimate(self) -> float:
        """Sketch-based unique-client estimate (vs exact ``summary``)."""
        return self.client_sketch.estimate()

    def ingest(self, record: RequestLog) -> None:
        """Fold one record; mirrors the serial §4 pipeline exactly."""
        self.summary.add(record)
        self.client_sketch.add(record.client_id)
        content_type = record.content_type
        if content_type in self.sizes:
            self.sizes[content_type].add(record.response_bytes)
        if not record.is_json:
            return
        if self._classifier is None:
            self._classifier = UserAgentClassifier()
        self.traffic_source.add(record, self._classifier)
        self.request_type.add(record)
        self.cacheability.add(record)
        domain = self.domains.get(record.domain)
        if domain is None:
            domain = DomainCacheability(record.domain)
            self.domains[record.domain] = domain
        domain.total_requests += 1
        if record.cacheable:
            domain.cacheable_requests += 1
        ua_key = record.user_agent or ""
        identity = self._app_memo.get(ua_key)
        if identity is None:
            identity = identify_app(record.user_agent)
            self._app_memo[ua_key] = identity
        self.apps.add(identity, record)
        self.json_size_sample.add(float(record.response_bytes))
        self.url_counts.add(record.object_id)
        self.top_urls.add(record.object_id)
        self.top_domains.add(record.domain)

    def update(self, records: Iterable[RequestLog]) -> "CharacterizationState":
        for record in records:
            self.ingest(record)
        return self

    def merge(self, other: "CharacterizationState") -> "CharacterizationState":
        """Combine two partial states; exact for all §4 counters."""
        self.summary.merge(other.summary)
        self.traffic_source.merge(other.traffic_source)
        self.request_type.merge(other.request_type)
        self.cacheability.merge(other.cacheability)
        for name, theirs in other.domains.items():
            mine = self.domains.get(name)
            if mine is None:
                self.domains[name] = DomainCacheability(
                    theirs.domain,
                    theirs.category,
                    theirs.cacheable_requests,
                    theirs.total_requests,
                )
            else:
                mine.cacheable_requests += theirs.cacheable_requests
                mine.total_requests += theirs.total_requests
        for content_type, theirs in other.sizes.items():
            mine = self.sizes.get(content_type)
            if mine is None:
                self.sizes[content_type] = theirs
            else:
                mine.merge(theirs)
        self.apps.merge(other.apps)
        self.client_sketch.merge(other.client_sketch)
        self.json_size_sample.merge(other.json_size_sample)
        self.url_counts.merge(other.url_counts)
        self.top_urls.merge(other.top_urls)
        self.top_domains.merge(other.top_domains)
        return self

    def build_heatmap(
        self, domain_categories: Optional[Mapping[str, str]] = None
    ) -> CacheabilityHeatmap:
        """Figure 4 heatmap from the merged per-domain counts."""
        heatmap = CacheabilityHeatmap()
        for name, stats in self.domains.items():
            category = stats.category
            if category is None and domain_categories:
                category = domain_categories.get(name)
            heatmap.add_domain(
                DomainCacheability(
                    stats.domain,
                    category,
                    stats.cacheable_requests,
                    stats.total_requests,
                )
            )
        return heatmap

    def to_report(self, domain_categories: Optional[Mapping[str, str]] = None):
        """Finalize into the serial pipeline's report type."""
        from ..core.pipeline import CharacterizationReport

        return CharacterizationReport(
            summary=self.summary,
            traffic_source=self.traffic_source,
            request_type=self.request_type,
            cacheability=self.cacheability,
            heatmap=self.build_heatmap(domain_categories),
            sizes=self.sizes,
            apps=self.apps,
        )
