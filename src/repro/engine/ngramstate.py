"""Mergeable §5.2 ngram states for the sharded engine.

Three mergeable units cover the Table 3 pipeline:

* :class:`NgramSequenceState` — the first map stage.  Each shard
  buffers per-client ``(timestamp, token)`` entries for both the raw
  and the clustered URL variants in one pass; states merge by list
  concatenation and :meth:`sequences` sorts once at the end, so the
  finalized per-client sequences equal
  :func:`repro.ngram.evaluate.build_client_sequences` over the
  unsplit stream under *any* shard split.
* :class:`repro.ngram.model.BackoffNgramModel` — the train stage's
  state.  Its count tables and vocabulary merge losslessly
  (:meth:`~repro.ngram.model.BackoffNgramModel.merge`), so training
  shard-local models over disjoint client sets and merging them
  equals training one model over all sequences.
* :class:`NgramEvalState` — the evaluation stage.  Top-K hit and
  total counters per ``(n, k)`` cell sum exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..logs.record import RequestLog
from ..ngram.clustering import UrlClusterer

__all__ = ["NgramSequenceState", "NgramEvalState"]

_VARIANTS = (False, True)  # raw, clustered


class NgramSequenceState:
    """Mergeable per-client (timestamp, token) buffers, both variants."""

    def __init__(self, json_only: bool = True, include_domain: bool = True) -> None:
        self.json_only = json_only
        self.include_domain = include_domain
        self.record_count = 0
        #: clustered? → client id → [(timestamp, token), …] (unsorted).
        self._entries: Dict[bool, Dict[str, List[Tuple[float, str]]]] = {
            variant: {} for variant in _VARIANTS
        }
        self._clusterer: Optional[UrlClusterer] = None

    # The clusterer memo is a per-shard cache; rebuild after pickling.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_clusterer", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._clusterer = None

    def ingest(self, record: RequestLog) -> None:
        """Fold one record; mirrors ``build_client_sequences`` exactly."""
        self.record_count += 1
        if self.json_only and not record.is_json:
            return
        if self._clusterer is None:
            self._clusterer = UrlClusterer()
        clustered_url = self._clusterer(record.url)
        for variant, url in ((False, record.url), (True, clustered_url)):
            token = f"{record.domain}{url}" if self.include_domain else url
            self._entries[variant].setdefault(record.client_id, []).append(
                (record.timestamp, token)
            )

    def update(self, records: Iterable[RequestLog]) -> "NgramSequenceState":
        for record in records:
            self.ingest(record)
        return self

    def merge(self, other: "NgramSequenceState") -> "NgramSequenceState":
        if (other.json_only, other.include_domain) != (
            self.json_only,
            self.include_domain,
        ):
            raise ValueError("cannot merge ngram states with different settings")
        self.record_count += other.record_count
        for variant in _VARIANTS:
            mine = self._entries[variant]
            for client_id, entries in other._entries[variant].items():
                buffered = mine.get(client_id)
                if buffered is None:
                    mine[client_id] = list(entries)
                else:
                    buffered.extend(entries)
        return self

    def sequences(self, clustered: bool = False) -> Dict[str, List[str]]:
        """Finalized per-client token sequences for one variant.

        Clients come out in sorted-id order (the canonical parallel
        ordering); each sequence is time-ordered exactly as
        ``build_client_sequences`` orders it (sorted by
        ``(timestamp, token)``).
        """
        buffered = self._entries[clustered]
        return {
            client_id: [token for _, token in sorted(buffered[client_id])]
            for client_id in sorted(buffered)
        }

    def canonical(self):
        """Order-independent value for merge-property comparisons."""
        return (
            self.json_only,
            self.include_domain,
            self.record_count,
            {
                variant: {
                    client: tuple(sorted(entries))
                    for client, entries in per_client.items()
                }
                for variant, per_client in self._entries.items()
            },
        )


class NgramEvalState:
    """Mergeable top-K accuracy counters, one per (n, k) cell."""

    def __init__(self) -> None:
        self.correct: Dict[Tuple[int, int], int] = {}
        self.total: Dict[Tuple[int, int], int] = {}

    def record(self, n: int, k: int, correct: int, total: int) -> None:
        key = (n, k)
        self.correct[key] = self.correct.get(key, 0) + correct
        self.total[key] = self.total.get(key, 0) + total

    def merge(self, other: "NgramEvalState") -> "NgramEvalState":
        for key, count in other.correct.items():
            self.correct[key] = self.correct.get(key, 0) + count
        for key, count in other.total.items():
            self.total[key] = self.total.get(key, 0) + count
        return self

    def canonical(self):
        return (dict(self.correct), dict(self.total))
