"""Sharded parallel analysis engine.

Splits a dataset into shards (:mod:`repro.engine.shard`), maps each
shard to a mergeable partial state (:mod:`repro.engine.sketches`),
runs the map phase on a serial/thread/process backend and folds the
states back together in deterministic plan order
(:mod:`repro.engine.executor`), checkpointing partials so interrupted
runs resume (:mod:`repro.engine.checkpoint`).

See ``docs/engine.md`` for the flow diagram and error bounds.
"""

from .checkpoint import CheckpointError, CheckpointStore
from .executor import (
    BACKENDS,
    EngineError,
    RunReport,
    ShardExecutor,
    ShardResult,
    run_shards,
)
from .flowstate import FlowCollectionState, PeriodicityDetectionState
from .ngramstate import NgramEvalState, NgramSequenceState
from .shard import (
    FileShard,
    ItemShard,
    MemoryShard,
    Shard,
    plan_directory_shards,
    plan_item_shards,
    plan_memory_shards,
)
from .sketches import (
    CountMinSketch,
    HyperLogLog,
    ReservoirSample,
    TopK,
    UniqueCounter,
    stable_hash64,
)
from .state import CharacterizationState

__all__ = [
    "BACKENDS",
    "CharacterizationState",
    "CheckpointError",
    "CheckpointStore",
    "CountMinSketch",
    "EngineError",
    "FileShard",
    "FlowCollectionState",
    "HyperLogLog",
    "ItemShard",
    "MemoryShard",
    "NgramEvalState",
    "NgramSequenceState",
    "PeriodicityDetectionState",
    "ReservoirSample",
    "RunReport",
    "Shard",
    "ShardExecutor",
    "ShardResult",
    "TopK",
    "UniqueCounter",
    "plan_directory_shards",
    "plan_item_shards",
    "plan_memory_shards",
    "run_shards",
    "stable_hash64",
]
