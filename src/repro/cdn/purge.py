"""Cache purge (invalidation) across an edge fleet.

CDN customers invalidate objects when content changes — breaking
news replaces a cached story list, a config rollout must take effect
now.  Purges do not reach every edge instantly; this module models
the fan-out with a per-edge propagation delay, the behaviour real
purge pipelines exhibit.

A purge is recorded centrally with its issue time; each edge applies
it the first time that edge handles traffic *after* the purge has
propagated to it.  Until then the edge may still serve the stale
object — exactly the consistency window operators reason about.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cache import LruTtlCache
from .edge import EdgeServer

__all__ = ["PurgeRequest", "PurgeController"]


@dataclass(frozen=True)
class PurgeRequest:
    """One customer purge."""

    #: Glob pattern over object ids: exact id, ``domain/*``, etc.
    pattern: str
    issued_at: float
    purge_id: int = 0

    def matches(self, object_id: str) -> bool:
        return fnmatch.fnmatchcase(object_id, self.pattern)


class PurgeController:
    """Coordinates purge propagation over a set of edges.

    Parameters
    ----------
    edges:
        The edge fleet; each edge's cache is purged independently.
    rng:
        Source for per-edge propagation jitter.
    propagation_median_s:
        Median time for a purge to reach an edge (real pipelines run
        seconds to tens of seconds).
    """

    def __init__(
        self,
        edges: Sequence[EdgeServer],
        rng: random.Random,
        propagation_median_s: float = 5.0,
        propagation_spread: float = 0.8,
    ) -> None:
        if propagation_median_s < 0:
            raise ValueError("propagation_median_s must be non-negative")
        self._edges = list(edges)
        self._rng = rng
        self._median = propagation_median_s
        self._spread = propagation_spread
        self._counter = 0
        #: (request, edge_id → arrival time, edge_id set already applied)
        self._pending: List[Tuple[PurgeRequest, Dict[str, float], set]] = []
        self.objects_purged = 0
        self.purges_issued = 0

    # -- issuing ------------------------------------------------------------

    def purge(self, pattern: str, now: float) -> PurgeRequest:
        """Issue a purge for all objects matching ``pattern``."""
        self._counter += 1
        request = PurgeRequest(pattern=pattern, issued_at=now,
                               purge_id=self._counter)
        arrivals = {
            edge.edge_id: now + self._propagation_delay()
            for edge in self._edges
        }
        self._pending.append((request, arrivals, set()))
        self.purges_issued += 1
        return request

    def _propagation_delay(self) -> float:
        if self._median == 0:
            return 0.0
        import math

        return self._rng.lognormvariate(math.log(self._median), self._spread)

    # -- application -----------------------------------------------------------

    def advance(self, now: float) -> int:
        """Apply every purge that has propagated by ``now``.

        Call from the replay loop (or a timer); returns the number of
        cache entries dropped in this step.
        """
        dropped = 0
        finished: List[int] = []
        for index, (request, arrivals, applied) in enumerate(self._pending):
            for edge in self._edges:
                if edge.edge_id in applied:
                    continue
                if now >= arrivals[edge.edge_id]:
                    dropped += self._apply(edge.cache, request)
                    applied.add(edge.edge_id)
            if len(applied) == len(self._edges):
                finished.append(index)
        for index in reversed(finished):
            self._pending.pop(index)
        self.objects_purged += dropped
        return dropped

    def _apply(self, cache: LruTtlCache, request: PurgeRequest) -> int:
        victims = [
            key for key in list(cache.keys()) if request.matches(key)
        ]
        for key in victims:
            cache.invalidate(key)
        return len(victims)

    # -- introspection ------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def consistency_window(self, request: PurgeRequest) -> Optional[float]:
        """Worst-case staleness window of a pending purge (seconds).

        None once the purge has fully propagated (no longer pending).
        """
        for pending, arrivals, _ in self._pending:
            if pending.purge_id == request.purge_id:
                return max(arrivals.values()) - pending.issued_at
        return None
