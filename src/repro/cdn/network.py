"""Latency models for the edge simulator.

Latency enters the paper twice: uncacheable/missed requests must be
"tunneled through the CDN to origin servers" (§4) — paying the
edge→origin round trip — and the proposed optimizations (prefetching,
M2M deprioritization) are motivated by the latency a human perceives.

The model is a lognormal per hop: last-mile (client↔edge) and
middle-mile (edge↔origin), plus a transfer term proportional to the
response size.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["LatencyModel", "LatencySample"]


@dataclass(frozen=True)
class LatencySample:
    """Decomposed latency of one served request (seconds)."""

    last_mile_s: float
    middle_mile_s: float
    transfer_s: float

    @property
    def total_s(self) -> float:
        return self.last_mile_s + self.middle_mile_s + self.transfer_s


class LatencyModel:
    """Samples request latencies.

    Parameters
    ----------
    rng:
        Dedicated random substream.
    last_mile_median_s:
        Median client↔edge RTT (CDNs place edges close: ~20 ms).
    middle_mile_median_s:
        Median edge↔origin RTT (~80 ms; origins are far).
    bytes_per_second:
        Effective throughput for the transfer term.
    """

    def __init__(
        self,
        rng: random.Random,
        last_mile_median_s: float = 0.020,
        middle_mile_median_s: float = 0.080,
        sigma: float = 0.45,
        bytes_per_second: float = 4e6,
    ) -> None:
        self._rng = rng
        self._last_mu = math.log(last_mile_median_s)
        self._middle_mu = math.log(middle_mile_median_s)
        self._sigma = sigma
        self._bytes_per_second = bytes_per_second

    #: A regional parent cache sits much closer than the origin.
    PARENT_DISTANCE_FACTOR = 0.35

    def sample(
        self,
        response_bytes: int,
        origin_fetch: bool,
        parent_fetch: bool = False,
    ) -> LatencySample:
        """Latency for one response.

        ``origin_fetch`` is True for misses and uncacheable objects
        (the edge must consult the customer origin);
        ``parent_fetch`` is True when a regional parent cache served
        the miss instead — a shorter middle-mile hop.
        """
        last = self._rng.lognormvariate(self._last_mu, self._sigma)
        if origin_fetch:
            middle = self._rng.lognormvariate(self._middle_mu, self._sigma)
        elif parent_fetch:
            middle = (
                self._rng.lognormvariate(self._middle_mu, self._sigma)
                * self.PARENT_DISTANCE_FACTOR
            )
        else:
            middle = 0.0
        transfer = response_bytes / self._bytes_per_second
        return LatencySample(last, middle, transfer)
