"""Ngram-driven prefetching at the edge (§5.2's proposed optimization).

"A JSON request prediction system can be used by CDNs to perform
prefetching for cacheable requests."  This module implements exactly
that: after each served request, the client's recent request history
is fed to a trained :class:`repro.ngram.model.BackoffNgramModel`; the
top-K predicted next objects that are cacheable and not already fresh
in cache are fetched from origin ahead of time.

The trade-off the experiment (benchmarks/test_ext_prefetch.py)
quantifies: hit-ratio gain vs extra origin fetches (wasted prefetches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ngram.model import BackoffNgramModel
from ..ngram.timing import TimedNgramModel
from ..synth.domains import DomainProfile, Endpoint
from ..synth.sessions import RequestEvent
from .edge import EdgeServer

__all__ = [
    "ObjectIndex",
    "PrefetchStats",
    "NgramPrefetcher",
    "TimedNgramPrefetcher",
    "build_object_index",
]


def build_object_index(
    domains: Sequence[DomainProfile],
) -> Dict[str, Tuple[DomainProfile, Endpoint]]:
    """Map object id → (domain, endpoint) for prefetch resolution.

    Only GET-able JSON endpoints are indexed: POSTs cannot be
    prefetched (the paper's §5.2 restricts prediction features to
    URLs precisely because GETs need no body).
    """
    index: Dict[str, Tuple[DomainProfile, Endpoint]] = {}
    for domain in domains:
        for endpoint in domain.json_endpoints:
            if endpoint.method.is_download():
                index[f"{domain.name}{endpoint.url}"] = (domain, endpoint)
    return index


ObjectIndex = Dict[str, Tuple[DomainProfile, Endpoint]]


@dataclass
class PrefetchStats:
    """Prefetcher effectiveness counters."""

    predictions: int = 0
    issued: int = 0
    skipped_uncacheable: int = 0
    skipped_fresh: int = 0
    skipped_unresolvable: int = 0

    @property
    def issue_rate(self) -> float:
        return self.issued / self.predictions if self.predictions else 0.0


class NgramPrefetcher:
    """Per-client history tracking + top-K prefetch issuing.

    Parameters
    ----------
    model:
        A trained backoff ngram model over raw object ids.
    object_index:
        Resolution map from predicted object ids to endpoints.
    k:
        Prefetch the top-K predicted objects per request.
    history_length:
        Client history tokens fed to the model (the paper's N).
    """

    def __init__(
        self,
        model: BackoffNgramModel,
        object_index: ObjectIndex,
        k: int = 3,
        history_length: int = 1,
        max_clients: int = 100_000,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.model = model
        self.object_index = object_index
        self.k = k
        self.history_length = history_length
        self.stats = PrefetchStats()
        self._histories: Dict[str, List[str]] = {}
        self._max_clients = max_clients

    def on_request(self, edge: EdgeServer, event: RequestEvent) -> int:
        """Observe one served request; issue prefetches; return count."""
        client_id = event.client.client_key
        object_id = f"{event.domain.name}{event.endpoint.url}"
        if len(self._histories) >= self._max_clients:
            self._histories.clear()
        history = self._histories.setdefault(client_id, [])
        history.append(object_id)
        del history[: -self.history_length]

        issued = 0
        for predicted in self.model.predict(history, k=self.k):
            self.stats.predictions += 1
            resolved = self.object_index.get(predicted)
            if resolved is None:
                self.stats.skipped_unresolvable += 1
                continue
            domain, endpoint = resolved
            if not endpoint.cacheable:
                self.stats.skipped_uncacheable += 1
                continue
            if edge.prefetch(
                domain.name, endpoint, event.timestamp, domain.policy.ttl_seconds
            ):
                self.stats.issued += 1
                issued += 1
            else:
                self.stats.skipped_fresh += 1
        return issued


class TimedNgramPrefetcher:
    """Timing-aware prefetching (§5.2 future work, implemented).

    Uses :class:`repro.ngram.timing.TimedNgramModel` to skip
    prefetches that cannot pay off:

    * the predicted request is expected *sooner* than an origin fetch
      completes (``min_lead_s``) — the prefetch loses the race;
    * the predicted request is expected *after* the object's TTL —
      the prefetched copy would be stale on arrival.

    Compared to :class:`NgramPrefetcher` this trades a little hit
    ratio for substantially fewer wasted origin fetches (benchmarked
    in ``benchmarks/test_ext_prefetch.py``).
    """

    def __init__(
        self,
        model: TimedNgramModel,
        object_index: ObjectIndex,
        k: int = 3,
        history_length: int = 1,
        min_lead_s: float = 0.1,
        max_clients: int = 100_000,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.model = model
        self.object_index = object_index
        self.k = k
        self.history_length = history_length
        self.min_lead_s = min_lead_s
        self.stats = PrefetchStats()
        #: Predictions skipped because their timing made them useless.
        self.skipped_timing = 0
        self._histories: Dict[str, List[str]] = {}
        self._max_clients = max_clients

    def on_request(self, edge: EdgeServer, event: RequestEvent) -> int:
        client_id = event.client.client_key
        object_id = f"{event.domain.name}{event.endpoint.url}"
        if len(self._histories) >= self._max_clients:
            self._histories.clear()
        history = self._histories.setdefault(client_id, [])
        history.append(object_id)
        del history[: -self.history_length]

        issued = 0
        for prediction in self.model.predict(history, k=self.k):
            self.stats.predictions += 1
            resolved = self.object_index.get(prediction.token)
            if resolved is None:
                self.stats.skipped_unresolvable += 1
                continue
            domain, endpoint = resolved
            if not endpoint.cacheable:
                self.stats.skipped_uncacheable += 1
                continue
            gap = prediction.expected_gap_s
            ttl = domain.policy.ttl_seconds
            if gap is not None and (gap < self.min_lead_s or gap > ttl):
                self.skipped_timing += 1
                continue
            if edge.prefetch(domain.name, endpoint, event.timestamp, ttl):
                self.stats.issued += 1
                issued += 1
            else:
                self.stats.skipped_fresh += 1
        return issued
