"""The edge server: where requests become log lines.

An :class:`EdgeServer` owns one cache, applies the customer's
cacheability decision carried on each endpoint, consults the origin
fleet on misses and no-store objects, and emits a
:class:`repro.logs.record.RequestLog` per request — the exact record
type the analysis pipeline consumes.  This is the join point between
the synthetic-traffic substrate and the measurement code: the
characterization modules cannot tell (and must not care) whether a
log came from here or from a real CDN.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..logs.record import CacheStatus, RequestLog
from ..synth.domains import Endpoint
from ..synth.sessions import RequestEvent
from ..synth.sizes import SizeModel
from .cache import LruTtlCache
from .network import LatencyModel, LatencySample
from .origin import OriginFleet

__all__ = ["EdgeServer", "ServedRequest"]


@dataclass(frozen=True)
class ServedRequest:
    """The edge's full account of one request."""

    log: RequestLog
    latency: LatencySample
    origin_fetch: bool


class EdgeServer:
    """One CDN edge machine.

    Parameters
    ----------
    edge_id:
        Identifier recorded in emitted logs.
    cache:
        The edge's object cache.
    origins:
        Shared origin fleet (for offload accounting).
    latency_model, size_model:
        Samplers for latency and response sizes.
    rng:
        Substream for per-request noise (status codes, dynamic sizes).
    """

    def __init__(
        self,
        edge_id: str,
        cache: LruTtlCache,
        origins: OriginFleet,
        latency_model: LatencyModel,
        size_model: SizeModel,
        rng: random.Random,
        parent: Optional[LruTtlCache] = None,
    ) -> None:
        self.edge_id = edge_id
        self.cache = cache
        self.origins = origins
        self.latency_model = latency_model
        self.size_model = size_model
        self._rng = rng
        #: Optional shared parent (regional-tier) cache: edge misses
        #: consult it before the origin, the hierarchy real CDNs use
        #: to absorb the long tail ("propagate from the edge server
        #: through the CDN to origin content servers", §4).
        self.parent = parent
        self.parent_hits = 0
        #: Stable sizes for cacheable objects (an object in cache has
        #: one size); dynamic objects are re-sampled per response.
        self._object_sizes: Dict[str, int] = {}
        self.requests_served = 0

    # -- request path ----------------------------------------------------------

    def serve(self, event: RequestEvent) -> ServedRequest:
        """Process one request event and emit its log record."""
        endpoint = event.endpoint
        object_id = f"{event.domain.name}{endpoint.url}"
        now = event.timestamp
        self.requests_served += 1
        parent_fetch = False

        if endpoint.cacheable:
            entry = self.cache.get(object_id, now)
            if entry is not None:
                size = entry.size_bytes
                cache_status = CacheStatus.HIT
                origin_fetch = False
            else:
                size = self._stable_size(object_id, endpoint)
                cache_status = CacheStatus.MISS
                ttl_value = event.domain.policy.ttl_seconds
                if self.parent is not None and self.parent.get(object_id, now):
                    # Served from the regional tier: still a miss at
                    # the edge, but the origin is spared.
                    origin_fetch = False
                    parent_fetch = True
                    self.parent_hits += 1
                else:
                    origin_fetch = True
                    self.origins.fetch(event.domain.name, size)
                    if self.parent is not None:
                        self.parent.put(object_id, size, now, ttl=ttl_value)
                self.cache.put(object_id, size, now, ttl=ttl_value)
            ttl: Optional[float] = event.domain.policy.ttl_seconds
        else:
            size = self.size_model.sample(endpoint)
            cache_status = CacheStatus.NO_STORE
            origin_fetch = True
            ttl = None
            self.origins.fetch(event.domain.name, size)

        latency = self.latency_model.sample(size, origin_fetch, parent_fetch)
        log = RequestLog(
            timestamp=now,
            client_ip_hash=event.client.ip_hash,
            user_agent=event.client.user_agent,
            method=endpoint.method,
            domain=event.domain.name,
            url=endpoint.url,
            mime_type=endpoint.mime_type,
            status=self._status_code(endpoint),
            response_bytes=size,
            cache_status=cache_status,
            request_bytes=self.size_model.sample_request_body(endpoint),
            ttl_seconds=ttl,
            edge_id=self.edge_id,
        )
        return ServedRequest(log=log, latency=latency, origin_fetch=origin_fetch)

    # -- prefetch support ---------------------------------------------------------

    def prefetch(self, domain_name: str, endpoint: Endpoint, now: float,
                 ttl: Optional[float]) -> bool:
        """Warm the cache with an object ahead of a predicted request.

        Returns True when the object was actually fetched (it was not
        already fresh in cache).  Uncacheable objects cannot be
        prefetched — §5.2 proposes prefetching precisely for the
        cacheable-but-missed population.
        """
        if not endpoint.cacheable:
            return False
        object_id = f"{domain_name}{endpoint.url}"
        if self.cache.contains_fresh(object_id, now):
            return False
        size = self._stable_size(object_id, endpoint)
        self.origins.fetch(domain_name, size)
        self.cache.put(object_id, size, now, ttl=ttl)
        return True

    # -- internals ------------------------------------------------------------------

    def _stable_size(self, object_id: str, endpoint: Endpoint) -> int:
        size = self._object_sizes.get(object_id)
        if size is None:
            size = self.size_model.sample(endpoint)
            self._object_sizes[object_id] = size
        return size

    def _status_code(self, endpoint: Endpoint) -> int:
        roll = self._rng.random()
        if roll < 0.012:
            return 404
        if roll < 0.016:
            return 500
        if endpoint.method.is_upload() and roll < 0.35:
            return 204
        return 200
