"""Edge cache: LRU eviction with per-object TTL expiry.

A deliberately faithful miniature of a CDN edge cache: bounded
capacity in bytes, least-recently-used eviction, per-object freshness
lifetimes from customer policy, and hit/miss/expired accounting.
``OrderedDict`` gives O(1) LRU operations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["CacheEntry", "CacheStats", "LruTtlCache"]


@dataclass
class CacheEntry:
    """One cached object."""

    key: str
    size_bytes: int
    stored_at: float
    expires_at: Optional[float]

    def fresh(self, now: float) -> bool:
        return self.expires_at is None or now < self.expires_at


@dataclass
class CacheStats:
    """Running cache counters."""

    hits: int = 0
    misses: int = 0
    expired: int = 0
    evictions: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.expired

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LruTtlCache:
    """Byte-bounded LRU cache with TTL expiry.

    Parameters
    ----------
    capacity_bytes:
        Total budget; single objects larger than this are never
        stored.
    default_ttl:
        Freshness lifetime applied when a put carries none.
    """

    def __init__(
        self, capacity_bytes: int, default_ttl: Optional[float] = None
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.default_ttl = default_ttl
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._used_bytes = 0

    # -- core operations ---------------------------------------------------

    def get(self, key: str, now: float) -> Optional[CacheEntry]:
        """Look up an object; counts a hit, miss, or expiry."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if not entry.fresh(now):
            self._remove(key)
            self.stats.expired += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def contains_fresh(self, key: str, now: float) -> bool:
        """Non-counting freshness probe (used by the prefetcher)."""
        entry = self._entries.get(key)
        return entry is not None and entry.fresh(now)

    def put(
        self,
        key: str,
        size_bytes: int,
        now: float,
        ttl: Optional[float] = None,
    ) -> bool:
        """Insert or refresh an object; returns False if too large."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if size_bytes > self.capacity_bytes:
            return False
        if key in self._entries:
            self._remove(key)
        effective_ttl = ttl if ttl is not None else self.default_ttl
        expires_at = None if effective_ttl is None else now + effective_ttl
        self._evict_for(size_bytes)
        self._entries[key] = CacheEntry(key, size_bytes, now, expires_at)
        self._used_bytes += size_bytes
        self.stats.stores += 1
        return True

    def invalidate(self, key: str) -> bool:
        """Drop an object; returns True when it was present."""
        if key in self._entries:
            self._remove(key)
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()
        self._used_bytes = 0

    # -- internals -----------------------------------------------------------

    def _remove(self, key: str) -> None:
        entry = self._entries.pop(key)
        self._used_bytes -= entry.size_bytes

    def _evict_for(self, incoming_bytes: int) -> None:
        while self._used_bytes + incoming_bytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._used_bytes -= evicted.size_bytes
            self.stats.evictions += 1

    # -- introspection --------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[str]:
        return iter(self._entries.keys())
