"""Customer origin servers.

Uncacheable and missed requests propagate "from the edge server
through the CDN to origin content servers" (§4).  The origin model
tracks the offload the CDN is (or is not) providing each customer:
every origin fetch is a request the customer's own infrastructure had
to absorb.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["OriginFleet", "OriginStats"]


@dataclass
class OriginStats:
    """Per-domain origin load counters."""

    requests: int = 0
    bytes_served: int = 0


class OriginFleet:
    """Aggregate view of all customer origins behind the CDN."""

    def __init__(self) -> None:
        self._per_domain: Dict[str, OriginStats] = {}
        self.total_requests = 0
        self.total_bytes = 0

    def fetch(self, domain: str, response_bytes: int) -> None:
        """Record one origin fetch for a domain."""
        stats = self._per_domain.setdefault(domain, OriginStats())
        stats.requests += 1
        stats.bytes_served += response_bytes
        self.total_requests += 1
        self.total_bytes += response_bytes

    def domain_stats(self, domain: str) -> OriginStats:
        return self._per_domain.get(domain, OriginStats())

    def offload_ratio(self, total_cdn_requests: int) -> float:
        """Fraction of CDN requests the origins did NOT see."""
        if total_cdn_requests <= 0:
            return 0.0
        return 1.0 - self.total_requests / total_cdn_requests

    def top_domains(self, count: int = 10) -> Dict[str, int]:
        counter = Counter(
            {domain: stats.requests for domain, stats in self._per_domain.items()}
        )
        return dict(counter.most_common(count))
