"""Delivery metrics for edge-simulator experiments.

The optimization experiments (prefetching, M2M deprioritization)
are judged on cache hit ratio and latency percentiles; this module
accumulates both in a single pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..logs.record import CacheStatus
from .edge import ServedRequest

__all__ = ["DeliveryMetrics", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class DeliveryMetrics:
    """Accumulates hit/latency statistics over served requests."""

    hits: int = 0
    misses: int = 0
    no_store: int = 0
    origin_fetches: int = 0
    total_latency_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    bytes_served: int = 0

    def record(self, served: ServedRequest) -> None:
        status = served.log.cache_status
        if status is CacheStatus.HIT:
            self.hits += 1
        elif status is CacheStatus.MISS:
            self.misses += 1
        else:
            self.no_store += 1
        if served.origin_fetch:
            self.origin_fetches += 1
        total = served.latency.total_s
        self.total_latency_s += total
        self.latencies_s.append(total)
        self.bytes_served += served.log.response_bytes

    # -- derived -----------------------------------------------------------

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.no_store

    @property
    def hit_ratio(self) -> float:
        """Hits over cacheable traffic (hits + misses)."""
        cacheable = self.hits + self.misses
        return self.hits / cacheable if cacheable else 0.0

    @property
    def overall_hit_ratio(self) -> float:
        """Hits over all traffic, uncacheable included."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.requests if self.requests else 0.0

    def latency_percentile_s(self, q: float) -> float:
        return percentile(self.latencies_s, q)

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "requests": float(self.requests),
            "hit_ratio": self.hit_ratio,
            "overall_hit_ratio": self.overall_hit_ratio,
            "origin_fetches": float(self.origin_fetches),
            "mean_latency_ms": self.mean_latency_s * 1e3,
        }
        if self.latencies_s:
            out["p50_latency_ms"] = self.latency_percentile_s(50) * 1e3
            out["p95_latency_ms"] = self.latency_percentile_s(95) * 1e3
        return out
