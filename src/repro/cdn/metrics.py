"""Delivery metrics for edge-simulator experiments.

The optimization experiments (prefetching, M2M deprioritization)
are judged on cache hit ratio and latency percentiles; this module
accumulates both in a single pass.

Latency percentiles come from a bounded-memory
:class:`~repro.obs.sketch.QuantileSketch`, not a list of raw samples:
the previous implementation appended every request's latency forever,
which at CDN replay scale (millions of requests) was an OOM waiting
to happen.  The sketch holds a few hundred integer buckets regardless
of volume, estimates percentiles within ~4.4% relative error, and —
being the engine-style mergeable accumulator — lets two replays'
metrics combine exactly (:meth:`DeliveryMetrics.merge`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..core import stats
from ..logs.record import CacheStatus
from ..obs.sketch import QuantileSketch
from .edge import ServedRequest

__all__ = ["DeliveryMetrics", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """The repo-wide canonical percentile; see :func:`repro.core.stats.percentile`."""
    return stats.percentile(values, q)


@dataclass
class DeliveryMetrics:
    """Accumulates hit/latency statistics over served requests."""

    hits: int = 0
    misses: int = 0
    no_store: int = 0
    origin_fetches: int = 0
    total_latency_s: float = 0.0
    latency_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    bytes_served: int = 0

    def record(self, served: ServedRequest) -> None:
        status = served.log.cache_status
        if status is CacheStatus.HIT:
            self.hits += 1
        elif status is CacheStatus.MISS:
            self.misses += 1
        else:
            self.no_store += 1
        if served.origin_fetch:
            self.origin_fetches += 1
        total = served.latency.total_s
        self.total_latency_s += total
        self.latency_sketch.observe(total)
        self.bytes_served += served.log.response_bytes

    def merge(self, other: "DeliveryMetrics") -> "DeliveryMetrics":
        """Fold another replay's metrics in (engine merge contract)."""
        self.hits += other.hits
        self.misses += other.misses
        self.no_store += other.no_store
        self.origin_fetches += other.origin_fetches
        self.total_latency_s += other.total_latency_s
        self.latency_sketch.merge(other.latency_sketch)
        self.bytes_served += other.bytes_served
        return self

    # -- derived -----------------------------------------------------------

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.no_store

    @property
    def hit_ratio(self) -> float:
        """Hits over cacheable traffic (hits + misses)."""
        cacheable = self.hits + self.misses
        return self.hits / cacheable if cacheable else 0.0

    @property
    def overall_hit_ratio(self) -> float:
        """Hits over all traffic, uncacheable included."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.requests if self.requests else 0.0

    def latency_percentile_s(self, q: float) -> float:
        """Estimated latency percentile, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self.latency_sketch.count:
            raise ValueError("percentile of empty sequence")
        return self.latency_sketch.quantile(q / 100.0)

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "requests": float(self.requests),
            "hit_ratio": self.hit_ratio,
            "overall_hit_ratio": self.overall_hit_ratio,
            "origin_fetches": float(self.origin_fetches),
            "mean_latency_ms": self.mean_latency_s * 1e3,
        }
        if self.latency_sketch.count:
            out["p50_latency_ms"] = self.latency_percentile_s(50) * 1e3
            out["p95_latency_ms"] = self.latency_percentile_s(95) * 1e3
        return out
