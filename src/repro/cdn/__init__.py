"""CDN edge-delivery substrate.

LRU+TTL caching, origin fleet accounting, latency models, the edge
server that turns request events into log records, delivery metrics,
and the two optimizations the paper proposes: ngram prefetching
(§5.2) and machine-traffic deprioritization (§5.1).
"""

from .cache import CacheEntry, CacheStats, LruTtlCache
from .edge import EdgeServer, ServedRequest
from .metrics import DeliveryMetrics, percentile
from .network import LatencyModel, LatencySample
from .origin import OriginFleet, OriginStats
from .prefetch import (
    NgramPrefetcher,
    ObjectIndex,
    PrefetchStats,
    TimedNgramPrefetcher,
    build_object_index,
)
from .purge import PurgeController, PurgeRequest
from .replay import ReplayOutcome, ReplayPolicy, WhatIfReplayer
from .scheduler import (
    HUMAN,
    MACHINE,
    ClassMetrics,
    CompletedJob,
    Job,
    PriorityServer,
    simulate,
)

__all__ = [
    "LruTtlCache",
    "CacheEntry",
    "CacheStats",
    "EdgeServer",
    "ServedRequest",
    "LatencyModel",
    "LatencySample",
    "OriginFleet",
    "OriginStats",
    "DeliveryMetrics",
    "percentile",
    "NgramPrefetcher",
    "TimedNgramPrefetcher",
    "ObjectIndex",
    "PrefetchStats",
    "build_object_index",
    "PurgeController",
    "PurgeRequest",
    "ReplayPolicy",
    "ReplayOutcome",
    "WhatIfReplayer",
    "Job",
    "CompletedJob",
    "PriorityServer",
    "ClassMetrics",
    "simulate",
    "HUMAN",
    "MACHINE",
]
