"""Priority scheduling of edge work (§5.1's proposed optimization).

"One possible optimization is for CDN operators to deprioritize
machine-to-machine traffic since a human is not waiting for the
response."  This module provides a small discrete-event simulation of
an edge resource (an origin-connection pool, a worker thread pool)
under two policies:

* FIFO — all requests share one queue;
* two-class priority — human-triggered requests always dequeue before
  machine-to-machine requests (non-preemptive).

The deprioritization experiment replays a mixed workload through both
and compares human-perceived queueing delay.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Job", "CompletedJob", "PriorityServer", "ClassMetrics", "simulate"]

HUMAN = 0
MACHINE = 1


@dataclass(frozen=True)
class Job:
    """One unit of edge work."""

    arrival_s: float
    service_s: float
    priority: int  # HUMAN (0) or MACHINE (1); lower dequeues first
    job_id: int = 0

    def __post_init__(self) -> None:
        if self.service_s < 0:
            raise ValueError("service_s must be non-negative")
        if self.priority not in (HUMAN, MACHINE):
            raise ValueError("priority must be HUMAN (0) or MACHINE (1)")


@dataclass(frozen=True)
class CompletedJob:
    """A job with its simulated timings."""

    job: Job
    start_s: float
    finish_s: float

    @property
    def wait_s(self) -> float:
        """Queueing delay before service began."""
        return self.start_s - self.job.arrival_s

    @property
    def sojourn_s(self) -> float:
        """Total time in system."""
        return self.finish_s - self.job.arrival_s


class PriorityServer:
    """Non-preemptive multi-server queue with class priorities.

    ``priority_classes=False`` degrades to plain FIFO, which is the
    baseline the experiment compares against.
    """

    def __init__(self, num_servers: int = 1, priority_classes: bool = True) -> None:
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        self.num_servers = num_servers
        self.priority_classes = priority_classes

    def run(self, jobs: Iterable[Job]) -> List[CompletedJob]:
        """Simulate all jobs; returns completions in finish order."""
        ordered = sorted(jobs, key=lambda job: job.arrival_s)
        counter = itertools.count()
        #: Min-heap of server-free times.
        servers = [0.0] * self.num_servers
        heapq.heapify(servers)
        #: Waiting queue as a heap keyed by (priority, arrival, tiebreak).
        waiting: List[Tuple] = []
        completed: List[CompletedJob] = []
        index = 0
        total = len(ordered)

        def admit_until(time_s: float) -> None:
            nonlocal index
            while index < total and ordered[index].arrival_s <= time_s:
                job = ordered[index]
                priority = job.priority if self.priority_classes else 0
                heapq.heappush(
                    waiting, (priority, job.arrival_s, next(counter), job)
                )
                index += 1

        while index < total or waiting:
            next_free = servers[0]
            if waiting:
                # The earliest-freed server picks at max(free, now);
                # everything that arrived by then competes on priority.
                dispatch_time = max(next_free, waiting[0][1])
            else:
                # Queue empty: jump to the next arrival.
                dispatch_time = max(next_free, ordered[index].arrival_s)
            admit_until(dispatch_time)
            _, _, _, job = heapq.heappop(waiting)
            free_at = heapq.heappop(servers)
            start = max(free_at, job.arrival_s)
            finish = start + job.service_s
            heapq.heappush(servers, finish)
            completed.append(CompletedJob(job=job, start_s=start, finish_s=finish))
        return completed


@dataclass
class ClassMetrics:
    """Wait-time statistics for one priority class."""

    waits_s: List[float] = field(default_factory=list)

    def add(self, completion: CompletedJob) -> None:
        self.waits_s.append(completion.wait_s)

    @property
    def count(self) -> int:
        return len(self.waits_s)

    @property
    def mean_wait_s(self) -> float:
        return float(np.mean(self.waits_s)) if self.waits_s else 0.0

    def percentile_wait_s(self, q: float) -> float:
        if not self.waits_s:
            return 0.0
        return float(np.percentile(self.waits_s, q))


def simulate(
    jobs: Sequence[Job], num_servers: int = 1, priority_classes: bool = True
) -> Dict[int, ClassMetrics]:
    """Run the queue and fold completions into per-class metrics."""
    server = PriorityServer(num_servers, priority_classes)
    metrics: Dict[int, ClassMetrics] = {HUMAN: ClassMetrics(), MACHINE: ClassMetrics()}
    for completion in server.run(jobs):
        metrics[completion.job.priority].add(completion)
    return metrics
