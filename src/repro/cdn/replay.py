"""What-if replay of log traces through the edge simulator.

Turns any :class:`repro.logs.record.RequestLog` trace — synthetic or
real — back into a request stream and re-serves it under *different*
delivery policies, answering operator questions the paper's data
alone cannot: "what would my hit ratio be with a 10-minute TTL?",
"how much does a bigger edge cache buy for JSON?".

Reconstruction uses only what logs carry:

* object identity and response size come straight from each record;
* an object is treated as cacheable iff the trace ever shows it with
  a cache disposition other than ``no-store`` (customer policy is
  per-object and visible in the logs);
* TTL is the experiment's knob (per scenario), since origin-assigned
  lifetimes are not in the log schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..logs.record import CacheStatus, RequestLog
from .cache import LruTtlCache

__all__ = ["ReplayPolicy", "ReplayOutcome", "WhatIfReplayer"]


@dataclass(frozen=True)
class ReplayPolicy:
    """One delivery configuration to evaluate."""

    name: str
    ttl_seconds: float
    cache_capacity_bytes: int = 1 << 30
    #: Share requests across this many edge caches (client-affine),
    #: mirroring how POP size dilutes per-cache locality.
    num_edges: int = 1

    def __post_init__(self) -> None:
        if self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if self.num_edges < 1:
            raise ValueError("num_edges must be >= 1")


@dataclass
class ReplayOutcome:
    """Results of replaying one trace under one policy."""

    policy: ReplayPolicy
    requests: int = 0
    hits: int = 0
    misses: int = 0
    no_store: int = 0
    origin_bytes: int = 0

    @property
    def hit_ratio(self) -> float:
        cacheable = self.hits + self.misses
        return self.hits / cacheable if cacheable else 0.0

    @property
    def origin_requests(self) -> int:
        return self.misses + self.no_store

    @property
    def origin_fraction(self) -> float:
        return self.origin_requests / self.requests if self.requests else 0.0


class WhatIfReplayer:
    """Replays a log trace under alternative delivery policies."""

    def __init__(self, logs: Sequence[RequestLog], json_only: bool = True) -> None:
        self._trace: List[RequestLog] = [
            record
            for record in logs
            if not json_only or record.is_json
        ]
        self._trace.sort(key=lambda record: record.timestamp)
        #: Objects the customer marked cacheable somewhere in the trace.
        self._cacheable: Dict[str, bool] = {}
        for record in self._trace:
            object_id = record.object_id
            self._cacheable[object_id] = (
                self._cacheable.get(object_id, False) or record.cacheable
            )

    @property
    def trace_length(self) -> int:
        return len(self._trace)

    def cacheable_share(self) -> float:
        """Share of trace requests to cacheable objects."""
        if not self._trace:
            return 0.0
        cacheable = sum(
            1 for record in self._trace if self._cacheable[record.object_id]
        )
        return cacheable / len(self._trace)

    def replay(self, policy: ReplayPolicy) -> ReplayOutcome:
        """Serve the whole trace under one policy."""
        caches = [
            LruTtlCache(policy.cache_capacity_bytes)
            for _ in range(policy.num_edges)
        ]
        outcome = ReplayOutcome(policy=policy)
        for record in self._trace:
            outcome.requests += 1
            if not self._cacheable[record.object_id]:
                outcome.no_store += 1
                outcome.origin_bytes += record.response_bytes
                continue
            cache = caches[
                int(record.client_ip_hash[:8], 16) % len(caches)
            ]
            if cache.get(record.object_id, record.timestamp) is not None:
                outcome.hits += 1
            else:
                outcome.misses += 1
                outcome.origin_bytes += record.response_bytes
                cache.put(
                    record.object_id,
                    record.response_bytes,
                    record.timestamp,
                    ttl=policy.ttl_seconds,
                )
        return outcome

    def sweep(self, policies: Iterable[ReplayPolicy]) -> List[ReplayOutcome]:
        """Replay under several policies (the what-if comparison)."""
        return [self.replay(policy) for policy in policies]

    def ttl_sweep(
        self, ttls: Sequence[float], **policy_kwargs
    ) -> List[ReplayOutcome]:
        """Convenience TTL sweep with otherwise-fixed policy."""
        return self.sweep(
            ReplayPolicy(name=f"ttl={ttl:g}s", ttl_seconds=ttl, **policy_kwargs)
            for ttl in ttls
        )
