#!/usr/bin/env python3
"""A breaking-news flash crowd, cache purges, and phase analysis.

Operational scenario on top of the library's CDN substrate:

1. a news domain takes a sudden flash crowd on its story manifest;
2. the newsroom updates the story and issues a **purge** mid-event —
   watch the origin load spike as edges refill;
3. afterwards, the §5.1 phase tools ask whether the app's background
   refresh timers are phase-aligned (a self-inflicted thundering
   herd) or staggered.

Run:
    python examples/flash_crowd_purge.py
"""

import random

from repro.cdn import (
    EdgeServer,
    LatencyModel,
    LruTtlCache,
    OriginFleet,
    PurgeController,
)
from repro.periodicity.flows import FlowFilter, extract_flows
from repro.periodicity.phase import object_phase_profile
from repro.synth import ClientPopulation, DomainPopulation, substream
from repro.synth.sessions import RequestEvent
from repro.synth.sizes import SizeModel


def main() -> None:
    domains = DomainPopulation(num_domains=12, seed=21)
    news = next(d for d in domains if d.category.value == "News/Media")
    story = news.manifests[0]
    clients = ClientPopulation(num_clients=400, seed=21).clients
    rng = random.Random(21)

    origins = OriginFleet()
    size_model = SizeModel(substream(21, "sizes"))
    edges = [
        EdgeServer(
            f"edge-{i}",
            LruTtlCache(1 << 24),
            origins,
            LatencyModel(substream(21, "lat", str(i))),
            size_model,
            substream(21, "edge", str(i)),
        )
        for i in range(4)
    ]
    purger = PurgeController(edges, substream(21, "purge"),
                             propagation_median_s=4.0)

    # -- flash crowd: 3000 requests over 10 minutes, purge at t=300 -----
    print(f"Flash crowd on {news.name}{story.url} "
          f"(TTL {news.policy.ttl_seconds:.0f}s)\n")
    events = []
    for _ in range(3_000):
        client = rng.choice(clients)
        events.append(RequestEvent(rng.uniform(0, 600.0), client, news, story))
    events.sort()

    purged = False
    window = 60.0
    bucket_hits = bucket_total = 0
    bucket_index = 0
    origin_before = 0
    print(f"{'minute':>7s} {'requests':>9s} {'hit ratio':>10s} {'origin':>7s}")
    for event in events:
        if not purged and event.timestamp >= 300.0:
            request = purger.purge(f"{news.name}{story.url}", now=300.0)
            print(f"  -- story updated; purge issued (worst-case staleness "
                  f"{purger.consistency_window(request):.1f}s) --")
            purged = True
        purger.advance(event.timestamp)
        while event.timestamp >= (bucket_index + 1) * window:
            if bucket_total:
                print(f"{bucket_index:>6d}m {bucket_total:>9,} "
                      f"{bucket_hits / bucket_total:>10.2f} "
                      f"{origins.total_requests - origin_before:>7,}")
            origin_before = origins.total_requests
            bucket_hits = bucket_total = 0
            bucket_index += 1
        edge = edges[int(event.client.ip_hash[:8], 16) % len(edges)]
        served = edge.serve(event)
        bucket_total += 1
        bucket_hits += served.log.cache_status.value == "hit"
    if bucket_total:
        print(f"{bucket_index:>6d}m {bucket_total:>9,} "
              f"{bucket_hits / bucket_total:>10.2f} "
              f"{origins.total_requests - origin_before:>7,}")
    print(f"\ntotal origin fetches: {origins.total_requests} "
          f"(of {len(events):,} requests)")

    # -- phase analysis of the app's background refresh -----------------
    print("\nPhase analysis of the app's 60s background refresh:")
    poll = news.polls[0] if news.polls else news.configs[0]
    for label, phases in (
        ("synchronized rollout", [12.0] * 16),
        ("staggered (random phase)", [rng.uniform(0, 60) for _ in range(16)]),
    ):
        logs = []
        for index, phase in enumerate(phases):
            client = clients[index]
            for tick in range(30):
                timestamp = phase + tick * 60.0 + rng.gauss(0, 0.2)
                logs.append(
                    RequestEvent(timestamp, client, news, poll)
                )
        from repro.logs.record import RequestLog

        records = [
            RequestLog(
                timestamp=event.timestamp,
                client_ip_hash=event.client.ip_hash,
                user_agent=event.client.user_agent,
                method=poll.method,
                domain=news.name,
                url=poll.url,
                mime_type="application/json",
                response_bytes=900,
                cache_status="no-store",
            )
            for event in sorted(logs)
        ]
        flow = next(
            iter(
                extract_flows(
                    records,
                    FlowFilter(min_requests_per_client_flow=5,
                               min_clients_per_object_flow=1),
                ).values()
            )
        )
        profile = object_phase_profile(flow, 60.0)
        verdict = "THUNDERING HERD" if profile.synchronized else "healthy"
        print(f"  {label:28s} coherence {profile.coherence:.2f}  "
              f"burst x{profile.burst_factor:.1f}  -> {verdict}")


if __name__ == "__main__":
    main()
