#!/usr/bin/env python3
"""The Table 1 pattern: a mobile news app's JSON manifest traffic, and
why it is predictable.

The paper's Table 1 shows a news application that 1) fetches a JSON
manifest of stories and 2) then fetches the referenced articles.  This
example generates sessions from exactly that model, prints one session
the way Table 1 presents it, trains the §5.2 backoff ngram model on
many such sessions, and shows live next-request prediction.

Run:
    python examples/news_app_sessions.py
"""

import random

from repro.ngram import BackoffNgramModel, cluster_url
from repro.synth import ClientPopulation, DomainPopulation
from repro.synth.sessions import SessionGenerator


def main() -> None:
    domains = DomainPopulation(num_domains=20, seed=3)
    news = next(d for d in domains if d.category.value == "News/Media")
    client = ClientPopulation(num_clients=10, seed=3).clients[0]
    generator = SessionGenerator(random.Random(11))

    # -- 1. One session, Table 1 style ---------------------------------
    session = generator.app_session(client, news, start_time=0.0)
    print(f"One app session against {news.name} "
          f"(policy: {news.policy.kind.value}-cacheable):\n")
    for event in session:
        method = event.endpoint.method.value
        print(f"  t={event.timestamp:7.1f}s  {method:4s} {event.endpoint.url}"
              f"    [{event.endpoint.kind.value}]")

    # -- 2. Train the ngram model on many sessions ----------------------
    print("\nTraining a backoff ngram model on 2,000 sessions ...")
    model = BackoffNgramModel(order=1)
    for i in range(2_000):
        flow = generator.app_session(client, news, start_time=0.0)
        model.add_sequence([event.endpoint.url for event in flow])
    print(f"  vocabulary: {model.vocabulary_size} objects, "
          f"{model.context_count()} contexts")

    # -- 3. Predict the next request live -------------------------------
    print("\nNext-request prediction (top 3) after each step of a fresh "
          "session:")
    fresh = generator.app_session(client, news, start_time=0.0)
    urls = [event.endpoint.url for event in fresh]
    hits = 0
    for position in range(1, len(urls)):
        predictions = model.predict([urls[position - 1]], k=3)
        actual = urls[position]
        hit = actual in predictions
        hits += hit
        marker = "HIT " if hit else "miss"
        print(f"  after {urls[position - 1]:40s} -> predicted "
              f"{predictions[0]:40s} [{marker}]")
    print(f"\ntop-3 accuracy on this session: {hits}/{len(urls) - 1}")

    # -- 4. Clustered view: the app's screen graph ----------------------
    print("\nClustered (Klotski-style) URL view of the same session:")
    for url in dict.fromkeys(cluster_url(u) for u in urls):
        print("  ", url)


if __name__ == "__main__":
    main()
