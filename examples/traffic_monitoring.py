#!/usr/bin/env python3
"""A CDN operator's monitoring console built from the library.

Combines three capabilities the paper motivates:

1. **Windowed characterization** — the §4 metrics as a live time
   series (diurnal request volume, JSON share, cacheability drift);
2. **Period-deviation alerts** (§5.1) — a client polling an object
   far off its intended timer;
3. **Sequence anomaly alerts** (§5.2) — a client requesting objects
   no organic app flow would (scanner behaviour).

Run:
    python examples/traffic_monitoring.py
"""

import numpy as np

from repro.anomaly import PeriodicAnomalyMonitor, SequenceAnomalyDetector
from repro.analysis import WindowedCharacterizer
from repro.logs.record import HttpMethod, RequestLog
from repro.synth import WorkloadBuilder, long_term_config


def main() -> None:
    print("Generating a 24h workload (25k JSON requests) ...\n")
    dataset = WorkloadBuilder(
        long_term_config(25_000, seed=17, num_domains=60)
    ).build()
    logs = dataset.logs

    # -- 1. hourly traffic time series -----------------------------------
    characterizer = WindowedCharacterizer(window_s=3 * 3600.0,
                                          track_devices=False)
    print(f"{'window':>8s} {'requests':>9s} {'json':>7s} {'no-store':>9s} "
          f"{'clients':>8s}")
    for window in characterizer.windows(logs):
        hour = max(0, int((window.window_end - logs[0].timestamp) // 3600) - 3)
        bar = "#" * (window.total_requests // 400)
        print(f"{hour:>6d}h {window.total_requests:>9,} "
              f"{window.json_share * 100:>6.1f}% "
              f"{window.uncacheable_share * 100:>8.1f}% "
              f"{window.client_count:>8,}  {bar}")

    # -- 2. learn intended periods, then catch a rogue device -------------
    print("\nLearning intended object periods from the day's traffic ...")
    monitor = PeriodicAnomalyMonitor(tolerance=0.35)
    baselines = monitor.learn(record for record in logs if record.is_json)
    print(f"  {len(baselines)} objects have stable intended periods:")
    for baseline in sorted(baselines.values(), key=lambda b: b.period_s)[:6]:
        print(f"    {baseline.object_id:55s} every {baseline.period_s:7.1f}s")

    target = min(baselines.values(), key=lambda b: b.period_s)
    rogue_period = max(1.0, target.period_s / 10)
    print(f"\nInjecting a rogue client polling {target.object_id}")
    print(f"  every {rogue_period:.1f}s instead of {target.period_s:.1f}s ...")
    domain, _, url = target.object_id.partition("/")
    rng = np.random.default_rng(5)
    rogue = [
        RequestLog(
            timestamp=float(i * rogue_period + rng.normal(0, 0.1)),
            client_ip_hash="deadbeef00000000",
            user_agent="okhttp/3.12.1",
            method=HttpMethod.GET,
            domain=domain,
            url="/" + url,
            mime_type="application/json",
            response_bytes=500,
            cache_status="no-store",
        )
        for i in range(1, 60)
    ]
    for alert in monitor.scan(rogue):
        print("  ALERT:", alert.describe())

    # -- 3. sequence anomaly: a scanner walks the URL space ---------------
    print("\nTraining the sequence anomaly detector on organic flows ...")
    detector = SequenceAnomalyDetector(quantile=0.01).fit(
        record for record in logs if record.is_json
    )
    victim = dataset.domains.domains[0].name
    probe = [
        f"{victim}/.env",
        f"{victim}/wp-admin/setup.php",
        f"{victim}/api/v1/../../etc/passwd",
        f"{victim}/backup/db.sql",
    ]
    rate = detector.flow_anomaly_rate(probe)
    print(f"  scanner flow anomaly rate: {rate * 100:.0f}% "
          f"(alert threshold quantile: {detector.quantile * 100:.1f}%)")
    for alert in detector.scan_flow("203.0.113.9", probe)[:3]:
        print("  ALERT:", alert.describe())


if __name__ == "__main__":
    main()
