#!/usr/bin/env python3
"""Detecting machine-to-machine traffic from timing alone (§5.1).

Builds a fleet of IoT devices that poll a telemetry endpoint on fixed
firmware timers (with realistic jitter and missed polls), mixes in
human-triggered traffic to the same objects, and runs the paper's
permutation-thresholded period detector.  Also demonstrates the §5.1
anomaly-detection idea: an object suddenly polled at the *wrong*
period is flagged.

Run:
    python examples/iot_telemetry_detection.py
"""

import random

import numpy as np

from repro.periodicity import FlowFilter, PeriodDetector, analyze_logs
from repro.logs.record import HttpMethod, RequestLog


def device_logs(device_id, url, period, start, count, rng,
                method=HttpMethod.POST):
    """One device's timer-driven request logs (jitter + 3% drops)."""
    logs = []
    tick = start + rng.uniform(0, period)
    for _ in range(count):
        if rng.random() > 0.03:
            logs.append(
                RequestLog(
                    timestamp=tick + rng.gauss(0, 0.25),
                    client_ip_hash=f"device-{device_id:04d}",
                    user_agent="ESP8266HTTPClient/1.2.0",
                    method=method,
                    domain="sensors.example.com",
                    url=url,
                    mime_type="application/json",
                    response_bytes=180,
                    cache_status="no-store",
                    request_bytes=240 if method is HttpMethod.POST else 0,
                )
            )
        tick += period
    return logs


def human_logs(user_id, url, rng, count=12):
    """A human occasionally checking the same dashboard endpoint."""
    times = sorted(rng.uniform(0, 6 * 3600) for _ in range(count))
    return [
        RequestLog(
            timestamp=t,
            client_ip_hash=f"human-{user_id:04d}",
            user_agent="Mozilla/5.0 (iPhone; CPU iPhone OS 13_1 like Mac OS X) "
                       "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/13.0 "
                       "Mobile/15E148 Safari/604.1",
            method=HttpMethod.GET,
            domain="sensors.example.com",
            url=url,
            mime_type="application/json",
            response_bytes=2_000,
            cache_status="no-store",
        )
        for t in times
    ]


def main() -> None:
    rng = random.Random(42)
    logs = []

    # Fleet A: 15 sensors reporting every 60s.
    for device in range(15):
        logs += device_logs(device, "/ingest/readings", 60.0, 0.0, 120, rng)
    # Fleet B: 12 thermostats polling config every 10 minutes.
    for device in range(100, 112):
        logs += device_logs(device, "/config/thermostat", 600.0, 0.0, 40,
                            rng, method=HttpMethod.GET)
    # Humans: 14 people sporadically viewing the live dashboard feed,
    # which three wall-mounted displays also poll every 30s.
    for user in range(14):
        logs += human_logs(user, "/dashboard/live", rng)
    for device in range(200, 203):
        logs += device_logs(device, "/dashboard/live", 30.0, 0.0, 300,
                            rng, method=HttpMethod.GET)

    logs.sort(key=lambda record: record.timestamp)
    print(f"Analyzing {len(logs):,} requests from "
          f"{len({r.client_id for r in logs})} clients ...\n")

    report = analyze_logs(logs)
    print(f"{'object':28s} {'period':>8s} {'periodic clients':>18s}")
    for object_id, outcome in sorted(report.objects.items()):
        period = (
            f"{outcome.object_period.period_s:.1f}s"
            if outcome.object_period
            else "none"
        )
        share = f"{outcome.periodic_client_share * 100:.0f}%"
        print(f"{object_id.split('.com', 1)[1]:28s} {period:>8s} {share:>18s}")

    print(f"\nperiodic share of all requests: "
          f"{report.periodic_request_fraction * 100:.1f}%")
    print(f"periodic traffic that is upload: "
          f"{report.periodic_upload_fraction * 100:.0f}%")

    # -- anomaly detection: a device goes rogue -------------------------
    print("\nAnomaly check: a compromised sensor starts polling every 5s")
    detector = PeriodDetector()
    rogue = device_logs(999, "/ingest/readings", 5.0, 0.0, 600, rng)
    rogue_times = np.array([record.timestamp for record in rogue])
    found = detector.detect(rogue_times)
    intended = report.objects["sensors.example.com/ingest/readings"].object_period
    if found and intended and not found.matches(intended):
        print(f"  ALERT: flow period {found.period_s:.1f}s deviates from the "
              f"object's intended {intended.period_s:.1f}s")
    else:
        print("  no deviation found")


if __name__ == "__main__":
    main()
