#!/usr/bin/env python3
"""Quickstart: generate a synthetic CDN log dataset and reproduce the
paper's §4 characterization on it.

Run:
    python examples/quickstart.py [num_json_requests]

What it shows
-------------
* building the short-term (Table 2) dataset shape with
  :class:`repro.synth.WorkloadBuilder`;
* running the full §4 pipeline (:func:`repro.core.run_characterization`)
  — Figure 3's device mix, the browser/non-browser split, request
  types, cacheability, the Figure 4 heatmap, and size comparisons;
* saving the dataset to a gzipped JSONL file you can re-analyze with
  the CLI (``repro-json-cdn characterize --logs quickstart.jsonl.gz``).
"""

import sys

from repro.core import run_characterization
from repro.logs import write_logs
from repro.synth import WorkloadBuilder, short_term_config


def main() -> None:
    total = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    print(f"Generating a short-term dataset with ~{total:,} JSON requests ...")
    dataset = WorkloadBuilder(short_term_config(total, seed=7)).build()
    print(f"  {len(dataset.logs):,} log lines "
          f"({dataset.config.num_domains} domains, "
          f"{dataset.config.num_clients:,} clients)\n")

    categories = {d.name: d.category.value for d in dataset.domains}
    report = run_characterization(dataset.logs, categories)
    print(report.render("short-term"))

    out = "quickstart.jsonl.gz"
    count = write_logs(dataset.logs, out)
    print(f"\nSaved {count:,} logs to {out}")
    print("Re-analyze with: repro-json-cdn characterize --logs", out)


if __name__ == "__main__":
    main()
