#!/usr/bin/env python3
"""Edge prefetching driven by the ngram predictor (§5.2 end-to-end).

Replays a day of app traffic through a simulated CDN edge twice —
once plain, once with an ngram prefetcher trained on a disjoint set
of clients — and compares cache hit ratio, origin load, and the
latency a client actually experiences.

Run:
    python examples/prefetch_cdn.py
"""

from repro.cdn import (
    DeliveryMetrics,
    EdgeServer,
    LatencyModel,
    LruTtlCache,
    NgramPrefetcher,
    OriginFleet,
    build_object_index,
)
from repro.ngram import BackoffNgramModel, build_client_sequences, split_clients
from repro.synth import WorkloadBuilder, long_term_config, substream
from repro.synth.sizes import SizeModel


def make_edge(seed: int) -> EdgeServer:
    return EdgeServer(
        edge_id="edge-demo",
        cache=LruTtlCache(capacity_bytes=1 << 30),
        origins=OriginFleet(),
        latency_model=LatencyModel(substream(seed, "demo", "latency")),
        size_model=SizeModel(substream(seed, "demo", "sizes")),
        rng=substream(seed, "demo", "edge"),
    )


def replay(events, edge, prefetcher=None) -> DeliveryMetrics:
    metrics = DeliveryMetrics()
    for event in events:
        metrics.record(edge.serve(event))
        if prefetcher is not None:
            prefetcher.on_request(edge, event)
    return metrics


def main() -> None:
    print("Building a 24h workload (40k JSON requests, 80 domains) ...")
    builder = WorkloadBuilder(
        long_term_config(40_000, seed=99, num_domains=80)
    )
    events, _ = builder.build_events()

    print("Training the predictor on half the clients ...")
    logs = [served.log for served in builder.replay(events)]
    sequences = build_client_sequences(logs)
    train_ids, _ = split_clients(sequences, test_fraction=0.5, seed=0)
    model = BackoffNgramModel(order=1)
    model.fit(sequences[cid] for cid in train_ids)

    index = build_object_index(list(builder.domains))

    print("Replaying without prefetching ...")
    baseline_edge = make_edge(99)
    baseline = replay(events, baseline_edge)

    print("Replaying with top-3 ngram prefetching ...\n")
    boosted_edge = make_edge(99)
    prefetcher = NgramPrefetcher(model, index, k=3, history_length=1)
    boosted = replay(events, boosted_edge, prefetcher)

    rows = [
        ("cache hit ratio (cacheable traffic)",
         f"{baseline.hit_ratio:.3f}", f"{boosted.hit_ratio:.3f}"),
        ("mean client latency (ms)",
         f"{baseline.mean_latency_s * 1e3:.1f}",
         f"{boosted.mean_latency_s * 1e3:.1f}"),
        ("p95 client latency (ms)",
         f"{baseline.latency_percentile_s(95) * 1e3:.1f}",
         f"{boosted.latency_percentile_s(95) * 1e3:.1f}"),
        ("origin fetches",
         f"{baseline_edge.origins.total_requests:,}",
         f"{boosted_edge.origins.total_requests:,}"),
    ]
    print(f"{'metric':38s} {'baseline':>10s} {'prefetch':>10s}")
    for metric, before, after in rows:
        print(f"{metric:38s} {before:>10s} {after:>10s}")

    stats = prefetcher.stats
    print(f"\nprefetcher: {stats.issued:,} fetched / "
          f"{stats.predictions:,} predictions "
          f"({stats.skipped_fresh:,} already fresh, "
          f"{stats.skipped_uncacheable:,} uncacheable, "
          f"{stats.skipped_unresolvable:,} unresolvable)")


if __name__ == "__main__":
    main()
