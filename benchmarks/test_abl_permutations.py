"""Ablation A1 — permutation count x in the period detector.

Paper (§5.1, Choosing Parameters): "values of x greater than 100 do
not produce significantly different results"; the paper therefore
uses x = 100.  This ablation sweeps x and verifies (a) the detected
set stabilizes by x = 100 and (b) small x admits noise (looser
thresholds), which is why x = 10 is not enough.
"""

import numpy as np
import pytest

from repro.periodicity.detector import DetectorConfig, PeriodDetector

from .conftest import BENCH_SEED, print_comparison


@pytest.fixture(scope="module")
def flows():
    """A mix of genuinely periodic and Poisson flows."""
    rng = np.random.default_rng(BENCH_SEED)
    periodic = []
    for period in (30.0, 60.0, 120.0, 600.0):
        for i in range(5):
            count = max(15, int(3600 / period) * 2)
            periodic.append(
                np.sort(
                    rng.uniform(0, period)
                    + np.arange(count) * period
                    + rng.normal(0, 0.3, count)
                )
            )
    noise = [np.sort(rng.uniform(0, 7200, 40)) for _ in range(20)]
    return periodic, noise


def _run(flows, x):
    periodic, noise = flows
    detector = PeriodDetector(DetectorConfig(permutations=x))
    true_positive = sum(1 for flow in periodic if detector.detect(flow) is not None)
    false_positive = sum(1 for flow in noise if detector.detect(flow) is not None)
    return true_positive / len(periodic), false_positive / len(noise)


def test_abl_permutation_sweep(flows, benchmark):
    def sweep():
        return {x: _run(flows, x) for x in (10, 50, 100, 200)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_comparison(
        "A1 — permutation count sweep (TPR / FPR)",
        [
            (f"x={x}", "-", f"{tpr:.2f} / {fpr:.2f}")
            for x, (tpr, fpr) in results.items()
        ],
    )
    # Recall stays high everywhere (the signals are strong)...
    for x, (tpr, _) in results.items():
        assert tpr >= 0.9, f"x={x}"
    # ...and x=100 vs x=200 changes nothing material (the paper's
    # justification for stopping at 100).
    tpr100, fpr100 = results[100]
    tpr200, fpr200 = results[200]
    assert abs(tpr100 - tpr200) <= 0.05
    assert abs(fpr100 - fpr200) <= 0.05
    # False positives stay controlled at x=100.
    assert fpr100 <= 0.1
