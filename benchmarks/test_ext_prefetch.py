"""Extension X1 — ngram prefetching at the edge (§5.2's proposal).

The paper suggests that ~70% next-request accuracy makes prefetching
viable.  This experiment actually runs it: replay the long-term
workload through an edge simulator with and without an ngram
prefetcher (trained on a disjoint client split) and measure the cache
hit ratio on cacheable traffic and the extra origin load.
"""

import pytest

from repro.cdn.cache import LruTtlCache
from repro.cdn.edge import EdgeServer
from repro.cdn.metrics import DeliveryMetrics
from repro.cdn.network import LatencyModel
from repro.cdn.origin import OriginFleet
from repro.cdn.prefetch import NgramPrefetcher, build_object_index
from repro.ngram.evaluate import build_client_sequences, split_clients
from repro.ngram.model import BackoffNgramModel
from repro.synth.rng import substream
from repro.synth.sizes import SizeModel
from repro.synth.workload import WorkloadBuilder, long_term_config

from .conftest import BENCH_SEED, print_comparison


@pytest.fixture(scope="module")
def replay_setup(bench_scale):
    config = long_term_config(
        min(bench_scale, 60_000), seed=BENCH_SEED + 1, num_domains=80
    )
    builder = WorkloadBuilder(config)
    events, _ = builder.build_events()

    # Train the predictor on half the clients' raw flows (client-level
    # split, as in Table 3's methodology).
    dataset = builder.replay(events)
    logs = [served.log for served in dataset]
    sequences = build_client_sequences(logs, clustered=False)
    train_ids, _ = split_clients(sequences, test_fraction=0.5, seed=1)
    model = BackoffNgramModel(order=1)
    model.fit(sequences[cid] for cid in train_ids)
    index = build_object_index(list(builder.domains))
    return builder, events, model, index


def _replay(builder, events, prefetcher=None):
    origins = OriginFleet()
    edge = EdgeServer(
        "edge-x1",
        LruTtlCache(1 << 30),
        origins,
        LatencyModel(substream(BENCH_SEED, "x1", "lat")),
        SizeModel(substream(BENCH_SEED, "x1", "sz")),
        substream(BENCH_SEED, "x1", "edge"),
    )
    metrics = DeliveryMetrics()
    for event in events:
        metrics.record(edge.serve(event))
        if prefetcher is not None:
            prefetcher.on_request(edge, event)
    return metrics, origins


def test_ext_prefetch_hit_ratio_gain(replay_setup, benchmark):
    builder, events, model, index = replay_setup

    def run_both():
        baseline, baseline_origins = _replay(builder, events)
        prefetcher = NgramPrefetcher(model, index, k=3, history_length=1)
        boosted, boosted_origins = _replay(builder, events, prefetcher)
        return baseline, baseline_origins, boosted, boosted_origins, prefetcher

    baseline, baseline_origins, boosted, boosted_origins, prefetcher = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )

    print_comparison(
        "X1 — ngram prefetching",
        [
            ("hit ratio (baseline)", "-", baseline.hit_ratio),
            ("hit ratio (prefetch)", "-", boosted.hit_ratio),
            ("origin fetches (baseline)", "-", float(baseline_origins.total_requests)),
            ("origin fetches (prefetch)", "-", float(boosted_origins.total_requests)),
            ("prefetches issued", "-", float(prefetcher.stats.issued)),
        ],
    )

    # The headline claim: prediction-driven prefetching improves the
    # cache hit ratio on cacheable JSON traffic.
    assert boosted.hit_ratio > baseline.hit_ratio + 0.02
    # Cost side: prefetching must not blow up origin load unboundedly.
    assert boosted_origins.total_requests < 3 * baseline_origins.total_requests


def test_ext_prefetch_timing_aware(replay_setup, benchmark):
    """§5.2 future work: interarrival-aware prefetching.

    The timed prefetcher skips predictions whose expected arrival gap
    makes the prefetch useless (too soon to win the origin race, or
    beyond the object TTL).  It should retain most of the hit-ratio
    gain while issuing fewer wasted origin fetches per hit gained.
    """
    from repro.ngram.evaluate import build_timed_client_sequences
    from repro.ngram.timing import TimedNgramModel
    from repro.cdn.prefetch import TimedNgramPrefetcher

    builder, events, model, index = replay_setup

    def run_all():
        logs = [served.log for served in builder.replay(events)]
        timed_sequences = build_timed_client_sequences(logs)
        train_ids, _ = split_clients(timed_sequences, test_fraction=0.5, seed=1)
        timed_model = TimedNgramModel(order=1)
        timed_model.fit(timed_sequences[cid] for cid in train_ids)

        baseline, baseline_origins = _replay(builder, events)
        plain = NgramPrefetcher(model, index, k=3, history_length=1)
        plain_metrics, plain_origins = _replay(builder, events, plain)
        timed = TimedNgramPrefetcher(timed_model, index, k=3, history_length=1)
        timed_metrics, timed_origins = _replay(builder, events, timed)
        return (
            baseline, baseline_origins,
            plain_metrics, plain_origins, plain,
            timed_metrics, timed_origins, timed,
        )

    (baseline, baseline_origins, plain_metrics, plain_origins, plain,
     timed_metrics, timed_origins, timed) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    def waste(metrics, origins):
        extra_origin = origins.total_requests - baseline_origins.total_requests
        gained_hits = metrics.hits - baseline.hits
        return extra_origin / max(gained_hits, 1)

    print_comparison(
        "X1b — timing-aware prefetching",
        [
            ("hit ratio (baseline)", "-", baseline.hit_ratio),
            ("hit ratio (plain prefetch)", "-", plain_metrics.hit_ratio),
            ("hit ratio (timed prefetch)", "-", timed_metrics.hit_ratio),
            ("extra origin per gained hit (plain)", "-",
             waste(plain_metrics, plain_origins)),
            ("extra origin per gained hit (timed)", "-",
             waste(timed_metrics, timed_origins)),
            ("timing-skipped predictions", "-", float(timed.skipped_timing)),
        ],
    )

    # Both beat the baseline; the timed variant is more efficient
    # (fewer extra origin fetches per hit gained) at a small hit cost.
    assert plain_metrics.hit_ratio > baseline.hit_ratio
    assert timed_metrics.hit_ratio > baseline.hit_ratio
    assert timed.skipped_timing > 0
    assert waste(timed_metrics, timed_origins) <= waste(
        plain_metrics, plain_origins
    ) + 0.05


def test_ext_prefetch_k_sweep(replay_setup, benchmark):
    """More aggressive prefetching (larger K) buys diminishing gains."""
    builder, events, model, index = replay_setup

    def sweep():
        ratios = {}
        for k in (1, 3, 5):
            prefetcher = NgramPrefetcher(model, index, k=k, history_length=1)
            metrics, _ = _replay(builder, events, prefetcher)
            ratios[k] = metrics.hit_ratio
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_comparison(
        "X1 — prefetch aggressiveness sweep",
        [(f"hit ratio @ K={k}", "-", ratio) for k, ratio in ratios.items()],
    )
    assert ratios[3] >= ratios[1] - 0.01
    assert ratios[5] - ratios[3] < ratios[3] - ratios[1] + 0.05
