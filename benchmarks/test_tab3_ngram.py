"""Table 3 — ngram top-K prediction accuracy.

Paper (N=1): clustered URLs .65 / .84 / .87 and actual URLs
.45 / .64 / .69 for K = 1 / 5 / 10.  About 70% accuracy on actual
URLs at K=10 motivates CDN prefetching; ~87% on clustered URLs shows
clients share general ordering patterns.
"""

from repro.core.report import render_table
from repro.ngram.evaluate import run_table3
from repro.synth.calibration import PAPER

from .conftest import print_comparison

_CACHE = {}


def table3_results(json_logs):
    if "results" not in _CACHE:
        _CACHE["results"] = run_table3(json_logs, ns=(1,), ks=(1, 5, 10))
    return _CACHE["results"]


def test_tab3_accuracy_table(long_bench_json, benchmark):
    results = benchmark.pedantic(
        lambda: table3_results(long_bench_json), rounds=1, iterations=1
    )
    rows = []
    for k in (1, 5, 10):
        clustered_paper, actual_paper = PAPER.ngram_accuracy[k]
        rows.append(
            [
                k,
                f"{results[(1, k, True)].accuracy:.2f} (paper {clustered_paper})",
                f"{results[(1, k, False)].accuracy:.2f} (paper {actual_paper})",
            ]
        )
    print()
    print(render_table(["K", "clustered", "actual"], rows,
                       title="Table 3 — ngram accuracy, N=1"))

    for k in (1, 5, 10):
        clustered_paper, actual_paper = PAPER.ngram_accuracy[k]
        assert abs(results[(1, k, True)].accuracy - clustered_paper) < 0.10, k
        assert abs(results[(1, k, False)].accuracy - actual_paper) < 0.10, k


def test_tab3_ordering_properties(long_bench_json, benchmark):
    results = benchmark.pedantic(
        lambda: table3_results(long_bench_json), rounds=1, iterations=1
    )
    # Clustered beats actual at every K (shared ordering patterns).
    for k in (1, 5, 10):
        assert results[(1, k, True)].accuracy > results[(1, k, False)].accuracy
    # Accuracy grows with K, with diminishing returns after K=5.
    for clustered in (True, False):
        a1 = results[(1, 1, clustered)].accuracy
        a5 = results[(1, 5, clustered)].accuracy
        a10 = results[(1, 10, clustered)].accuracy
        assert a1 < a5 <= a10
        assert (a5 - a1) > (a10 - a5)


def test_tab3_baseline_comparison(long_bench_json, benchmark):
    """The ngram's lift over history-blind and recency baselines.

    §5.2 argues the ngram approach "takes into account the popularity
    of highly requested items"; this shows transition structure adds
    a large margin beyond popularity alone.
    """
    from repro.ngram.baseline import (
        PerClientRecencyPredictor,
        PopularityPredictor,
    )
    from repro.ngram.evaluate import (
        build_client_sequences,
        evaluate_topk,
        split_clients,
    )
    from repro.ngram.model import BackoffNgramModel

    def run_all():
        sequences = build_client_sequences(long_bench_json)
        train_ids, test_ids = split_clients(sequences, seed=0)
        train = [sequences[cid] for cid in train_ids]
        test = [sequences[cid] for cid in test_ids]
        models = {
            "ngram": BackoffNgramModel(order=1).fit(train),
            "popularity": PopularityPredictor().fit(train),
            "recency": PerClientRecencyPredictor(),
        }
        return {
            name: evaluate_topk(model, test, n=1, ks=[1, 10])
            for name, model in models.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, accuracies in results.items():
        for result in accuracies:
            rows.append((f"{name} @ K={result.k}", "-", result.accuracy))
    print_comparison("Table 3 — ngram vs baselines (actual URLs)", rows)

    for k_index in (0, 1):
        ngram = results["ngram"][k_index].accuracy
        assert ngram > results["popularity"][k_index].accuracy + 0.08
        assert ngram > results["recency"][k_index].accuracy


def test_tab3_clustering_granularity_variant(long_bench_json, benchmark):
    """Design-choice check: clustering must coarsen, not obliterate.

    A degenerate 'cluster everything to one token' model would score
    ~100% trivially; verify our clustered vocabulary keeps structure
    (many distinct tokens, accuracy below a perfect score).
    """
    from repro.ngram.evaluate import build_client_sequences

    def vocab_sizes():
        raw = build_client_sequences(long_bench_json, clustered=False)
        clustered = build_client_sequences(long_bench_json, clustered=True)
        raw_vocab = {token for flow in raw.values() for token in flow}
        clustered_vocab = {
            token for flow in clustered.values() for token in flow
        }
        return len(raw_vocab), len(clustered_vocab)

    raw_size, clustered_size = benchmark.pedantic(
        vocab_sizes, rounds=1, iterations=1
    )
    print_comparison(
        "Table 3 — vocabulary compression",
        [("raw vocab", "-", raw_size), ("clustered vocab", "-", clustered_size)],
    )
    assert clustered_size < raw_size
    assert clustered_size > 50  # structure survives clustering
    results = table3_results(long_bench_json)
    assert results[(1, 10, True)].accuracy < 0.98
