"""Performance microbenchmarks of the pipeline's hot paths.

These are real pytest-benchmark measurements (many rounds), not
paper artifacts: they document the throughput a downstream user can
expect from each stage when processing dataset-scale log volumes.
Assertions are generous floors, guarding against order-of-magnitude
regressions rather than machine variance.
"""

import random

import numpy as np
import pytest

from repro.cdn.cache import LruTtlCache
from repro.ngram.clustering import UrlClusterer, cluster_url
from repro.ngram.model import BackoffNgramModel
from repro.periodicity.autocorr import autocorrelation, bin_series
from repro.periodicity.detector import DetectorConfig, PeriodDetector
from repro.useragent.classify import UserAgentClassifier
from repro.useragent.strings import UA_FACTORIES


@pytest.fixture(scope="module")
def ua_sample():
    rng = random.Random(1)
    sample = []
    for name, factory in UA_FACTORIES.items():
        sample.extend(factory(rng) for _ in range(40))
    return sample


def test_perf_ua_classification_cold(ua_sample, benchmark):
    """Classifier throughput on all-distinct UA strings."""

    def classify_all():
        classifier = UserAgentClassifier(memo_size=1)  # defeat the memo
        for ua in ua_sample:
            classifier.classify(ua)

    benchmark(classify_all)
    # ~240 strings; > 2k strings/s even without memoization.
    assert benchmark.stats["mean"] < len(ua_sample) / 2_000


def test_perf_ua_classification_memoized(ua_sample, benchmark):
    """Classifier throughput with the memo warm (the real-log case)."""
    classifier = UserAgentClassifier()
    for ua in ua_sample:
        classifier.classify(ua)

    def classify_all():
        for ua in ua_sample:
            classifier.classify(ua)

    benchmark(classify_all)
    assert benchmark.stats["mean"] < len(ua_sample) / 100_000


def test_perf_url_clustering(benchmark):
    urls = [f"/api/v2/item/{i}?page={i % 7}&q=tre{i}" for i in range(500)]

    def cluster_all():
        for url in urls:
            cluster_url(url)

    benchmark(cluster_all)
    assert benchmark.stats["mean"] < 0.1  # >5k URLs/s


def test_perf_url_clustering_memoized(benchmark):
    urls = [f"/api/v2/item/{i % 50}" for i in range(2_000)]
    clusterer = UrlClusterer()

    def cluster_all():
        for url in urls:
            clusterer(url)

    benchmark(cluster_all)
    assert benchmark.stats["mean"] < 0.05


def test_perf_ngram_predict(benchmark):
    rng = random.Random(2)
    vocabulary = [f"/obj/{i}" for i in range(200)]
    model = BackoffNgramModel(order=1)
    model.fit(
        [rng.choices(vocabulary, k=20) for _ in range(500)]
    )
    histories = [rng.choices(vocabulary, k=1) for _ in range(200)]

    def predict_all():
        for history in histories:
            model.predict(history, k=10)

    benchmark(predict_all)
    assert benchmark.stats["mean"] < 0.2  # >1k predictions/s


def test_perf_cache_operations(benchmark):
    rng = random.Random(3)
    keys = [f"obj-{i}" for i in range(2_000)]

    def churn():
        cache = LruTtlCache(capacity_bytes=512_000)
        now = 0.0
        for i in range(10_000):
            key = keys[rng.randrange(len(keys))]
            if cache.get(key, now) is None:
                cache.put(key, 500, now, ttl=120.0)
            now += 0.5

    benchmark(churn)
    assert benchmark.stats["mean"] < 0.5  # >20k ops/s


def test_perf_acf_day_scale_series(benchmark):
    rng = np.random.default_rng(4)
    series = bin_series(np.sort(rng.uniform(0, 86_400, 5_000)), 10.0)

    benchmark(lambda: autocorrelation(series))
    assert benchmark.stats["mean"] < 0.05


def test_perf_detector_single_flow(benchmark):
    rng = np.random.default_rng(5)
    flow = np.sort(np.arange(60) * 60.0 + rng.normal(0, 0.3, 60))
    detector = PeriodDetector(DetectorConfig(permutations=100))

    benchmark(lambda: detector.detect(flow))
    # One x=100 permutation-thresholded detection in well under a second.
    assert benchmark.stats["mean"] < 1.0
