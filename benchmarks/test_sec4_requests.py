"""§4 request type — uploads vs downloads.

Paper: 84% of JSON requests are GETs; of the non-GET remainder, 96%
are POSTs.
"""

from repro.analysis.characterize import characterize
from repro.synth.calibration import PAPER

from .conftest import print_comparison


def test_sec4_request_type_mix(short_bench_json, benchmark):
    _, request_type = benchmark.pedantic(
        lambda: characterize(short_bench_json, json_only=False),
        rounds=1,
        iterations=1,
    )
    print_comparison(
        "§4 — request types",
        [
            ("GET fraction", PAPER.get_fraction, request_type.get_fraction),
            ("POST share of non-GET", PAPER.post_share_of_non_get,
             request_type.post_share_of_non_get),
        ],
    )
    assert abs(request_type.get_fraction - PAPER.get_fraction) < 0.05
    assert request_type.post_share_of_non_get > 0.90
