"""Figure 5 + §5.1 — periodicity detection.

Paper: 6.3% of JSON requests are periodic; detected object periods
spike on the even timer grid (30s, 1m, 2m, 3m, 10m, 15m, 30m);
periodic traffic is 56.2% uncacheable and 78% upload.
"""

import pytest

from repro.core.report import render_bar_chart
from repro.periodicity.results import analyze_logs
from repro.synth.calibration import PAPER

from .conftest import print_comparison

_CACHE = {}


def periodicity_report(json_logs):
    """Shared detection run for the Figure 5/6 benchmarks."""
    if "report" not in _CACHE:
        _CACHE["report"] = analyze_logs(json_logs)
    return _CACHE["report"]


def test_fig5_periodic_fraction(long_bench_json, long_bench_dataset, benchmark):
    report = benchmark.pedantic(
        lambda: periodicity_report(long_bench_json), rounds=1, iterations=1
    )
    truth = long_bench_dataset.ground_truth
    print_comparison(
        "§5.1 — periodic traffic",
        [
            ("periodic request fraction", PAPER.periodic_request_fraction,
             report.periodic_request_fraction),
            ("planted fraction (ground truth)", PAPER.periodic_request_fraction,
             truth.periodic_fraction),
            ("periodic upload fraction", PAPER.periodic_upload_fraction,
             report.periodic_upload_fraction),
            ("periodic uncacheable fraction", PAPER.periodic_uncacheable_fraction,
             report.periodic_uncacheable_fraction),
        ],
    )
    assert abs(
        report.periodic_request_fraction - PAPER.periodic_request_fraction
    ) < 0.025
    assert abs(
        report.periodic_upload_fraction - PAPER.periodic_upload_fraction
    ) < 0.12
    # Periodic traffic is substantially (not fully) uncacheable.
    assert 0.25 < report.periodic_uncacheable_fraction < 0.90


def test_fig5_period_histogram_on_timer_grid(long_bench_json, benchmark):
    report = benchmark.pedantic(
        lambda: periodicity_report(long_bench_json), rounds=1, iterations=1
    )
    histogram = report.period_histogram(bin_width_s=10.0)
    print()
    print(
        render_bar_chart(
            [(f"{int(start)}s", count) for start, count in histogram],
            title="Figure 5 — histogram of object periods (10s bins)",
        )
    )
    periods = report.object_periods()
    assert periods, "no periodic objects detected"
    # Every detected period sits within one bin of a canonical spike.
    on_grid = sum(
        1
        for period in periods
        if any(
            abs(period - canonical) <= max(2.0, 0.02 * canonical)
            for canonical in PAPER.canonical_periods_s
        )
    )
    assert on_grid / len(periods) > 0.85


def test_fig5_detection_recall_vs_ground_truth(
    long_bench_dataset, long_bench_json, benchmark
):
    """Ground-truth check the paper could not do: planted vs detected."""
    report = benchmark.pedantic(
        lambda: periodicity_report(long_bench_json), rounds=1, iterations=1
    )
    truth = long_bench_dataset.ground_truth
    detected = {
        outcome.object_id: outcome.object_period.period_s
        for outcome in report.objects.values()
        if outcome.object_period is not None
    }
    hits = sum(
        1
        for object_id, spec in truth.periodic_specs.items()
        if object_id in detected
        and abs(detected[object_id] - spec.period_s)
        <= max(2.0, 0.10 * spec.period_s)
    )
    recall = hits / len(truth.periodic_specs)
    print_comparison(
        "§5.1 — detector recall against planted objects",
        [("object-period recall", 0.85, recall)],
    )
    # Weak objects (few periodic clients) may be missed; strong
    # majority must be found with the right period.
    assert recall >= 0.7
