"""Figure 6 — CDF of the percent of periodic clients across objects.

Paper: for 20% of periodically-requested objects, more than half the
clients requesting them do so with matching time signals — the
machine-to-machine fingerprint.
"""

from repro.core.report import render_bar_chart
from repro.synth.calibration import PAPER

from .conftest import print_comparison
from .test_fig5_periods import periodicity_report


def test_fig6_majority_periodic_objects(long_bench_json, benchmark):
    report = benchmark.pedantic(
        lambda: periodicity_report(long_bench_json), rounds=1, iterations=1
    )
    majority = report.majority_periodic_fraction()
    print_comparison(
        "Figure 6 — objects with >50% periodic clients",
        [("fraction of periodic objects",
          PAPER.objects_with_majority_periodic_clients, majority)],
    )
    assert abs(majority - PAPER.objects_with_majority_periodic_clients) < 0.15


def test_fig6_share_cdf_shape(long_bench_json, benchmark):
    report = benchmark.pedantic(
        lambda: periodicity_report(long_bench_json), rounds=1, iterations=1
    )
    cdf = report.share_cdf()
    assert cdf, "no periodic objects for the CDF"

    # Print a decile view of the CDF.
    deciles = []
    for target in (0.1, 0.25, 0.5, 0.75, 0.9):
        value = next(
            (share for share, fraction in cdf if fraction >= target), cdf[-1][0]
        )
        deciles.append((f"p{int(target * 100)}", value))
    print()
    print(
        render_bar_chart(
            deciles,
            title="Figure 6 — periodic-client share CDF (quantiles)",
            value_format="{:.2f}",
        )
    )

    shares = [share for share, _ in cdf]
    # Shape: the distribution is spread out, not degenerate — some
    # objects are barely periodic, a tail is firmware-dominated.
    assert min(shares) < 0.4
    assert max(shares) > 0.5
    fractions = [fraction for _, fraction in cdf]
    assert fractions == sorted(fractions)
