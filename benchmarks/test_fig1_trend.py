"""Figure 1 — JSON:HTML request ratio on the CDN, 2016 → mid-2019.

Paper: JSON outgrows HTML over the window; at the end of the
observation period JSON is requested more than 4x as often as HTML.
"""

from repro.analysis.trend import analyze_trend, snapshot_ratio
from repro.synth.calibration import PAPER
from repro.synth.trend import TrendModel

from .conftest import BENCH_SEED, print_comparison


def test_fig1_json_html_ratio_trend(benchmark):
    model = TrendModel(seed=BENCH_SEED)
    analysis = benchmark.pedantic(
        lambda: analyze_trend(model.series()), rounds=1, iterations=1
    )

    print_comparison(
        "Figure 1 — JSON:HTML ratio",
        [
            ("end-of-window ratio", PAPER.json_html_ratio_2019, analysis.end_ratio),
            ("start-of-window ratio", 1.0, analysis.start_ratio),
            ("growth factor", 4.0, analysis.growth_factor),
        ],
    )

    # Shape: starts near parity, ends above 4x, and the smoothed
    # trend rises monotonically through the window.
    assert analysis.start_ratio < 1.5
    assert analysis.end_ratio > PAPER.json_html_ratio_2019
    assert analysis.is_monotonic_trend()
    # JSON overtakes HTML early in the window, as Figure 1 shows.
    assert analysis.crossover_month() < "2017-06"


def test_fig1_snapshot_ratio_in_2019_dataset(short_bench_dataset, benchmark):
    """The 2019-epoch dataset itself reflects the end-of-trend ratio."""
    ratio = benchmark.pedantic(
        lambda: snapshot_ratio(short_bench_dataset.logs), rounds=1, iterations=1
    )
    print_comparison(
        "Figure 1 — 2019 dataset snapshot",
        [("JSON:HTML ratio", PAPER.json_html_ratio_2019, ratio)],
    )
    assert 3.0 < ratio < 7.0
