"""Extension X3 — geographic differences (the paper's §7 future work).

"Future studies can analyze longer datasets covering more regions in
order to explore geographic and temporal differences in JSON traffic
patterns."  This experiment builds a four-region day-long dataset and
verifies what a multi-region capture would show: regional diurnal
peaks phased by timezone, while the *structural* JSON properties
(device mix stability, GET share) hold across regions.
"""

import pytest

from repro.analysis.characterize import characterize
from repro.analysis.regional import (
    edge_region,
    peak_hour_spread,
    regional_breakdown,
)
from repro.synth.regions import DEFAULT_REGIONS
from repro.synth.workload import WorkloadBuilder, long_term_config

from .conftest import BENCH_SEED, print_comparison


@pytest.fixture(scope="module")
def regional_dataset(bench_scale):
    config = long_term_config(
        min(bench_scale, 60_000),
        seed=BENCH_SEED + 3,
        num_domains=80,
        regions=DEFAULT_REGIONS,
    )
    return WorkloadBuilder(config).build()


def test_ext_regions_diurnal_phase_shift(regional_dataset, benchmark):
    stats = benchmark.pedantic(
        lambda: regional_breakdown(
            regional_dataset.logs, epoch=regional_dataset.config.start_time
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name in ("na", "eu", "apac", "sa"):
        bucket = stats[name]
        rows.append(
            (f"{name}: peak hour / peak-to-trough", "-",
             f"{bucket.peak_hour()}h / {bucket.peak_to_trough():.1f}x")
        )
    rows.append(("max peak-hour spread (h)", ">=4", float(peak_hour_spread(stats))))
    print_comparison("X3 — regional diurnal phasing", rows)

    assert set(stats) == {"na", "eu", "apac", "sa"}
    # Timezones phase the peaks apart...
    assert peak_hour_spread(stats) >= 4
    # ...and every region shows a real diurnal swing.
    for bucket in stats.values():
        assert bucket.peak_to_trough() > 1.5


def test_ext_regions_structure_is_global(regional_dataset, benchmark):
    """Traffic *structure* is stable across regions even though
    *timing* is not — the premise that lets the paper generalize a
    Seattle-only long-term capture."""

    def per_region_structure():
        by_region = {}
        for record in regional_dataset.logs:
            if record.is_json:
                by_region.setdefault(edge_region(record.edge_id), []).append(record)
        out = {}
        for name, logs in by_region.items():
            source, request_type = characterize(logs, json_only=False)
            out[name] = (
                source.device_shares().get("mobile", 0.0),
                request_type.get_fraction,
            )
        return out

    structure = benchmark.pedantic(per_region_structure, rounds=1, iterations=1)
    print_comparison(
        "X3 — per-region structure (mobile share / GET share)",
        [
            (name, "-", f"{mobile:.2f} / {get:.2f}")
            for name, (mobile, get) in sorted(structure.items())
        ],
    )
    mobile_shares = [mobile for mobile, _ in structure.values()]
    get_shares = [get for _, get in structure.values()]
    assert max(mobile_shares) - min(mobile_shares) < 0.15
    assert max(get_shares) - min(get_shares) < 0.15
