"""Ablation A5 — TTL and cache-size what-ifs on the JSON trace.

§4 shows >55% of JSON traffic bypassing the cache entirely; for the
cacheable remainder, customer TTL choice governs how much of the CDN's
value is realized.  This ablation replays the long-term JSON trace
under a TTL sweep and a cache-capacity sweep with the
:class:`repro.cdn.replay.WhatIfReplayer`, the tool an operator would
point at real logs.
"""

import pytest

from repro.cdn.replay import ReplayPolicy, WhatIfReplayer

from .conftest import print_comparison


@pytest.fixture(scope="module")
def replayer(long_bench_dataset):
    return WhatIfReplayer(long_bench_dataset.logs)


def test_abl_ttl_sweep(replayer, benchmark):
    ttls = [30.0, 120.0, 600.0, 3600.0, 6 * 3600.0]
    outcomes = benchmark.pedantic(
        lambda: replayer.ttl_sweep(ttls, num_edges=3),
        rounds=1,
        iterations=1,
    )
    print_comparison(
        "A5 — TTL sweep (JSON trace)",
        [
            (outcome.policy.name, "-",
             f"hit {outcome.hit_ratio:.3f} / origin {outcome.origin_fraction:.3f}")
            for outcome in outcomes
        ],
    )
    ratios = [outcome.hit_ratio for outcome in outcomes]
    # Longer TTLs monotonically improve the hit ratio...
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0] + 0.05
    # ...but the no-store floor keeps origin traffic above ~50%
    # regardless (the §4 cacheability story).
    assert all(outcome.origin_fraction > 0.45 for outcome in outcomes)


def test_abl_cache_capacity_sweep(replayer, benchmark):
    def sweep():
        return [
            replayer.replay(
                ReplayPolicy(
                    name=f"cap={capacity >> 20}MiB",
                    ttl_seconds=600.0,
                    cache_capacity_bytes=capacity,
                    num_edges=3,
                )
            )
            for capacity in (1 << 20, 1 << 23, 1 << 27)
        ]

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_comparison(
        "A5 — cache capacity sweep",
        [
            (outcome.policy.name, "-", outcome.hit_ratio)
            for outcome in outcomes
        ],
    )
    ratios = [outcome.hit_ratio for outcome in outcomes]
    assert ratios == sorted(ratios)
    # JSON working sets are small (§4: small objects); a modest cache
    # already captures nearly all of the achievable hits.
    assert ratios[1] > 0.9 * ratios[2]
