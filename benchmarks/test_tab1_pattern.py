"""Table 1 — the JSON manifest traffic pattern.

The paper's Table 1 illustrates how apps use JSON: first a manifest
of stories, then the referenced content. Table 1 is illustrative
rather than quantitative, so this benchmark verifies the *pattern*
statistically on reconstructed sessions: sessions overwhelmingly open
on manifest-like endpoints, and content requests follow manifest
requests rather than precede them.
"""

from repro.analysis.sessionize import session_statistics, sessionize

from .conftest import print_comparison

_MANIFEST_MARKERS = (
    "/home", "/config", "/stories", "/poll", "/telemetry", "/events",
    "/notifications", "/scores",
)


def test_tab1_manifest_first_sessions(long_bench_json, benchmark):
    def reconstruct():
        sessions = sessionize(long_bench_json, gap_s=300.0)
        return sessions, session_statistics(sessions)

    sessions, stats = benchmark.pedantic(reconstruct, rounds=1, iterations=1)
    manifest_first = stats.manifest_first_fraction(_MANIFEST_MARKERS)
    print_comparison(
        "Table 1 — manifest pattern",
        [
            ("sessions reconstructed", "-", float(stats.total_sessions)),
            ("mean session length", "-", stats.mean_length),
            ("sessions opening on manifest/config", "high", manifest_first),
        ],
    )
    assert stats.total_sessions > 200
    assert manifest_first > 0.6


def test_tab1_manifest_precedes_content(long_bench_json, benchmark):
    """Within a session, the story list comes before the articles."""

    def measure():
        sessions = sessionize(long_bench_json, gap_s=300.0)
        manifest_led = with_content = 0
        for session in sessions:
            urls = session.urls()
            content_positions = [
                index for index, url in enumerate(urls) if "/item/" in url
            ]
            if not content_positions:
                continue
            with_content += 1
            first_content = content_positions[0]
            if any(
                marker in url
                for url in urls[:first_content]
                for marker in ("/home", "/stories", "/search")
            ):
                manifest_led += 1
        return manifest_led, with_content

    manifest_led, with_content = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    share = manifest_led / with_content if with_content else 0.0
    print_comparison(
        "Table 1 — manifest precedes content",
        [("content sessions led by a manifest", "high", share)],
    )
    assert with_content > 100
    # Script bursts (SDK clients) fetch content directly without a
    # manifest, so the ceiling is below 1.0; app sessions dominate.
    assert share > 0.65
