"""Ablation A3 — multi-period flows (the paper's §5.1 future work).

The paper's detector "either returns the most significant period …
or no period", assuming one period per flow.  This ablation plants
flows carrying *two* timers and compares the single-period detector
(recovers only the dominant timer) with the iterative comb-peeling
:class:`repro.periodicity.multiperiod.MultiPeriodDetector`.
"""

import numpy as np
import pytest

from repro.periodicity.detector import PeriodDetector
from repro.periodicity.multiperiod import MultiPeriodDetector

from .conftest import BENCH_SEED, print_comparison


@pytest.fixture(scope="module")
def dual_flows():
    """20 flows, each the union of a fast and a slow timer."""
    rng = np.random.default_rng(BENCH_SEED)
    flows = []
    for i in range(20):
        fast = rng.choice([30.0, 60.0])
        slow = rng.choice([600.0, 900.0])
        a = rng.uniform(0, fast) + np.arange(100) * fast + rng.normal(0, 0.3, 100)
        b = rng.uniform(0, slow) + np.arange(10) * slow + rng.normal(0, 0.3, 10)
        flows.append((np.sort(np.concatenate([a, b])), {fast, slow}))
    return flows


def test_abl_multi_period_recovery(dual_flows, benchmark):
    def run_both():
        single = PeriodDetector()
        multi = MultiPeriodDetector(max_periods=3)
        single_hits = 0  # dominant period found
        single_complete = 0  # both periods found (impossible by design)
        multi_complete = 0
        for timestamps, truth in dual_flows:
            found = single.detect(timestamps)
            if found is not None and any(
                abs(found.period_s - p) <= max(1.5, 0.05 * p) for p in truth
            ):
                single_hits += 1
            components = multi.detect(timestamps)
            recovered = {
                period
                for period in truth
                if any(
                    abs(c.period_s - period) <= max(1.5, 0.05 * period)
                    for c in components
                )
            }
            if recovered == truth:
                multi_complete += 1
        return single_hits, single_complete, multi_complete

    single_hits, single_complete, multi_complete = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    n = len(dual_flows)
    print_comparison(
        "A3 — two-timer flows (out of 20)",
        [
            ("single detector: found a period", "-", float(single_hits)),
            ("single detector: found both", "0", float(single_complete)),
            ("multi detector: found both", "-", float(multi_complete)),
        ],
    )
    # The single-period detector finds the dominant timer on most
    # flows but by construction never both; the multi-period
    # extension recovers the full timer set on a clear majority.
    assert single_hits >= 0.7 * n
    assert multi_complete >= 0.7 * n
    assert multi_complete > single_complete
