"""Table 2 — dataset summaries.

Paper: short-term = 25M logs / 10 min / ~5K domains; long-term = 10M
logs / 24 h / ~170 domains.  The reproduction scales counts down but
preserves the *shape*: duration, relative domain coverage, and the
logs-per-domain ordering between the two datasets.
"""

from repro.logs.summary import summarize
from repro.synth.calibration import PAPER

from .conftest import print_comparison


def test_tab2_short_term_summary(short_bench_dataset, benchmark):
    summary = benchmark.pedantic(
        lambda: summarize(short_bench_dataset.logs), rounds=1, iterations=1
    )
    print_comparison(
        "Table 2 — short-term dataset",
        [
            ("duration (s)", PAPER.short_term_duration_s, summary.duration_seconds),
            ("domains", PAPER.short_term_domains,
             summary.num_domains),
            ("logs", PAPER.short_term_logs, summary.total_logs),
        ],
    )
    assert abs(summary.duration_seconds - PAPER.short_term_duration_s) < 30
    assert summary.num_domains >= 100
    assert summary.total_logs > 0


def test_tab2_long_term_summary(long_bench_dataset, benchmark):
    summary = benchmark.pedantic(
        lambda: summarize(long_bench_dataset.logs), rounds=1, iterations=1
    )
    print_comparison(
        "Table 2 — long-term dataset",
        [
            ("duration (s)", PAPER.long_term_duration_s, summary.duration_seconds),
            ("domains", PAPER.long_term_domains, summary.num_domains),
            ("logs", PAPER.long_term_logs, summary.total_logs),
        ],
    )
    # 24-hour capture over ~170 domains, as in the paper.
    assert summary.duration_seconds > 0.9 * PAPER.long_term_duration_s
    assert abs(summary.num_domains - PAPER.long_term_domains) <= 20


def test_tab2_relative_shape(short_bench_dataset, long_bench_dataset, benchmark):
    """Short-term is wide (many domains, brief); long-term is narrow."""

    def shapes():
        return (
            summarize(short_bench_dataset.logs),
            summarize(long_bench_dataset.logs),
        )

    short, long = benchmark.pedantic(shapes, rounds=1, iterations=1)
    # At paper scale the domain ratio is ~29x (5K vs 170); at
    # reproduction scale the ordering must still hold.
    assert short.num_domains > long.num_domains
    assert long.duration_seconds > 100 * short.duration_seconds
