"""Performance benchmark for the sharded analysis engine.

Measures serial ``run_characterization`` against the 4-worker
``run_characterization_parallel`` path on a 200k-request synthetic
dataset (``REPRO_ENGINE_BENCH_REQUESTS`` shrinks it for CI), records
wall time for both, and checks the two invariants the engine
guarantees regardless of machine speed:

- counter metrics (traffic source, request type, cacheability,
  dataset summary) are byte-identical between serial and parallel;
- the HyperLogLog unique-client estimate lands within 2% of the
  exact count, including at 100k distinct clients.

No speedup assertion is made: shard fan-out only helps on multi-core
hosts, and the point of the benchmark is recording, not gating.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.pipeline import (
    run_characterization,
    run_characterization_parallel,
)
from repro.engine.sketches import HyperLogLog
from repro.engine.state import CharacterizationState
from repro.synth.workload import WorkloadBuilder, short_term_config

ENGINE_BENCH_SEED = 2019
ENGINE_WORKERS = 4


def _engine_requests() -> int:
    return int(os.environ.get("REPRO_ENGINE_BENCH_REQUESTS", "200000"))


@pytest.fixture(scope="module")
def engine_dataset():
    config = short_term_config(_engine_requests(), seed=ENGINE_BENCH_SEED)
    return WorkloadBuilder(config).build()


@pytest.fixture(scope="module")
def domain_categories(engine_dataset):
    return {d.name: d.category.value for d in engine_dataset.domains}


def test_perf_engine_serial_vs_parallel(engine_dataset, domain_categories):
    """Serial vs 4-worker wall time, with identical counter metrics."""
    logs = engine_dataset.logs

    start = time.perf_counter()
    serial = run_characterization(logs, domain_categories)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel, stats = run_characterization_parallel(
        logs,
        domain_categories,
        workers=ENGINE_WORKERS,
        with_stats=True,
    )
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    print(f"\n=== engine benchmark ({len(logs):,} requests) ===")
    print(f"serial:   {serial_seconds:8.3f} s")
    print(
        f"parallel: {parallel_seconds:8.3f} s"
        f"  ({ENGINE_WORKERS} workers, {stats.total_shards} shards,"
        f" backend={stats.backend})"
    )
    print(f"speedup:  {speedup:8.2f}x  (informational; host-dependent)")

    # The acceptance invariant: counters merge losslessly, so the
    # parallel report is byte-identical to serial on every counter
    # metric no matter how shards were scheduled.
    assert parallel.traffic_source == serial.traffic_source
    assert parallel.request_type == serial.request_type
    assert parallel.cacheability == serial.cacheability
    assert parallel.summary == serial.summary
    assert parallel.heatmap == serial.heatmap
    assert stats.total_records == len(logs)
    assert not stats.failed


def test_perf_engine_hll_within_two_percent(engine_dataset):
    """Merged sketch unique-client estimate tracks the exact count."""
    state = CharacterizationState().update(engine_dataset.logs)
    exact = state.summary.num_clients
    estimate = state.unique_clients_estimate()
    error = abs(estimate - exact) / exact
    print(
        f"\nunique clients: exact {exact:,}, HLL estimate {estimate:,.0f}"
        f" ({error:.2%} error)"
    )
    assert error < 0.02


def test_perf_engine_hll_100k_clients():
    """HLL stays within 2% at 100k distinct clients (paper scale)."""
    sketch = HyperLogLog()
    count = 100_000
    start = time.perf_counter()
    for index in range(count):
        sketch.add(f"client-{index:08d}")
    seconds = time.perf_counter() - start
    estimate = sketch.estimate()
    error = abs(estimate - count) / count
    print(
        f"\nHLL 100k insert: {seconds:.3f} s"
        f" ({count / seconds:,.0f} adds/s), estimate {estimate:,.0f}"
        f" ({error:.2%} error)"
    )
    assert error < 0.02
