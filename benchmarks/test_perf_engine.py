"""Performance benchmark for the sharded analysis engine.

Measures serial runs of all three engine pipelines — §4
characterization, §5.1 periodicity, §5.2 ngram — against their
4-worker parallel paths (``REPRO_ENGINE_BENCH_REQUESTS`` and
``REPRO_ENGINE_BENCH_PATTERN_REQUESTS`` shrink the datasets for CI),
records wall time for each, and checks the invariants the engine
guarantees regardless of machine speed:

- every parallel result is identical to the serial one — counter
  metrics for characterization, the full per-object outcome map for
  periodicity, and every (N, K, clustered) hit count for ngram;
- the HyperLogLog unique-client estimate lands within 2% of the
  exact count, including at 100k distinct clients.

Speedup is asserted (> 1.5x at 4 process workers) only on hosts with
at least 4 CPUs and a serial run long enough to amortize the pool
start-up; elsewhere the timings are informational.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.pipeline import (
    run_characterization,
    run_characterization_parallel,
    run_ngram_parallel,
    run_periodicity_parallel,
)
from repro.engine.sketches import HyperLogLog
from repro.engine.state import CharacterizationState
from repro.ngram.evaluate import run_table3
from repro.periodicity.detector import DetectorConfig
from repro.periodicity.results import analyze_logs
from repro.synth.workload import (
    WorkloadBuilder,
    long_term_config,
    short_term_config,
)

ENGINE_BENCH_SEED = 2019
ENGINE_WORKERS = 4

#: The pattern pipelines bench on the long-term (24 h) shape — it is
#: the one with enough per-flow history for detection and prediction
#: to do real work — at a request count whose serial run is seconds,
#: not minutes (the detector dominates).
PATTERN_BENCH_SEED = 11
PATTERN_DETECTOR = DetectorConfig(permutations=25)

#: Assert parallel speedup only where it is physically possible and
#: the serial run is long enough that pool start-up noise cannot
#: drown the signal.
SPEEDUP_FLOOR = 1.5
MIN_CPUS_FOR_SPEEDUP = 4
MIN_SERIAL_SECONDS_FOR_SPEEDUP = 1.0


def _engine_requests() -> int:
    return int(os.environ.get("REPRO_ENGINE_BENCH_REQUESTS", "200000"))


def _pattern_requests() -> int:
    return int(os.environ.get("REPRO_ENGINE_BENCH_PATTERN_REQUESTS", "8000"))


def _assert_or_report_speedup(name, serial_seconds, parallel_seconds):
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    gated = (
        (os.cpu_count() or 1) >= MIN_CPUS_FOR_SPEEDUP
        and serial_seconds >= MIN_SERIAL_SECONDS_FOR_SPEEDUP
    )
    print(
        f"speedup:  {speedup:8.2f}x"
        f"  ({'asserted > %.1fx' % SPEEDUP_FLOOR if gated else 'informational'})"
    )
    if gated:
        assert speedup > SPEEDUP_FLOOR, (
            f"{name}: expected > {SPEEDUP_FLOOR}x speedup at "
            f"{ENGINE_WORKERS} process workers, got {speedup:.2f}x "
            f"(serial {serial_seconds:.2f}s, parallel {parallel_seconds:.2f}s)"
        )


@pytest.fixture(scope="module")
def engine_dataset():
    config = short_term_config(_engine_requests(), seed=ENGINE_BENCH_SEED)
    return WorkloadBuilder(config).build()


@pytest.fixture(scope="module")
def domain_categories(engine_dataset):
    return {d.name: d.category.value for d in engine_dataset.domains}


@pytest.fixture(scope="module")
def pattern_dataset():
    config = long_term_config(_pattern_requests(), seed=PATTERN_BENCH_SEED)
    return WorkloadBuilder(config).build()


def test_perf_engine_serial_vs_parallel(engine_dataset, domain_categories):
    """Serial vs 4-worker wall time, with identical counter metrics."""
    logs = engine_dataset.logs

    start = time.perf_counter()
    serial = run_characterization(logs, domain_categories)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel, stats = run_characterization_parallel(
        logs,
        domain_categories,
        workers=ENGINE_WORKERS,
        with_stats=True,
    )
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    print(f"\n=== engine benchmark ({len(logs):,} requests) ===")
    print(f"serial:   {serial_seconds:8.3f} s")
    print(
        f"parallel: {parallel_seconds:8.3f} s"
        f"  ({ENGINE_WORKERS} workers, {stats.total_shards} shards,"
        f" backend={stats.backend})"
    )
    print(f"speedup:  {speedup:8.2f}x  (informational; host-dependent)")

    # The acceptance invariant: counters merge losslessly, so the
    # parallel report is byte-identical to serial on every counter
    # metric no matter how shards were scheduled.
    assert parallel.traffic_source == serial.traffic_source
    assert parallel.request_type == serial.request_type
    assert parallel.cacheability == serial.cacheability
    assert parallel.summary == serial.summary
    assert parallel.heatmap == serial.heatmap
    assert stats.total_records == len(logs)
    assert not stats.failed


def test_perf_engine_periodicity_serial_vs_parallel(pattern_dataset):
    """§5.1 serial vs 4-worker process run, identical outcomes."""
    logs = pattern_dataset.logs

    start = time.perf_counter()
    serial = analyze_logs(logs, detector_config=PATTERN_DETECTOR)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel, stage_reports = run_periodicity_parallel(
        logs,
        detector_config=PATTERN_DETECTOR,
        workers=ENGINE_WORKERS,
        backend="process",
        with_stats=True,
    )
    parallel_seconds = time.perf_counter() - start

    shards = sum(report.total_shards for report in stage_reports)
    print(f"\n=== periodicity benchmark ({len(logs):,} requests) ===")
    print(f"serial:   {serial_seconds:8.3f} s")
    print(
        f"parallel: {parallel_seconds:8.3f} s"
        f"  ({ENGINE_WORKERS} workers, {shards} shards, backend=process)"
    )

    # Exactness first: the whole per-object outcome map (periods,
    # provenance, per-client verdicts, tallies) must be identical.
    assert parallel.total_json_requests == serial.total_json_requests
    assert sorted(parallel.objects) == sorted(serial.objects)
    for object_id, expected in serial.objects.items():
        assert parallel.objects[object_id] == expected, object_id
    assert len(serial.object_periods()) >= 3, "bench workload too sparse"

    _assert_or_report_speedup("periodicity", serial_seconds, parallel_seconds)


def test_perf_engine_ngram_serial_vs_parallel(pattern_dataset):
    """§5.2 serial vs 4-worker process run, identical hit counts."""
    logs = pattern_dataset.logs

    start = time.perf_counter()
    serial = run_table3(logs)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel, stage_reports = run_ngram_parallel(
        logs, workers=ENGINE_WORKERS, backend="process", with_stats=True
    )
    parallel_seconds = time.perf_counter() - start

    shards = sum(report.total_shards for report in stage_reports)
    print(f"\n=== ngram benchmark ({len(logs):,} requests) ===")
    print(f"serial:   {serial_seconds:8.3f} s")
    print(
        f"parallel: {parallel_seconds:8.3f} s"
        f"  ({ENGINE_WORKERS} workers, {shards} shards, backend=process)"
    )

    assert parallel == serial
    assert all(result.total > 100 for result in serial.values()), (
        "bench workload too sparse"
    )

    _assert_or_report_speedup("ngram", serial_seconds, parallel_seconds)


def test_perf_engine_hll_within_two_percent(engine_dataset):
    """Merged sketch unique-client estimate tracks the exact count."""
    state = CharacterizationState().update(engine_dataset.logs)
    exact = state.summary.num_clients
    estimate = state.unique_clients_estimate()
    error = abs(estimate - exact) / exact
    print(
        f"\nunique clients: exact {exact:,}, HLL estimate {estimate:,.0f}"
        f" ({error:.2%} error)"
    )
    assert error < 0.02


def test_perf_engine_hll_100k_clients():
    """HLL stays within 2% at 100k distinct clients (paper scale)."""
    sketch = HyperLogLog()
    count = 100_000
    start = time.perf_counter()
    for index in range(count):
        sketch.add(f"client-{index:08d}")
    seconds = time.perf_counter() - start
    estimate = sketch.estimate()
    error = abs(estimate - count) / count
    print(
        f"\nHLL 100k insert: {seconds:.3f} s"
        f" ({count / seconds:,.0f} adds/s), estimate {estimate:,.0f}"
        f" ({error:.2%} error)"
    )
    assert error < 0.02
