"""Throughput benchmark for the online stream subsystem.

Replays one seeded workload from a partitioned log directory through
the full service — bounded ingest queue, event-time windows,
per-window snapshots — at 1 and N ingest workers, reporting
records/sec for each path plus the zero-queue in-process replay as
the upper bound.  ``REPRO_STREAM_BENCH_REQUESTS`` shrinks the dataset
for CI.

Machine-independent invariants are asserted; throughput numbers are
informational (they land in the CI artifact):

- every path windows every record — no drops, nothing late — because
  per-source watermark frontiers absorb ingest interleaving;
- all paths seal the same number of windows;
- the merged per-window states are identical across paths (counter
  equality on the characterization summary).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.pipeline import run_stream
from repro.logs.partition import write_partitioned
from repro.stream import merge_accumulators, merged_characterization
from repro.synth.workload import WorkloadBuilder, short_term_config

STREAM_BENCH_SEED = 2019
WINDOW_S = 300.0
WATERMARK_LAG_S = 30.0
PARALLEL_WORKERS = 4


def _stream_requests() -> int:
    return int(os.environ.get("REPRO_STREAM_BENCH_REQUESTS", "150000"))


@pytest.fixture(scope="module")
def dataset():
    config = short_term_config(_stream_requests(), seed=STREAM_BENCH_SEED)
    return WorkloadBuilder(config).build()


@pytest.fixture(scope="module")
def partitioned_dir(dataset, tmp_path_factory):
    root = tmp_path_factory.mktemp("stream-bench") / "parts"
    write_partitioned(dataset.logs, root, fmt="jsonl")
    return str(root)


def _timed_run(**kwargs):
    start = time.perf_counter()
    result = run_stream(
        window_s=WINDOW_S,
        watermark_lag_s=WATERMARK_LAG_S,
        detect_periods=False,  # measure the pipeline, not the detector
        predict_urls=False,
        keep_accumulators=True,
        **kwargs,
    )
    return result, time.perf_counter() - start


def test_perf_stream_ingest_throughput(dataset, partitioned_dir):
    """Records/sec: in-process replay vs 1 vs N ingest workers."""
    logs = dataset.logs
    total = len(logs)

    replay_result, replay_seconds = _timed_run(logs=logs)
    serial_result, serial_seconds = _timed_run(
        logs_dir=partitioned_dir, ingest_workers=1
    )
    parallel_result, parallel_seconds = _timed_run(
        logs_dir=partitioned_dir, ingest_workers=PARALLEL_WORKERS
    )

    print(f"\n=== stream benchmark ({total:,} requests, "
          f"{serial_result.sealed_windows} windows of {WINDOW_S:.0f}s) ===")
    for name, result, seconds in (
        ("replay (no queue)", replay_result, replay_seconds),
        ("ingest x1", serial_result, serial_seconds),
        (f"ingest x{PARALLEL_WORKERS}", parallel_result, parallel_seconds),
    ):
        rate = total / seconds if seconds else 0.0
        queue_note = ""
        if result.ingest is not None:
            stats = result.ingest.snapshot()
            queue_note = (
                f"  (sources={stats['sources']}, "
                f"queue peak {stats['queue_peak']}, "
                f"stalls {stats['blocked_puts']})"
            )
        print(
            f"{name:<18} {seconds:8.3f} s  {rate:10,.0f} rec/s{queue_note}"
        )

    for result in (replay_result, serial_result, parallel_result):
        assert result.records_windowed == total
        assert result.late_dropped == 0
        assert result.ingest is None or result.ingest.dropped == 0
    assert (
        replay_result.sealed_windows
        == serial_result.sealed_windows
        == parallel_result.sealed_windows
    )

    reference = merged_characterization(
        merge_accumulators(replay_result.accumulators)
    )
    for result in (serial_result, parallel_result):
        merged = merged_characterization(
            merge_accumulators(result.accumulators)
        )
        assert merged.summary == reference.summary
        assert merged.cacheability == reference.cacheability


def test_perf_stream_backpressure_is_bounded(dataset):
    """A tiny queue throttles ingest without losing a record."""
    from repro.stream import StreamConfig, StreamService

    logs = dataset.logs
    config = StreamConfig(
        window_s=WINDOW_S,
        watermark_lag_s=WATERMARK_LAG_S,
        detect_periods=False,
        predict_urls=False,
        queue_capacity=128,
    )
    start = time.perf_counter()
    queued = StreamService(config).run([iter(logs)])
    queued_seconds = time.perf_counter() - start
    rate = len(logs) / queued_seconds if queued_seconds else 0.0
    stats = queued.ingest.snapshot()
    print(
        f"\nbounded queue (cap 128): {queued_seconds:.3f} s "
        f"{rate:10,.0f} rec/s, peak {stats['queue_peak']}, "
        f"stalls {stats['blocked_puts']}"
    )
    assert stats["queue_peak"] <= 128
    assert stats["dropped"] == 0
    assert queued.records_windowed == len(logs)
