"""§4 response type — cacheability and sizes.

Paper: ~55% of JSON traffic is uncacheable; JSON objects are 24% and
87% smaller than HTML at the median and 75th percentile; the mean
JSON response size decreased ~28% between 2016 and 2019.
"""

import numpy as np

from repro.analysis.cacheability import analyze_cacheability
from repro.analysis.sizes import compare_sizes
from repro.synth.calibration import PAPER
from repro.synth.domains import DomainPopulation
from repro.synth.rng import substream
from repro.synth.sizes import SizeModel

from .conftest import BENCH_SEED, print_comparison


def test_sec4_uncacheable_fraction(short_bench_json, benchmark):
    stats, _ = benchmark.pedantic(
        lambda: analyze_cacheability(short_bench_json, json_only=False),
        rounds=1,
        iterations=1,
    )
    print_comparison(
        "§4 — cacheability",
        [
            ("uncacheable JSON fraction", PAPER.uncacheable_fraction,
             stats.uncacheable_fraction),
            ("origin-bound fraction", 0.6, stats.origin_fraction),
        ],
    )
    assert abs(stats.uncacheable_fraction - PAPER.uncacheable_fraction) < 0.08
    # Uncacheable + missed traffic tunnels to origins: more than half.
    assert stats.origin_fraction > 0.5


def test_sec4_json_vs_html_sizes(short_bench_dataset, benchmark):
    comparison = benchmark.pedantic(
        lambda: compare_sizes(short_bench_dataset.logs), rounds=1, iterations=1
    )
    print_comparison(
        "§4 — JSON vs HTML sizes (smaller by)",
        [
            ("at p50", PAPER.json_vs_html_p50_smaller, comparison.smaller_at_p50),
            ("at p75", PAPER.json_vs_html_p75_smaller, comparison.smaller_at_p75),
        ],
    )
    # Shape: modestly smaller at the median, drastically at p75.
    assert 0.05 < comparison.smaller_at_p50 < 0.45
    assert abs(comparison.smaller_at_p75 - PAPER.json_vs_html_p75_smaller) < 0.10
    assert comparison.smaller_at_p75 > comparison.smaller_at_p50 + 0.3


def test_sec4_json_size_decrease_since_2016(benchmark):
    """Mean JSON size in a 2016-epoch dataset vs the 2019 epoch."""
    domains = DomainPopulation(num_domains=50, seed=BENCH_SEED)

    def mean_size(year):
        model = SizeModel(substream(BENCH_SEED, "bench-sizes"), year=year)
        sizes = [
            model.sample(endpoint)
            for domain in domains
            for endpoint in domain.json_endpoints
            for _ in range(10)
        ]
        return float(np.mean(sizes))

    def decrease():
        return 1.0 - mean_size(2019.0) / mean_size(2016.0)

    measured = benchmark.pedantic(decrease, rounds=1, iterations=1)
    print_comparison(
        "§4 — JSON mean size decrease 2016→2019",
        [("relative decrease", PAPER.json_size_decrease_since_2016, measured)],
    )
    assert abs(measured - PAPER.json_size_decrease_since_2016) < 0.08


def test_sec4_cpu_cost_per_byte(short_bench_dataset, benchmark):
    """§4's provisioning claim: smaller JSON responses mean more CPU
    per delivered byte than HTML, and the 2016→2019 JSON shrink makes
    it worse."""
    from repro.analysis.cost import CostModel, serving_costs

    costs = benchmark.pedantic(
        lambda: serving_costs(short_bench_dataset.logs), rounds=1, iterations=1
    )
    json_cost = costs["application/json"]
    html_cost = costs["text/html"]
    ratio = json_cost.cost_per_byte / html_cost.cost_per_byte

    # The 2016→2019 28% shrink alone raises JSON's cost per byte:
    model = CostModel()
    shrink_effect = model.cost_per_byte(
        json_cost.mean_bytes
    ) / model.cost_per_byte(json_cost.mean_bytes / 0.72)
    print_comparison(
        "§4 — CPU cost per byte",
        [
            ("JSON mean bytes", "-", json_cost.mean_bytes),
            ("HTML mean bytes", "-", html_cost.mean_bytes),
            ("JSON/HTML cost-per-byte ratio", ">1", ratio),
            ("cost/byte increase from 28% shrink", ">1", shrink_effect),
        ],
    )
    assert ratio > 1.5
    assert shrink_effect > 1.05
