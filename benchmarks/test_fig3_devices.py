"""Figure 3 + §4 traffic source.

Paper: mobile ≥55% of JSON requests, embedded 12%, unknown 24%
(desktop is the ~9% remainder); 88% of JSON traffic is non-browser;
mobile browser traffic is 2.5% of all requests; no browser traffic on
embedded devices; UA-string mix is 73% mobile / 17% embedded /
3% desktop / 7% unknown.
"""

from repro.analysis.characterize import characterize
from repro.synth.calibration import PAPER

from .conftest import print_comparison

_REPORT = {}


def _characterized(json_logs):
    if "source" not in _REPORT:
        source, request_type = characterize(json_logs, json_only=False)
        _REPORT["source"] = source
        _REPORT["request_type"] = request_type
    return _REPORT["source"], _REPORT["request_type"]


def test_fig3_device_mix(short_bench_json, benchmark):
    source, _ = benchmark.pedantic(
        lambda: _characterized(short_bench_json), rounds=1, iterations=1
    )
    shares = source.device_shares()
    print_comparison(
        "Figure 3 — JSON requests by device type",
        [
            (device, PAPER.device_mix[device], shares[device])
            for device in ("mobile", "embedded", "desktop", "unknown")
        ],
    )
    for device, expected in PAPER.device_mix.items():
        assert abs(shares[device] - expected) < 0.05, device


def test_fig3_browser_split(short_bench_json, benchmark):
    source, _ = benchmark.pedantic(
        lambda: _characterized(short_bench_json), rounds=1, iterations=1
    )
    print_comparison(
        "§4 — browser vs non-browser",
        [
            ("non-browser fraction", PAPER.non_browser_fraction,
             source.non_browser_fraction),
            ("mobile browser fraction", PAPER.mobile_browser_fraction,
             source.mobile_browser_fraction),
            ("embedded browser fraction", 0.0, source.embedded_browser_fraction),
            ("mobile app fraction (>=)", PAPER.mobile_app_fraction_min,
             source.mobile_app_fraction),
        ],
    )
    assert abs(source.non_browser_fraction - PAPER.non_browser_fraction) < 0.04
    assert abs(source.mobile_browser_fraction - PAPER.mobile_browser_fraction) < 0.02
    # "No browser traffic is detected on embedded devices."
    assert source.embedded_browser_fraction == 0.0
    # "At least 52% of JSON traffic is from native mobile applications."
    assert source.mobile_app_fraction >= PAPER.mobile_app_fraction_min - 0.03


def test_fig3_ua_string_mix(short_bench_json, benchmark):
    source, _ = benchmark.pedantic(
        lambda: _characterized(short_bench_json), rounds=1, iterations=1
    )
    mix = source.ua_string_shares()
    print_comparison(
        "§4 — unique UA-string mix",
        [
            (device, PAPER.ua_string_mix[device], mix.get(device, 0.0))
            for device in ("mobile", "embedded", "desktop", "unknown")
        ],
    )
    # Shape: mobile strings dominate, desktop strings are rare.
    assert mix["mobile"] > 0.5
    assert mix["mobile"] > mix.get("embedded", 0) > mix.get("desktop", 0)
