"""Ablation A2 — ngram history depth N and backoff.

Paper (§5.2): "Using larger N like N=5 only marginally increases
accuracy by up to 5%."  This ablation sweeps N and also removes the
backoff (order-N counts only), showing backoff is what keeps deeper
models from collapsing on sparse histories.
"""

import pytest

from repro.ngram.evaluate import (
    build_client_sequences,
    evaluate_topk,
    split_clients,
)
from repro.ngram.model import BackoffNgramModel

from .conftest import print_comparison

_CACHE = {}


def _splits(json_logs):
    if "splits" not in _CACHE:
        sequences = build_client_sequences(json_logs, clustered=False)
        train_ids, test_ids = split_clients(sequences, test_fraction=0.25, seed=0)
        _CACHE["splits"] = (
            [sequences[cid] for cid in train_ids],
            [sequences[cid] for cid in test_ids],
        )
    return _CACHE["splits"]


def test_abl_history_depth(long_bench_json, benchmark):
    train, test = _splits(long_bench_json)

    def sweep():
        model = BackoffNgramModel(order=5)
        model.fit(train)
        return {
            n: evaluate_topk(model, test, n=n, ks=[10])[0].accuracy
            for n in (1, 2, 3, 5)
        }

    accuracy = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_comparison(
        "A2 — history depth N (top-10 accuracy)",
        [(f"N={n}", "-", acc) for n, acc in accuracy.items()],
    )
    # The paper's finding: deeper history moves accuracy by at most a
    # few points in either direction — N=1 already captures the
    # transition structure.
    for n in (2, 3, 5):
        assert abs(accuracy[n] - accuracy[1]) <= 0.06, n


def test_abl_backoff_matters(long_bench_json, benchmark):
    """Order-5 predictions *without* backoff collapse on sparse data."""
    train, test = _splits(long_bench_json)

    def compare():
        backoff_model = BackoffNgramModel(order=5)
        backoff_model.fit(train)
        with_backoff = evaluate_topk(backoff_model, test, n=5, ks=[10])[0].accuracy

        # No-backoff: score only exact order-5 histories.
        correct = total = 0
        for sequence in test:
            for position in range(1, len(sequence)):
                history = tuple(sequence[max(0, position - 5) : position])
                successors = backoff_model.successors(history)
                ranked = sorted(successors, key=successors.get, reverse=True)[:10]
                total += 1
                if sequence[position] in ranked:
                    correct += 1
        without_backoff = correct / total
        return with_backoff, without_backoff

    with_backoff, without_backoff = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print_comparison(
        "A2 — backoff ablation (N=5, top-10 accuracy)",
        [
            ("with backoff", "-", with_backoff),
            ("exact-history only", "-", without_backoff),
        ],
    )
    assert with_backoff > without_backoff + 0.05


def test_abl_accuracy_by_position(long_bench_json, benchmark):
    """Where in the client flow prediction earns its keep.

    Position 1 of a client's (multi-session) stream skews toward
    session openings — config fetch, home manifest — which are the
    most structurally forced transitions; deeper positions mix in
    content navigation, which carries the entropy.
    """
    from repro.ngram.evaluate import accuracy_by_position

    train, test = _splits(long_bench_json)

    def run():
        model = BackoffNgramModel(order=1)
        model.fit(train)
        return accuracy_by_position(model, test, n=1, k=10, max_position=8)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_comparison(
        "A2 — top-10 accuracy by session position",
        [(f"position {r.n if False else i + 1}", "-", r.accuracy)
         for i, r in enumerate(results)],
    )
    # The opening transition is the most predictable position.
    assert results[0].accuracy == max(result.accuracy for result in results)
    rest = [result.accuracy for result in results[1:]]
    assert results[0].accuracy > sum(rest) / len(rest) + 0.03
