"""Ablation A4 — cache hierarchy depth.

§4 observes that uncacheable-or-missed JSON "propagates from the edge
server through the CDN to origin content servers".  Real CDNs insert
a regional parent tier on that path; this ablation measures how much
origin load the tier absorbs for the JSON workload, replaying the
same event stream through flat (edge→origin) and tiered
(edge→parent→origin) deployments.
"""

import pytest

from repro.cdn.cache import LruTtlCache
from repro.cdn.edge import EdgeServer
from repro.cdn.metrics import DeliveryMetrics
from repro.cdn.network import LatencyModel
from repro.cdn.origin import OriginFleet
from repro.synth.rng import substream
from repro.synth.sizes import SizeModel
from repro.synth.workload import WorkloadBuilder, long_term_config

from .conftest import BENCH_SEED, print_comparison


@pytest.fixture(scope="module")
def event_stream(bench_scale):
    config = long_term_config(
        min(bench_scale, 50_000), seed=BENCH_SEED + 4, num_domains=80,
        num_edges=6,
    )
    builder = WorkloadBuilder(config)
    events, _ = builder.build_events()
    return builder, events


def _replay(builder, events, tiered: bool):
    origins = OriginFleet()
    parent = LruTtlCache(1 << 28) if tiered else None
    size_model = SizeModel(substream(BENCH_SEED, "a4", "sz"))
    edges = [
        EdgeServer(
            f"edge-{index}",
            LruTtlCache(1 << 24),
            origins,
            LatencyModel(substream(BENCH_SEED, "a4", "lat", str(index))),
            size_model,
            substream(BENCH_SEED, "a4", "edge", str(index)),
            parent=parent,
        )
        for index in range(builder.config.num_edges)
    ]
    metrics = DeliveryMetrics()
    for event in events:
        edge = edges[int(event.client.ip_hash[:8], 16) % len(edges)]
        metrics.record(edge.serve(event))
    parent_hits = sum(edge.parent_hits for edge in edges)
    return metrics, origins, parent_hits


def test_abl_parent_tier_offloads_origin(event_stream, benchmark):
    builder, events = event_stream

    def run_both():
        flat = _replay(builder, events, tiered=False)
        tiered = _replay(builder, events, tiered=True)
        return flat, tiered

    (flat_metrics, flat_origins, _), (tier_metrics, tier_origins, parent_hits) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )

    saved = 1.0 - tier_origins.total_requests / flat_origins.total_requests
    print_comparison(
        "A4 — parent cache tier",
        [
            ("origin fetches (flat)", "-", float(flat_origins.total_requests)),
            ("origin fetches (tiered)", "-", float(tier_origins.total_requests)),
            ("origin load saved", "-", saved),
            ("parent-tier hits", "-", float(parent_hits)),
            ("edge hit ratio (flat)", "-", flat_metrics.hit_ratio),
            ("edge hit ratio (tiered)", "-", tier_metrics.hit_ratio),
        ],
    )

    # The tier absorbs cross-edge redundancy: real origin savings...
    assert tier_origins.total_requests < flat_origins.total_requests
    assert saved > 0.03
    assert parent_hits > 0
    # ...without changing the edge-level hit ratio (same caches).
    assert abs(tier_metrics.hit_ratio - flat_metrics.hit_ratio) < 0.01
    # And mean latency improves (parent hops are shorter than origin).
    assert tier_metrics.mean_latency_s < flat_metrics.mean_latency_s
