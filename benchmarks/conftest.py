"""Shared benchmark fixtures.

Datasets are built once per session at a scale controlled by the
``REPRO_BENCH_REQUESTS`` environment variable (default 80,000 JSON
requests — large enough for stable marginals, small enough to run the
whole harness in minutes).  Heavy analyses are cached in module-level
stores so that e.g. Figure 5 and Figure 6 share one detection run
while each still benchmarks its own aggregation.
"""

from __future__ import annotations

import os

import pytest

from repro.synth.workload import (
    WorkloadBuilder,
    long_term_config,
    short_term_config,
)

BENCH_SEED = 2019


def _bench_requests() -> int:
    return int(os.environ.get("REPRO_BENCH_REQUESTS", "80000"))


@pytest.fixture(scope="session")
def bench_scale() -> int:
    return _bench_requests()


@pytest.fixture(scope="session")
def short_bench_dataset():
    """Short-term-shaped dataset (10 min, wide) for §4 benchmarks."""
    config = short_term_config(_bench_requests(), seed=BENCH_SEED)
    return WorkloadBuilder(config).build()


@pytest.fixture(scope="session")
def long_bench_dataset():
    """Long-term-shaped dataset (24 h, narrow) for §5 benchmarks."""
    config = long_term_config(_bench_requests(), seed=BENCH_SEED)
    return WorkloadBuilder(config).build()


@pytest.fixture(scope="session")
def short_bench_json(short_bench_dataset):
    return [record for record in short_bench_dataset.logs if record.is_json]


@pytest.fixture(scope="session")
def long_bench_json(long_bench_dataset):
    return [record for record in long_bench_dataset.logs if record.is_json]


def print_comparison(title, rows):
    """Print a paper-vs-measured table.

    ``rows`` is a list of (metric, paper value, measured value).
    """
    width = max(len(str(metric)) for metric, _, _ in rows)
    print(f"\n=== {title} ===")
    print(f"{'metric'.ljust(width)}  {'paper':>10}  {'measured':>10}")
    for metric, paper, measured in rows:
        paper_s = f"{paper:.3f}" if isinstance(paper, float) else str(paper)
        meas_s = f"{measured:.3f}" if isinstance(measured, float) else str(measured)
        print(f"{str(metric).ljust(width)}  {paper_s:>10}  {meas_s:>10}")
