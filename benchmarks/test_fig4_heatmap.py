"""Figure 4 — heatmap of domain cacheability by industry category.

Paper: nearly 50% of domains serve never-cacheable content and ~30%
serve always-cacheable content; Financial Services, Streaming, and
Gaming are dominated by uncacheable domains while News/Media, Sports,
and Entertainment are mostly cacheable.
"""

from repro.analysis.cacheability import analyze_cacheability
from repro.core.report import render_heatmap
from repro.synth.calibration import PAPER

from .conftest import print_comparison

_CACHE = {}


def _heatmap(dataset, json_logs):
    if "heatmap" not in _CACHE:
        categories = {d.name: d.category.value for d in dataset.domains}
        _, heatmap = analyze_cacheability(json_logs, categories, json_only=False)
        _CACHE["heatmap"] = heatmap
    return _CACHE["heatmap"]


def test_fig4_domain_marginals(short_bench_dataset, short_bench_json, benchmark):
    heatmap = benchmark.pedantic(
        lambda: _heatmap(short_bench_dataset, short_bench_json),
        rounds=1, iterations=1,
    )
    shares = heatmap.bucket_shares()
    print_comparison(
        "Figure 4 — domain cacheability marginals",
        [
            ("never-cacheable domains", PAPER.domains_never_cacheable,
             shares["never"]),
            ("always-cacheable domains", PAPER.domains_always_cacheable,
             shares["always"]),
        ],
    )
    assert abs(shares["never"] - PAPER.domains_never_cacheable) < 0.08
    assert abs(shares["always"] - PAPER.domains_always_cacheable) < 0.08


def test_fig4_industry_story(short_bench_dataset, short_bench_json, benchmark):
    heatmap = benchmark.pedantic(
        lambda: _heatmap(short_bench_dataset, short_bench_json),
        rounds=1, iterations=1,
    )
    print()
    print(
        render_heatmap(
            heatmap.rows(),
            columns=("never", "low", "mid", "high", "always"),
            title="Figure 4 — domain cacheability by category",
        )
    )
    dynamic = ("Financial Services", "Streaming", "Gaming")
    static = ("News/Media", "Sports", "Entertainment")
    dynamic_share = [heatmap.category_cacheable_share(c) for c in dynamic]
    static_share = [heatmap.category_cacheable_share(c) for c in static]
    print_comparison(
        "Figure 4 — per-industry cacheable share",
        [(c, "low", s) for c, s in zip(dynamic, dynamic_share)]
        + [(c, "high", s) for c, s in zip(static, static_share)],
    )
    # Every dynamic industry is less cacheable than every static one.
    assert max(dynamic_share) < min(static_share)
    assert all(share < 0.35 for share in dynamic_share)
    assert all(share > 0.55 for share in static_share)
