"""Overhead benchmark for the repro.obs observability layer.

The instrumentation rides hot paths — the executor's shard loop, the
stream's per-record windowing, the checkpoint store — so it must be
near-free when no registry is installed (a single nil check) and
cheap when one is.  This benchmark runs the sharded characterization
pipeline with and without an installed registry, best-of-three each,
and gates the enabled-vs-disabled overhead at
``REPRO_OBS_OVERHEAD_LIMIT`` (default 5%, the acceptance bar) plus a
small absolute floor so sub-second runs on noisy CI hosts don't flake
on scheduler jitter.

``REPRO_OBS_BENCH_REQUESTS`` (default 60,000) scales the dataset.
"""

from __future__ import annotations

import os
import time

from repro import obs
from repro.core.pipeline import run_characterization_parallel, run_stream
from repro.obs import runtime
from repro.obs.registry import MetricsRegistry
from repro.synth.workload import WorkloadBuilder, short_term_config

OBS_BENCH_SEED = 2019
WORKERS = 4
NUM_SHARDS = 16
REPEATS = 3
#: Absolute slack (seconds) added to the relative gate: on short runs
#: scheduler noise alone exceeds any realistic relative bound.
ABSOLUTE_SLACK_S = 0.25


def _requests() -> int:
    return int(os.environ.get("REPRO_OBS_BENCH_REQUESTS", "60000"))


def _overhead_limit() -> float:
    return float(os.environ.get("REPRO_OBS_OVERHEAD_LIMIT", "0.05"))


def _best_of_interleaved(repeats, disabled_fn, enabled_fn):
    """Best-of-N for both variants, rounds interleaved.

    Alternating the variants inside each round means slow drift on a
    shared CI host (thermal, noisy neighbors) hits both measurements
    alike instead of biasing whichever block ran second.
    """
    best_disabled = best_enabled = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        disabled_fn()
        best_disabled = min(best_disabled, time.perf_counter() - start)
        start = time.perf_counter()
        enabled_fn()
        best_enabled = min(best_enabled, time.perf_counter() - start)
    return best_disabled, best_enabled


def _gate(name, disabled_s, enabled_s):
    limit = _overhead_limit()
    overhead = (enabled_s - disabled_s) / disabled_s if disabled_s else 0.0
    budget_s = disabled_s * limit + ABSOLUTE_SLACK_S
    print(f"\n=== obs overhead: {name} ===")
    print(f"disabled: {disabled_s:8.3f} s (best of {REPEATS})")
    print(f"enabled:  {enabled_s:8.3f} s (best of {REPEATS})")
    print(
        f"overhead: {overhead * 100:+8.2f}%"
        f"  (gate: {limit * 100:.0f}% + {ABSOLUTE_SLACK_S:.2f}s slack)"
    )
    assert enabled_s - disabled_s <= budget_s, (
        f"{name}: observability overhead {overhead * 100:.1f}% "
        f"({enabled_s - disabled_s:.3f}s) exceeds the "
        f"{limit * 100:.0f}% + {ABSOLUTE_SLACK_S:.2f}s budget"
    )


def test_perf_obs_engine_overhead():
    logs = WorkloadBuilder(
        short_term_config(_requests(), seed=OBS_BENCH_SEED)
    ).build().logs

    def run():
        run_characterization_parallel(
            logs, workers=WORKERS, backend="thread", num_shards=NUM_SHARDS
        )

    def run_instrumented():
        with obs.installed(MetricsRegistry()):
            run()

    run()  # warm caches outside the timed region
    disabled_s, enabled_s = _best_of_interleaved(
        REPEATS, run, run_instrumented
    )
    assert runtime.active() is None
    _gate("engine characterization", disabled_s, enabled_s)


def test_perf_obs_stream_overhead():
    # The stream path instruments per-record loops (window routing,
    # ingest delivery) — the place a careless hook would hurt most.
    logs = WorkloadBuilder(
        short_term_config(_requests() // 2, seed=OBS_BENCH_SEED)
    ).build().logs

    def run():
        run_stream(
            logs, window_s=120.0, detect_periods=False, predict_urls=False
        )

    def run_instrumented():
        with obs.installed(MetricsRegistry()):
            run()

    run()
    disabled_s, enabled_s = _best_of_interleaved(
        REPEATS, run, run_instrumented
    )
    assert runtime.active() is None
    _gate("stream windowing", disabled_s, enabled_s)
