"""Extension X2 — deprioritizing machine-to-machine traffic (§5.1).

"One possible optimization is for CDN operators to deprioritize
machine-to-machine traffic since a human is not waiting for the
response."  This experiment quantifies it: requests from the
long-term workload become jobs on a contended edge resource; M2M jobs
(ground-truth periodic flows) are tagged low priority; we compare
human-perceived queueing delay under FIFO vs two-class priority.
"""

import pytest

from repro.cdn.scheduler import HUMAN, MACHINE, Job, simulate
from repro.synth.rng import substream
from repro.synth.workload import WorkloadBuilder, long_term_config

from .conftest import BENCH_SEED, print_comparison


@pytest.fixture(scope="module")
def job_mix(bench_scale):
    config = long_term_config(
        min(bench_scale, 60_000), seed=BENCH_SEED + 2, num_domains=80
    )
    builder = WorkloadBuilder(config)
    events, truth = builder.build_events()
    rng = substream(BENCH_SEED, "x2", "service")

    # Compress the 24h arrival timeline so the shared resource is
    # contended but stable: target ~0.85 utilization on 4 servers.
    # (An overloaded queue grows without bound and measures nothing.)
    start = config.start_time
    raw = []
    total_service = 0.0
    for index, event in enumerate(events):
        key = (event.client.client_key, f"{event.domain.name}{event.endpoint.url}")
        priority = MACHINE if key in truth.periodic_flows else HUMAN
        service = rng.lognormvariate(-4.0, 0.5)  # ~18 ms median origin work
        total_service += service
        raw.append((event.timestamp - start, service, priority, index))
    target_span = total_service / (4 * 0.85)
    compression = config.duration_s / target_span
    return [
        Job(offset / compression, service, priority, index)
        for offset, service, priority, index in raw
    ]


def test_ext_depri_human_latency_improves(job_mix, benchmark):
    def run_both():
        fifo = simulate(job_mix, num_servers=4, priority_classes=False)
        prio = simulate(job_mix, num_servers=4, priority_classes=True)
        return fifo, prio

    fifo, prio = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_comparison(
        "X2 — M2M deprioritization (waits in ms)",
        [
            ("human mean wait FIFO", "-", fifo[HUMAN].mean_wait_s * 1e3),
            ("human mean wait PRIO", "-", prio[HUMAN].mean_wait_s * 1e3),
            ("human p95 wait FIFO", "-", fifo[HUMAN].percentile_wait_s(95) * 1e3),
            ("human p95 wait PRIO", "-", prio[HUMAN].percentile_wait_s(95) * 1e3),
            ("machine mean wait FIFO", "-", fifo[MACHINE].mean_wait_s * 1e3),
            ("machine mean wait PRIO", "-", prio[MACHINE].mean_wait_s * 1e3),
        ],
    )

    # Humans benefit; machines pay; nothing is lost.
    assert prio[HUMAN].mean_wait_s <= fifo[HUMAN].mean_wait_s
    assert prio[MACHINE].mean_wait_s >= fifo[MACHINE].mean_wait_s
    assert fifo[HUMAN].count == prio[HUMAN].count
    assert fifo[MACHINE].count == prio[MACHINE].count
    # M2M traffic is a meaningful share of jobs (≈ the 6.3% of §5.1).
    machine_share = fifo[MACHINE].count / (
        fifo[MACHINE].count + fifo[HUMAN].count
    )
    assert 0.03 < machine_share < 0.12


def test_ext_depri_effect_grows_with_load(job_mix, benchmark):
    """Under heavier contention the human-side benefit grows."""

    def gains():
        out = {}
        for servers in (8, 4):
            fifo = simulate(job_mix, num_servers=servers, priority_classes=False)
            prio = simulate(job_mix, num_servers=servers, priority_classes=True)
            out[servers] = fifo[HUMAN].mean_wait_s - prio[HUMAN].mean_wait_s
        return out

    gain = benchmark.pedantic(gains, rounds=1, iterations=1)
    print_comparison(
        "X2 — benefit vs load",
        [
            ("human wait saved, 8 servers (ms)", "-", gain[8] * 1e3),
            ("human wait saved, 4 servers (ms)", "-", gain[4] * 1e3),
        ],
    )
    assert gain[4] >= gain[8] - 1e-6
