"""Setup shim: enables legacy editable installs on environments
without the `wheel` package (PEP 660 editable wheels need it)."""
from setuptools import setup

setup()
