"""Unit tests for repro.obs: sketch, registry, runtime, spans, export."""

import json
import pickle
import threading

import pytest

from repro import obs
from repro.obs import runtime
from repro.obs.registry import MetricsRegistry, render_key
from repro.obs.sketch import QuantileSketch


@pytest.fixture(autouse=True)
def _no_ambient_registry():
    # Tests must not leak an installed registry into each other.
    runtime.install(None)
    yield
    runtime.install(None)


class TestQuantileSketch:
    def test_exact_fields(self):
        sketch = QuantileSketch().update([0.5, 1.0, 2.0])
        assert sketch.count == 3
        assert sketch.total == pytest.approx(3.5)
        assert sketch.min == 0.5
        assert sketch.max == 2.0
        assert sketch.mean == pytest.approx(3.5 / 3)

    def test_quantiles_clamped_to_observed_range(self):
        sketch = QuantileSketch().update([1.0] * 100)
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 1.0

    def test_quantile_relative_error_bound(self):
        values = [0.001 * (i + 1) for i in range(5000)]
        sketch = QuantileSketch().update(values)
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = values[int(q * (len(values) - 1))]
            assert sketch.quantile(q) == pytest.approx(
                exact, rel=sketch.growth - 1.0 + 1e-9
            )

    def test_nonpositive_values_counted_not_crashed(self):
        sketch = QuantileSketch().update([-1.0, 0.0, 1.0])
        assert sketch.count == 3
        assert sketch.nonpositive == 2
        assert sketch.min == -1.0
        assert sketch.quantile(0.0) == -1.0

    def test_merge_grid_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bucket grids"):
            QuantileSketch().merge(QuantileSketch(growth=2.0))

    def test_empty_sketch_queries(self):
        empty = QuantileSketch()
        assert empty.summary() == {"count": 0}
        with pytest.raises(ValueError):
            empty.quantile(0.5)

    def test_dict_roundtrip(self):
        sketch = QuantileSketch().update([0.01, 0.5, 3.0, 3.0])
        clone = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.5) == sketch.quantile(0.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(growth=1.0)
        with pytest.raises(ValueError):
            QuantileSketch(min_value=0.0)


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.inc("a.count")
        registry.inc("a.count", 4)
        registry.set_gauge("a.depth", 7.0)
        registry.max_gauge("a.peak", 3.0)
        registry.max_gauge("a.peak", 2.0)
        registry.observe("a.seconds", 0.25)
        snap = registry.snapshot()
        assert snap["counters"]["a.count"] == 5
        assert snap["gauges"]["a.depth"] == 7.0
        assert snap["gauges"]["a.peak"] == 3.0
        assert snap["histograms"]["a.seconds"]["count"] == 1

    def test_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("hits", 1, shard="a")
        registry.inc("hits", 2, shard="b")
        snap = registry.snapshot()["counters"]
        assert snap['hits{shard="a"}'] == 1
        assert snap['hits{shard="b"}'] == 2

    def test_label_named_like_parameter_is_fine(self):
        # Positional-only mutator params: a label literally called
        # "name" or "value" must not collide with the signature.
        registry = MetricsRegistry()
        registry.inc("spans", 1, name="seal", value="x")
        assert registry.snapshot()["counters"][
            'spans{name="seal",value="x"}'
        ] == 1

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.observe("x", 1.0)

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().inc("x", -1)

    def test_span_buffer_bounded_with_counted_overflow(self):
        registry = MetricsRegistry(max_spans=2)
        for i in range(5):
            registry.record_span({"name": f"s{i}"})
        assert len(registry.spans) == 2
        assert registry.snapshot()["counters"]["obs.spans_dropped"] == 3

    def test_merge_does_not_alias_source_metrics(self):
        source = MetricsRegistry()
        source.inc("x", 5)
        source.observe("h", 1.0)
        merged = MetricsRegistry().merge(source)
        merged.inc("x", 1)
        merged.observe("h", 2.0)
        assert source.snapshot()["counters"]["x"] == 5
        assert source.snapshot()["histograms"]["h"]["count"] == 1

    def test_deterministic_snapshot_drops_timing_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("engine.shards_mapped")
        registry.observe("engine.shard_seconds", 0.5)
        registry.observe("engine.shard_records", 100)
        registry.set_gauge("ingest.queue_depth", 3)
        snap = registry.deterministic_snapshot()
        assert "engine.shards_mapped" in snap["counters"]
        assert "engine.shard_records" in snap["histograms"]
        assert "engine.shard_seconds" not in snap["histograms"]
        assert "gauges" not in snap

    def test_pickle_roundtrip_rebuilds_lock(self):
        registry = MetricsRegistry()
        registry.inc("x")
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()
        clone.inc("x")  # the fresh lock works
        assert clone.snapshot()["counters"]["x"] == 2

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(1000):
                registry.inc("hits")
                registry.observe("lat", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 8000
        assert snap["histograms"]["lat"]["count"] == 8000


class TestRuntime:
    def test_disabled_helpers_are_no_ops(self):
        assert runtime.active() is None
        runtime.inc("x")
        runtime.observe("x.seconds", 1.0)
        runtime.set_gauge("g", 1.0)
        runtime.record_span({"name": "s"})
        # Nothing was recorded anywhere — there is nowhere to record.

    def test_installed_scopes_the_registry(self):
        registry = MetricsRegistry()
        with obs.installed(registry):
            assert runtime.active() is registry
            runtime.inc("x")
        assert runtime.active() is None
        assert registry.snapshot()["counters"]["x"] == 1

    def test_installed_none_is_plain_passthrough(self):
        with obs.installed(None):
            assert runtime.active() is None

    def test_shard_scope_overrides_per_thread(self):
        ambient = MetricsRegistry()
        shard = MetricsRegistry()
        seen = {}

        def worker():
            with runtime.shard_scope(shard):
                runtime.inc("worker.x")
                seen["inside"] = runtime.active()

        with obs.installed(ambient):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            # The override was thread-local: this thread still sees
            # the ambient registry.
            assert runtime.active() is ambient
        assert seen["inside"] is shard
        assert shard.snapshot()["counters"]["worker.x"] == 1
        assert "worker.x" not in ambient.snapshot()["counters"]


class TestSpans:
    def test_span_records_timing_and_tags(self):
        registry = MetricsRegistry()
        with obs.installed(registry):
            with obs.span("stage", shard=3):
                pass
        (record,) = registry.spans
        assert record["name"] == "stage"
        assert record["status"] == "ok"
        assert record["tags"] == {"shard": "3"}
        assert record["seconds"] >= 0.0
        snap = registry.snapshot()
        assert snap["counters"]['obs.spans{name="stage"}'] == 1

    def test_span_error_status_and_propagation(self):
        registry = MetricsRegistry()
        with obs.installed(registry):
            with pytest.raises(RuntimeError):
                with obs.span("stage"):
                    raise RuntimeError("boom")
        (record,) = registry.spans
        assert record["status"] == "error:RuntimeError"

    def test_span_without_registry_is_silent(self):
        with obs.span("stage"):
            pass  # must not raise, must not record


class TestExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("engine.shards_mapped", 8)
        registry.inc("obs.spans", 3, name="seal")
        registry.set_gauge("ingest.queue_depth", 12)
        for value in (0.01, 0.02, 0.04):
            registry.observe("engine.shard_seconds", value)
        return registry

    def test_prometheus_text_shape(self):
        text = obs.to_prometheus_text(self._registry())
        assert "# TYPE engine_shards_mapped counter" in text
        assert "engine_shards_mapped 8" in text
        assert 'obs_spans{name="seal"} 3' in text
        assert "# TYPE ingest_queue_depth gauge" in text
        assert "# TYPE engine_shard_seconds summary" in text
        assert "engine_shard_seconds_count 3" in text
        assert 'engine_shard_seconds{quantile="0.5"}' in text

    def test_write_metrics_json_and_prom(self, tmp_path):
        registry = self._registry()
        json_path = tmp_path / "out" / "metrics.json"
        prom_path = tmp_path / "out" / "metrics.prom"
        obs.write_metrics(registry, json_path)
        obs.write_metrics(registry, prom_path)
        snap = json.loads(json_path.read_text())
        assert snap["counters"]["engine.shards_mapped"] == 8
        assert "# TYPE" in prom_path.read_text()

    def test_write_spans_jsonl(self, tmp_path):
        registry = MetricsRegistry()
        with obs.installed(registry):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        path = tmp_path / "spans.jsonl"
        obs.write_spans_jsonl(registry, path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["a", "b"]


class TestRenderKey:
    def test_plain_and_labeled(self):
        assert render_key(("x", ())) == "x"
        assert (
            render_key(("x", (("a", "1"), ("b", "2"))))
            == 'x{a="1",b="2"}'
        )
