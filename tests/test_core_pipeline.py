"""Integration tests for repro.core.pipeline."""

import pytest

from repro.core.pipeline import run_characterization, run_pattern_analysis
from repro.periodicity.detector import DetectorConfig


@pytest.fixture(scope="module")
def characterization(request):
    short_dataset = request.getfixturevalue("short_dataset")
    categories = {d.name: d.category.value for d in short_dataset.domains}
    return run_characterization(short_dataset.logs, categories)


class TestCharacterizationReport:
    def test_summary_covers_all_logs(self, characterization, short_dataset):
        assert characterization.summary.total_logs == len(short_dataset.logs)

    def test_traffic_source_json_only(self, characterization, short_dataset):
        json_count = sum(1 for r in short_dataset.logs if r.is_json)
        assert characterization.traffic_source.total_requests == json_count

    def test_size_comparison_available(self, characterization):
        comparison = characterization.size_comparison
        assert comparison is not None
        assert comparison.smaller_at_p75 > comparison.smaller_at_p50

    def test_render_mentions_every_artifact(self, characterization):
        text = characterization.render("short-term")
        for marker in ("Table 2", "Figure 3", "Figure 4", "headline"):
            assert marker in text

    def test_render_includes_device_rows(self, characterization):
        text = characterization.render()
        for device in ("mobile", "desktop", "embedded", "unknown"):
            assert device in text


class TestPatternReport:
    @pytest.fixture(scope="class")
    def patterns(self, request):
        long_dataset = request.getfixturevalue("long_dataset")
        # Few permutations: keep the integration test fast; accuracy
        # of thresholds is covered by detector unit tests.
        return run_pattern_analysis(
            long_dataset.logs,
            detector_config=DetectorConfig(permutations=25),
        )

    def test_periodicity_detected(self, patterns):
        assert patterns.periodicity.periodic_request_fraction > 0.0

    def test_ngram_cells_present(self, patterns):
        assert (1, 1, False) in patterns.ngram
        assert (1, 10, True) in patterns.ngram

    def test_render_mentions_artifacts(self, patterns):
        text = patterns.render()
        assert "§5.1" in text
        assert "Table 3" in text

    def test_clustered_accuracy_reported(self, patterns):
        result = patterns.ngram[(1, 10, True)]
        assert 0.5 < result.accuracy <= 1.0
