"""Property-based tests (hypothesis) on core data structures and
invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cdn.cache import LruTtlCache
from repro.cdn.scheduler import HUMAN, MACHINE, Job, PriorityServer
from repro.logs.io import read_jsonl, read_tsv, write_jsonl, write_tsv
from repro.logs.record import CacheStatus, HttpMethod, RequestLog
from repro.ngram.clustering import cluster_url
from repro.ngram.model import BackoffNgramModel
from repro.periodicity.autocorr import autocorrelation, bin_series
from tests.conftest import make_log

# -- strategies ----------------------------------------------------------

url_segments = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_",
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=5,
)

printable_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    max_size=60,
)

log_records = st.builds(
    make_log,
    timestamp=st.floats(min_value=0, max_value=2e9, allow_nan=False),
    user_agent=st.one_of(st.none(), printable_text),
    method=st.sampled_from([HttpMethod.GET, HttpMethod.HEAD]),
    url=url_segments.map(lambda segments: "/" + "/".join(segments)),
    status=st.integers(min_value=100, max_value=599),
    response_bytes=st.integers(min_value=0, max_value=10**9),
    cache_status=st.sampled_from([CacheStatus.HIT, CacheStatus.MISS]),
)


class TestSerializationProperties:
    @given(records=st.lists(log_records, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_jsonl_round_trip(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("io") / "logs.jsonl"
        write_jsonl(records, path)
        assert list(read_jsonl(path)) == records

    @given(records=st.lists(log_records, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_tsv_round_trip(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("io") / "logs.tsv"
        write_tsv(records, path)
        assert list(read_tsv(path)) == records

    @given(log_records)
    @settings(max_examples=100, deadline=None)
    def test_dict_round_trip(self, record):
        assert RequestLog.from_dict(record.to_dict()) == record


class TestClusteringProperties:
    @given(url_segments, st.lists(st.tuples(
        st.text(alphabet="abcxyz", min_size=1, max_size=5),
        st.text(alphabet="abc123", max_size=8),
    ), max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_cluster_idempotent(self, segments, args):
        url = "/" + "/".join(segments)
        if args:
            url += "?" + "&".join(f"{k}={v}" for k, v in args)
        once = cluster_url(url)
        assert cluster_url(once) == once

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_numeric_ids_always_merge(self, a, b):
        assert cluster_url(f"/api/item/{a}") == cluster_url(f"/api/item/{b}")


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d", "e", "f"]),
                st.integers(min_value=1, max_value=400),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_capacity_invariant(self, operations):
        cache = LruTtlCache(capacity_bytes=1000)
        now = 0.0
        for key, size in operations:
            cache.put(key, size, now)
            now += 1.0
            assert cache.used_bytes <= 1000
            assert cache.used_bytes >= 0

    @given(
        st.lists(
            st.tuples(st.sampled_from(["get", "put"]),
                      st.sampled_from(["x", "y", "z"])),
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_stats_consistency(self, operations):
        cache = LruTtlCache(capacity_bytes=500)
        now = 0.0
        for op, key in operations:
            if op == "put":
                cache.put(key, 50, now)
            else:
                cache.get(key, now)
            now += 1.0
        stats = cache.stats
        assert stats.hits + stats.misses + stats.expired == stats.lookups
        assert 0.0 <= stats.hit_ratio <= 1.0


class TestSchedulerProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
                st.sampled_from([HUMAN, MACHINE]),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_no_time_travel(self, raw_jobs):
        jobs = [
            Job(arrival, service, priority, i)
            for i, (arrival, service, priority) in enumerate(raw_jobs)
        ]
        for priority_mode in (False, True):
            done = PriorityServer(priority_classes=priority_mode).run(jobs)
            assert len(done) == len(jobs)
            for completion in done:
                assert completion.start_s >= completion.job.arrival_s
                assert completion.finish_s == pytest.approx(
                    completion.start_s + completion.job.service_s
                )

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_single_server_never_overlaps(self, raw_jobs):
        jobs = [Job(a, s, HUMAN, i) for i, (a, s) in enumerate(raw_jobs)]
        done = sorted(
            PriorityServer(num_servers=1).run(jobs), key=lambda c: c.start_s
        )
        for earlier, later in zip(done, done[1:]):
            assert later.start_s >= earlier.finish_s - 1e-9


class TestNgramProperties:
    @given(st.lists(st.lists(st.sampled_from("abcde"), min_size=2, max_size=10),
                    min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_predictions_unique_and_bounded(self, sequences):
        model = BackoffNgramModel(order=2)
        model.fit(sequences)
        for history in (["a"], ["b", "c"], []):
            top = model.predict(history, k=5)
            assert len(top) == len(set(top))
            assert len(top) <= 5

    @given(st.lists(st.lists(st.sampled_from("abc"), min_size=2, max_size=8),
                    min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_seen_transition_always_predicted(self, sequences):
        model = BackoffNgramModel(order=1)
        model.fit(sequences)
        first = sequences[0]
        successors = model.predict([first[0]], k=10)
        assert first[1] in successors


class TestSignalProperties:
    @given(
        st.lists(
            st.floats(min_value=0, max_value=10_000, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_binning_conserves_events(self, raw_times):
        timestamps = np.sort(np.asarray(raw_times))
        series = bin_series(timestamps, 1.0)
        assert series.sum() == pytest.approx(len(raw_times))

    @given(
        st.lists(
            st.floats(min_value=0, max_value=500, allow_nan=False),
            min_size=4,
            max_size=100,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_acf_bounded(self, raw_times):
        series = bin_series(np.sort(np.asarray(raw_times)), 1.0)
        acf = autocorrelation(series)
        if acf.size:
            assert np.all(acf <= 1.0 + 1e-9)
            assert acf[0] == pytest.approx(1.0) or np.allclose(acf, 0.0)
