"""Unit tests for repro.cdn.cache."""

import pytest

from repro.cdn.cache import LruTtlCache


@pytest.fixture
def cache():
    return LruTtlCache(capacity_bytes=1000)


class TestBasicOperations:
    def test_miss_on_empty(self, cache):
        assert cache.get("a", now=0.0) is None
        assert cache.stats.misses == 1

    def test_put_then_hit(self, cache):
        cache.put("a", 100, now=0.0)
        entry = cache.get("a", now=1.0)
        assert entry is not None
        assert entry.size_bytes == 100
        assert cache.stats.hits == 1

    def test_used_bytes_tracked(self, cache):
        cache.put("a", 100, now=0.0)
        cache.put("b", 200, now=0.0)
        assert cache.used_bytes == 300
        assert len(cache) == 2

    def test_put_replaces_existing(self, cache):
        cache.put("a", 100, now=0.0)
        cache.put("a", 300, now=1.0)
        assert cache.used_bytes == 300
        assert len(cache) == 1

    def test_oversized_object_rejected(self, cache):
        assert not cache.put("big", 2000, now=0.0)
        assert len(cache) == 0

    def test_negative_size_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.put("a", -1, now=0.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruTtlCache(0)

    def test_invalidate(self, cache):
        cache.put("a", 100, now=0.0)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.used_bytes == 0

    def test_clear(self, cache):
        cache.put("a", 100, now=0.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0


class TestTtl:
    def test_fresh_within_ttl(self, cache):
        cache.put("a", 100, now=0.0, ttl=10.0)
        assert cache.get("a", now=9.9) is not None

    def test_expired_after_ttl(self, cache):
        cache.put("a", 100, now=0.0, ttl=10.0)
        assert cache.get("a", now=10.1) is None
        assert cache.stats.expired == 1

    def test_expired_entry_removed(self, cache):
        cache.put("a", 100, now=0.0, ttl=10.0)
        cache.get("a", now=20.0)
        assert cache.used_bytes == 0

    def test_no_ttl_never_expires(self, cache):
        cache.put("a", 100, now=0.0)
        assert cache.get("a", now=1e9) is not None

    def test_default_ttl_applied(self):
        cache = LruTtlCache(1000, default_ttl=5.0)
        cache.put("a", 100, now=0.0)
        assert cache.get("a", now=6.0) is None

    def test_explicit_ttl_overrides_default(self):
        cache = LruTtlCache(1000, default_ttl=5.0)
        cache.put("a", 100, now=0.0, ttl=100.0)
        assert cache.get("a", now=50.0) is not None

    def test_contains_fresh_does_not_count(self, cache):
        cache.put("a", 100, now=0.0, ttl=10.0)
        assert cache.contains_fresh("a", now=5.0)
        assert not cache.contains_fresh("a", now=15.0)
        assert cache.stats.lookups == 0


class TestLruEviction:
    def test_evicts_least_recently_used(self, cache):
        cache.put("a", 400, now=0.0)
        cache.put("b", 400, now=1.0)
        cache.get("a", now=2.0)  # refresh a
        cache.put("c", 400, now=3.0)  # must evict b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_evicts_multiple_if_needed(self, cache):
        for key, size in (("a", 300), ("b", 300), ("c", 300)):
            cache.put(key, size, now=0.0)
        cache.put("d", 900, now=1.0)
        assert list(cache.keys()) == ["d"]
        assert cache.stats.evictions == 3

    def test_capacity_never_exceeded(self, cache):
        import random

        rng = random.Random(1)
        for i in range(300):
            cache.put(f"k{i}", rng.randint(1, 400), now=float(i))
            assert cache.used_bytes <= cache.capacity_bytes

    def test_put_refreshes_recency(self, cache):
        cache.put("a", 400, now=0.0)
        cache.put("b", 400, now=1.0)
        cache.put("a", 400, now=2.0)  # re-put refreshes a
        cache.put("c", 400, now=3.0)
        assert "a" in cache and "b" not in cache


class TestStats:
    def test_hit_ratio(self, cache):
        cache.put("a", 10, now=0.0)
        cache.get("a", now=1.0)
        cache.get("b", now=1.0)
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_empty(self, cache):
        assert cache.stats.hit_ratio == 0.0

    def test_stores_counted(self, cache):
        cache.put("a", 10, now=0.0)
        cache.put("b", 10, now=0.0)
        assert cache.stats.stores == 2
