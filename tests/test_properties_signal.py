"""Property-based tests on signal-processing and stream invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs.anonymize import IpAnonymizer
from repro.logs.merge import is_time_ordered, merge_sorted
from repro.ngram.baseline import PerClientRecencyPredictor
from repro.periodicity.detector import DetectorConfig, PeriodDetector
from repro.periodicity.phase import phase_coherence
from tests.conftest import make_log

_DETECTOR = PeriodDetector(DetectorConfig(permutations=20))


def _timer_flow(period: float, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.sort(np.arange(count) * period + rng.normal(0, 0.2, count))


class TestDetectorInvariances:
    @given(
        period=st.sampled_from([30.0, 60.0, 120.0]),
        shift=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_translation_invariance(self, period, shift, seed):
        """Shifting a flow in time must not change its period."""
        flow = _timer_flow(period, 40, seed)
        base = _DETECTOR.detect(flow)
        shifted = _DETECTOR.detect(flow + shift)
        assert base is not None and shifted is not None
        assert abs(base.period_s - shifted.period_s) <= 1.0

    @given(
        period=st.sampled_from([30.0, 60.0]),
        scale=st.sampled_from([2.0, 3.0]),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=15, deadline=None)
    def test_dilation_scales_period(self, period, scale, seed):
        """Stretching time by k must scale the detected period by k."""
        flow = _timer_flow(period, 40, seed)
        base = _DETECTOR.detect(flow)
        dilated = _DETECTOR.detect(flow * scale)
        assert base is not None and dilated is not None
        assert dilated.period_s == pytest.approx(
            base.period_s * scale, rel=0.08
        )

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_detection_is_deterministic(self, seed):
        flow = _timer_flow(60.0, 30, seed)
        first = _DETECTOR.detect(flow)
        second = _DETECTOR.detect(flow)
        assert (first is None) == (second is None)
        if first is not None:
            assert first.period_s == second.period_s


class TestPhaseProperties:
    @given(
        phase=st.floats(min_value=0, max_value=59.9, allow_nan=False),
        count=st.integers(min_value=2, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_identical_phases_max_coherence(self, phase, count):
        assert phase_coherence([phase] * count, 60.0) == pytest.approx(1.0)

    @given(
        offset=st.floats(min_value=0, max_value=60, allow_nan=False),
        phases=st.lists(
            st.floats(min_value=0, max_value=60, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_rotation_invariance(self, offset, phases):
        """Rotating every phase by the same offset keeps coherence."""
        base = phase_coherence(phases, 60.0)
        rotated = phase_coherence(
            [(p + offset) % 60.0 for p in phases], 60.0
        )
        assert rotated == pytest.approx(base, abs=1e-6)

    @given(
        phases=st.lists(
            st.floats(min_value=0, max_value=60, allow_nan=False),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_coherence_bounded(self, phases):
        assert 0.0 <= phase_coherence(phases, 60.0) <= 1.0 + 1e-9


class TestMergeProperties:
    @given(
        streams=st.lists(
            st.lists(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                max_size=30,
            ),
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_is_sorted_and_complete(self, streams):
        log_streams = [
            [make_log(timestamp=t) for t in sorted(times)] for times in streams
        ]
        merged = list(merge_sorted(log_streams))
        assert is_time_ordered(merged)
        assert len(merged) == sum(len(s) for s in streams)


class TestAnonymizerProperties:
    @given(
        octets=st.tuples(
            st.integers(0, 255), st.integers(0, 255),
            st.integers(0, 255), st.integers(0, 255),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_stable_and_hex(self, octets):
        anonymizer = IpAnonymizer(b"t" * 32)
        ip = ".".join(str(o) for o in octets)
        first = anonymizer.anonymize(ip)
        assert first == anonymizer.anonymize(ip)
        assert len(first) == 16
        int(first, 16)


class TestRecencyPredictorProperties:
    @given(st.lists(st.sampled_from("abcdef"), max_size=30),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_predictions_subset_of_history(self, history, k):
        predictions = PerClientRecencyPredictor().predict(history, k)
        assert set(predictions) <= set(history)
        assert len(predictions) == len(set(predictions))
        assert len(predictions) <= k
