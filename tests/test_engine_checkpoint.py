"""Tests for repro.engine.checkpoint — persistence and resume.

The acceptance scenario: kill a partitioned-directory run mid-way,
re-run with the same checkpoint dir, and verify completed shards are
NOT re-executed (counted via marker files that survive process
boundaries).
"""

from pathlib import Path

import pytest

from repro.core.pipeline import run_characterization, run_characterization_parallel
from repro.engine.checkpoint import CheckpointError, CheckpointStore
from repro.engine.executor import EngineError, run_shards
from repro.engine.shard import plan_directory_shards
from repro.engine.state import CharacterizationState
from repro.logs.partition import write_partitioned
from tests.conftest import make_log


@pytest.fixture
def partition_root(tmp_path):
    base = 1_559_347_200.0
    logs = [
        make_log(
            timestamp=base + hour * 3600 + minute * 60,
            edge_id=edge,
            client_ip_hash=f"{edge}-{minute:02d}",
        )
        for edge in ("edge-0", "edge-1", "edge-2")
        for hour in (0, 1)
        for minute in (1, 31)
    ]
    root = tmp_path / "parts"
    write_partitioned(logs, root)
    return root


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        state = CharacterizationState()
        state.ingest(make_log())
        store.save("edge-0/2019-06-01-00.jsonl.gz", state)
        assert store.has("edge-0/2019-06-01-00.jsonl.gz")
        loaded = store.load("edge-0/2019-06-01-00.jsonl.gz")
        assert loaded.record_count == 1

    def test_missing_shard(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert not store.has("nope")
        with pytest.raises(FileNotFoundError):
            store.load("nope")

    def test_slashes_sanitized_without_collisions(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path_a = store.path_for("edge-0/2019-06-01-00.jsonl.gz")
        path_b = store.path_for("edge-0_2019-06-01-00.jsonl.gz")
        assert path_a.parent == Path(tmp_path)
        assert path_a != path_b  # sanitizing must not alias distinct ids

    def test_corrupt_file_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path_for("shard-x").write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            store.load("shard-x")

    def test_wrong_shard_id_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("shard-a", CharacterizationState())
        # Simulate a renamed/copied checkpoint file.
        store.path_for("shard-a").rename(store.path_for("shard-b"))
        with pytest.raises(CheckpointError):
            store.load("shard-b")

    def test_completed_ids_and_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("b", CharacterizationState())
        store.save("a", CharacterizationState())
        assert store.completed_ids() == ["a", "b"]
        assert store.clear() == 2
        assert store.completed_ids() == []

    def test_missing_directory_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CheckpointStore(tmp_path / "absent", create=False)

    def test_load_returns_fresh_objects(self, tmp_path):
        """The documented contract: every load unpickles anew, so a
        caller may mutate what it gets back (the executor merges in
        place) without corrupting later loads."""
        store = CheckpointStore(tmp_path)
        store.save("shard-a", {"values": [1, 2]})
        first = store.load("shard-a")
        assert first is not store.load("shard-a")
        first["values"].append(99)
        assert store.load("shard-a") == {"values": [1, 2]}

    def test_checksum_mismatch_rejected(self, tmp_path):
        """Bit-rot that keeps the envelope unpicklable must still be
        caught — by the payload checksum, not by unpickle luck."""
        import pickle

        store = CheckpointStore(tmp_path)
        store.save("shard-a", CharacterizationState())
        path = store.path_for("shard-a")
        envelope = pickle.loads(path.read_bytes())
        payload = bytearray(envelope["payload"])
        payload[len(payload) // 2] ^= 0xFF  # one flipped bit pattern
        envelope["payload"] = bytes(payload)
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            store.load("shard-a")

    def test_legacy_v1_checkpoints_still_load(self, tmp_path):
        """Pre-checksum checkpoint dirs survive the v2 upgrade."""
        import pickle

        store = CheckpointStore(tmp_path)
        state = CharacterizationState()
        state.ingest(make_log())
        envelope = {
            "format": "repro-engine-checkpoint",
            "version": 1,
            "shard_id": "shard-v1",
            "payload": state,  # v1: inline object, no checksum
        }
        store.path_for("shard-v1").write_bytes(pickle.dumps(envelope))
        assert store.has("shard-v1")
        assert store.load("shard-v1").record_count == 1
        assert "shard-v1" in store.completed_ids()

    def test_saved_file_survives_a_round_trip_rename(self, tmp_path):
        """The atomic write leaves no .tmp residue behind."""
        store = CheckpointStore(tmp_path)
        store.save("shard-a", CharacterizationState())
        assert not list(Path(tmp_path).glob("*.tmp"))


class _CachingStore(CheckpointStore):
    """A store that (illegally, per the base contract) caches loaded
    objects — the sharpest possible probe for merge-base mutation."""

    def __init__(self, directory):
        super().__init__(directory)
        self.cache = {}

    def load(self, shard_id):
        if shard_id not in self.cache:
            self.cache[shard_id] = super().load(shard_id)
        return self.cache[shard_id]


class TestMergeBaseIsolation:
    def test_merge_never_mutates_checkpoint_loaded_state(self, tmp_path):
        """Regression: the merged result used to BE the first
        checkpoint-loaded state, so in-place merges leaked every other
        shard's data into whatever object the store handed out."""
        from repro.engine.shard import plan_memory_shards
        from tests.test_engine_executor import SumState, sum_shard

        logs = [make_log(response_bytes=index) for index in range(40)]
        shards = plan_memory_shards(logs, 2)
        store = _CachingStore(tmp_path / "ckpt")
        for shard in shards:
            store.save(shard.shard_id, sum_shard(shard))
        store.cache.clear()

        merged, report = run_shards(shards, sum_shard, checkpoint=store)
        assert report.skipped == 2
        assert sorted(merged.values) == list(range(40))
        # The cached first state must be untouched by the merge.
        first = store.cache[shards[0].shard_id]
        assert merged is not first
        assert sorted(first.values) == sorted(
            record.response_bytes for record in shards[0].records
        )
        assert first.trace == [shards[0].shard_id]

    def test_two_resumed_runs_agree(self, tmp_path):
        """A second resume over the same store sees pristine states."""
        from repro.engine.shard import plan_memory_shards
        from tests.test_engine_executor import sum_shard

        logs = [make_log(response_bytes=index) for index in range(40)]
        shards = plan_memory_shards(logs, 2)
        store = _CachingStore(tmp_path / "ckpt")
        for shard in shards:
            store.save(shard.shard_id, sum_shard(shard))

        first, _ = run_shards(shards, sum_shard, checkpoint=store)
        second, _ = run_shards(shards, sum_shard, checkpoint=store)
        assert sorted(first.values) == sorted(second.values) == list(range(40))
        assert first.trace == second.trace


def _marking_map_fn(marker_dir):
    """Map fn that leaves one marker file per executed shard."""

    def map_fn(shard):
        marker = Path(marker_dir) / shard.shard_id.replace("/", "__")
        marker.write_text("ran")
        return CharacterizationState().update(shard.iter_logs())

    return map_fn


def _killed_map_fn(marker_dir, die_after):
    def map_fn(shard):
        markers = list(Path(marker_dir).iterdir())
        if len(markers) >= die_after:
            raise KeyboardInterrupt("simulated mid-run kill")
        marker = Path(marker_dir) / shard.shard_id.replace("/", "__")
        marker.write_text("ran")
        return CharacterizationState().update(shard.iter_logs())

    return map_fn


class TestResume:
    def test_interrupted_run_resumes_without_recompute(
        self, partition_root, tmp_path
    ):
        """Kill mid-run, re-run same checkpoint dir, count executions."""
        checkpoint = CheckpointStore(tmp_path / "ckpt")
        shards = plan_directory_shards(partition_root)
        assert len(shards) == 6

        first_markers = tmp_path / "first"
        first_markers.mkdir()
        with pytest.raises(BaseException):
            run_shards(
                shards,
                _killed_map_fn(first_markers, die_after=3),
                backend="serial",
                checkpoint=checkpoint,
            )
        executed_first = len(list(first_markers.iterdir()))
        assert executed_first == 3
        assert len(checkpoint.completed_ids()) == 3

        second_markers = tmp_path / "second"
        second_markers.mkdir()
        state, report = run_shards(
            shards,
            _marking_map_fn(second_markers),
            backend="serial",
            checkpoint=checkpoint,
        )
        executed_second = len(list(second_markers.iterdir()))
        assert executed_second == len(shards) - executed_first
        assert report.skipped == executed_first
        assert report.executed == executed_second
        # The resumed result covers every record exactly once.
        assert state.record_count == 12

    def test_resumed_result_equals_fresh(self, partition_root, tmp_path):
        fresh = run_characterization_parallel(logs_dir=str(partition_root))
        interrupted_ckpt = str(tmp_path / "ckpt2")
        # First pass populates every checkpoint...
        run_characterization_parallel(
            logs_dir=str(partition_root), checkpoint_dir=interrupted_ckpt
        )
        # ...second pass is served entirely from checkpoints.
        resumed, stats = run_characterization_parallel(
            logs_dir=str(partition_root),
            checkpoint_dir=interrupted_ckpt,
            with_stats=True,
        )
        assert stats.skipped == stats.total_shards
        assert resumed.summary == fresh.summary
        assert resumed.traffic_source == fresh.traffic_source
        assert resumed.cacheability == fresh.cacheability

    def test_checkpointed_directory_run_matches_serial(
        self, partition_root, tmp_path
    ):
        from repro.logs.partition import read_partitioned

        records = list(read_partitioned(partition_root))
        serial = run_characterization(records)
        parallel = run_characterization_parallel(
            logs_dir=str(partition_root),
            workers=2,
            backend="thread",
            checkpoint_dir=str(tmp_path / "ckpt3"),
        )
        assert parallel.summary == serial.summary
        assert parallel.traffic_source == serial.traffic_source
        assert parallel.request_type == serial.request_type
        assert parallel.cacheability == serial.cacheability
