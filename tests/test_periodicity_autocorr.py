"""Unit tests for repro.periodicity.autocorr and .spectrum."""

import numpy as np
import pytest

from repro.periodicity.autocorr import (
    acf_local_peak,
    acf_peak,
    autocorrelation,
    bin_series,
)
from repro.periodicity.spectrum import (
    dominant_frequencies,
    frequency_to_period_bins,
    periodogram,
)


class TestBinSeries:
    def test_empty(self):
        assert bin_series(np.array([])).size == 0

    def test_counts_events_per_bin(self):
        series = bin_series(np.array([0.0, 0.5, 1.2, 3.9]), 1.0)
        assert list(series) == [2.0, 1.0, 0.0, 1.0]

    def test_origin_is_first_event(self):
        series = bin_series(np.array([100.0, 101.0]), 1.0)
        assert series.size == 2

    def test_explicit_origin(self):
        series = bin_series(np.array([5.0]), 1.0, origin=0.0)
        assert series.size == 6
        assert series[5] == 1.0

    def test_coarser_rate(self):
        series = bin_series(np.array([0.0, 5.0, 10.0]), 5.0)
        assert list(series) == [1.0, 1.0, 1.0]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            bin_series(np.array([1.0]), 0.0)


class TestAutocorrelation:
    def test_empty(self):
        assert autocorrelation(np.zeros(0)).size == 0

    def test_normalized_at_zero(self):
        series = np.random.default_rng(1).random(128)
        acf = autocorrelation(series)
        assert acf[0] == pytest.approx(1.0)

    def test_constant_series_is_zero(self):
        acf = autocorrelation(np.ones(64))
        assert np.allclose(acf, 0.0)

    def test_periodic_signal_peaks_at_period(self):
        series = np.zeros(400)
        series[::20] = 1.0
        acf = autocorrelation(series)
        lag, value = acf_peak(acf, min_lag=2, max_lag=100)
        assert lag == 20
        assert value > 0.5

    def test_noise_has_low_peaks(self):
        rng = np.random.default_rng(2)
        series = (rng.random(500) < 0.05).astype(float)
        acf = autocorrelation(series)
        _, value = acf_peak(acf, min_lag=2, max_lag=200)
        assert value < 0.4

    def test_linear_not_circular(self):
        # A single impulse has no self-similarity at any positive lag.
        series = np.zeros(64)
        series[10] = 1.0
        acf = autocorrelation(series)
        assert np.max(np.abs(acf[1:])) < 0.2


class TestAcfPeaks:
    def test_peak_respects_min_lag(self):
        series = np.zeros(100)
        series[::3] = 1.0
        acf = autocorrelation(series)
        lag, _ = acf_peak(acf, min_lag=5, max_lag=50)
        assert lag >= 5

    def test_empty_range_returns_zero(self):
        acf = np.array([1.0, 0.5])
        assert acf_peak(acf, min_lag=5) == (0, 0.0)

    def test_local_peak_hill_climb(self):
        series = np.zeros(300)
        series[::25] = 1.0
        acf = autocorrelation(series)
        lag, value = acf_local_peak(acf, around_lag=23, tolerance=4)
        assert lag == 25

    def test_local_peak_out_of_range(self):
        acf = np.array([1.0, 0.2, 0.1])
        lag, value = acf_local_peak(acf, around_lag=10, tolerance=1)
        assert (lag, value) == (0, 0.0)


class TestPeriodogram:
    def test_empty(self):
        freqs, power = periodogram(np.zeros(0))
        assert freqs.size == 0 and power.size == 0

    def test_dc_removed(self):
        freqs, power = periodogram(np.ones(64) * 10)
        assert np.max(power) == pytest.approx(0.0, abs=1e-9)

    def test_sinusoid_peak_frequency(self):
        n = 512
        t = np.arange(n)
        series = np.sin(2 * np.pi * t / 16)
        freqs, power = periodogram(series)
        peak_freq = freqs[np.argmax(power)]
        assert peak_freq == pytest.approx(1 / 16, rel=0.05)

    def test_dominant_frequencies_sorted_by_power(self):
        n = 512
        t = np.arange(n)
        series = np.sin(2 * np.pi * t / 16) + 0.3 * np.sin(2 * np.pi * t / 5)
        freqs, power = periodogram(series)
        top = dominant_frequencies(freqs, power, top_k=2)
        assert top[0][1] >= top[1][1]
        assert top[0][0] == pytest.approx(1 / 16, rel=0.05)

    def test_dominant_frequencies_band_limits(self):
        n = 256
        series = np.sin(2 * np.pi * np.arange(n) / 4)
        freqs, power = periodogram(series)
        top = dominant_frequencies(freqs, power, top_k=3, min_period_bins=8)
        for frequency, _ in top:
            assert 1 / frequency >= 8

    def test_frequency_to_period(self):
        assert frequency_to_period_bins(0.25) == 4.0
        with pytest.raises(ValueError):
            frequency_to_period_bins(0.0)
