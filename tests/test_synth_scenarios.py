"""Tests for repro.synth.scenarios."""

import numpy as np
import pytest

from repro.periodicity.detector import PeriodDetector
from repro.periodicity.flows import FlowFilter, extract_flows
from repro.periodicity.phase import object_phase_profile
from repro.synth.domains import DomainPopulation
from repro.synth.scenarios import (
    fleet_with_rogue,
    flash_crowd,
    iot_fleet,
    scanner_probe,
)


@pytest.fixture(scope="module")
def domain():
    return DomainPopulation(num_domains=5, seed=31).domains[0]


class TestIotFleet:
    def test_event_count_matches_timer_math(self, domain):
        events = iot_fleet(domain, domain.telemetry[0], num_devices=5,
                           period_s=60.0, duration_s=3600.0, seed=1)
        # 5 devices × ~60 ticks, minus ~3% drops.
        assert 250 <= len(events) <= 305

    def test_sorted(self, domain):
        events = iot_fleet(domain, domain.telemetry[0], 4, 60.0, 1800.0)
        times = [event.timestamp for event in events]
        assert times == sorted(times)

    def test_detectable_period(self, domain):
        events = iot_fleet(domain, domain.telemetry[0], 6, 60.0, 3600.0,
                           seed=2)
        times = np.array([event.timestamp for event in events])
        found = PeriodDetector().detect(times)
        assert found is not None
        assert abs(found.period_s - 60.0) <= 1.5

    def test_synchronized_phases_coherent(self, domain):
        for synchronized, expected_high in ((True, True), (False, False)):
            events = iot_fleet(domain, domain.telemetry[0], 10, 60.0,
                               3600.0, seed=3, synchronized=synchronized)
            from repro.logs.record import RequestLog

            logs = [
                RequestLog(
                    timestamp=event.timestamp,
                    client_ip_hash=event.client.ip_hash,
                    user_agent=event.client.user_agent,
                    method=event.endpoint.method,
                    domain=domain.name,
                    url=event.endpoint.url,
                    mime_type="application/json",
                    cache_status="no-store",
                    request_bytes=10,
                )
                for event in events
            ]
            flow = next(iter(extract_flows(
                logs,
                FlowFilter(min_requests_per_client_flow=5,
                           min_clients_per_object_flow=1),
            ).values()))
            profile = object_phase_profile(flow, 60.0)
            assert profile.synchronized == expected_high

    def test_validates_devices(self, domain):
        with pytest.raises(ValueError):
            iot_fleet(domain, domain.telemetry[0], 0, 60.0, 600.0)


class TestFlashCrowd:
    def test_count_and_target(self, domain):
        events = flash_crowd(domain, domain.manifests[0], 500, 600.0, seed=4)
        assert len(events) == 500
        assert all(event.endpoint is domain.manifests[0] for event in events)

    def test_ramp_shape(self, domain):
        events = flash_crowd(domain, domain.manifests[0], 4000, 600.0, seed=5)
        times = [event.timestamp for event in events]
        first_tenth = sum(1 for t in times if t < 60.0)
        steady_tenth = sum(1 for t in times if 300.0 <= t < 360.0)
        # The ramp's opening is visibly quieter than steady state.
        assert first_tenth < steady_tenth

    def test_many_distinct_clients(self, domain):
        events = flash_crowd(domain, domain.manifests[0], 1000, 600.0, seed=6)
        assert len({event.client.ip_hash for event in events}) > 100

    def test_validates_requests(self, domain):
        with pytest.raises(ValueError):
            flash_crowd(domain, domain.manifests[0], 0, 600.0)


class TestScannerProbe:
    def test_paths_not_in_domain_api(self, domain):
        events = scanner_probe(domain, seed=7)
        api_urls = {endpoint.url for endpoint in domain.json_endpoints}
        assert all(event.endpoint.url not in api_urls for event in events)

    def test_single_client(self, domain):
        events = scanner_probe(domain, seed=7)
        assert len({event.client.ip_hash for event in events}) == 1

    def test_custom_paths(self, domain):
        events = scanner_probe(domain, paths=["/x", "/y"], seed=8)
        assert [event.endpoint.url for event in events] == ["/x", "/y"]


class TestFleetWithRogue:
    def test_rogue_is_caught_by_monitor(self, domain):
        from repro.anomaly import PeriodicAnomalyMonitor
        from repro.logs.record import RequestLog

        events = fleet_with_rogue(domain, domain.polls[0] if domain.polls
                                  else domain.telemetry[0],
                                  num_devices=8, period_s=60.0,
                                  duration_s=3600.0, seed=9)
        logs = sorted(
            (
                RequestLog(
                    timestamp=event.timestamp,
                    client_ip_hash=event.client.ip_hash,
                    user_agent=event.client.user_agent,
                    method=event.endpoint.method,
                    domain=domain.name,
                    url=event.endpoint.url,
                    mime_type="application/json",
                    cache_status="no-store",
                    request_bytes=(
                        10 if event.endpoint.method.is_upload() else 0
                    ),
                )
                for event in events
            ),
            key=lambda record: record.timestamp,
        )
        monitor = PeriodicAnomalyMonitor()
        object_id = logs[0].object_id
        monitor.set_baseline(object_id, 60.0)
        alerts = monitor.scan(logs)
        assert len(alerts) == 1
        assert alerts[0].speed_ratio < 0.2

    def test_validates_speedup(self, domain):
        with pytest.raises(ValueError):
            fleet_with_rogue(domain, domain.telemetry[0], 3, 60.0, 600.0,
                             rogue_speedup=1.0)
