"""Unit tests for the deterministic fault-injection layer.

Covers the plan's decision function (stable selection, transiency,
pickling), the runtime's install/attempt scoping, and each injection
site in isolation: map faults through the executor, torn/corrupt
checkpoints, truncated gzip and malformed lines through ``logs.io``,
and ingest stalls.  The end-to-end guarantee — faulted results equal
fault-free results — lives in ``tests/test_chaos_differential.py``.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.engine.checkpoint import CheckpointError, CheckpointStore
from repro.engine.executor import EngineError, ShardResult, run_shards
from repro.engine.shard import plan_memory_shards
from repro.faults import FAULT_SITES, FaultPlan, FaultRule, InjectedFault, runtime
from repro.logs.io import LineStats, read_jsonl, write_jsonl
from tests.conftest import make_log
from tests.test_engine_executor import sum_shard


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("map.explode")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule("map.exception", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule("map.exception", times=0)
        with pytest.raises(ValueError):
            FaultRule("map.hang", param=-1.0)

    def test_all_sites_constructible(self):
        for site in FAULT_SITES:
            FaultRule(site)


class TestFaultPlan:
    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule"):
            FaultPlan(0, [FaultRule("map.hang"), FaultRule("map.hang")])

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(7, [FaultRule("map.exception", rate=0.4, times=3)])
        keys = [f"shard-{i:04d}" for i in range(200)]
        first = [plan.selects("map.exception", key) for key in keys]
        second = [plan.selects("map.exception", key) for key in keys]
        assert first == second
        assert any(first) and not all(first)  # a 0.4 rate selects some

    def test_rate_bounds(self):
        always = FaultPlan(0, [FaultRule("map.exception", rate=1.0)])
        never = FaultPlan(0, [FaultRule("map.exception", rate=0.0)])
        for i in range(50):
            assert always.selects("map.exception", f"k{i}")
            assert not never.selects("map.exception", f"k{i}")

    def test_seed_changes_the_selection(self):
        keys = [f"shard-{i:04d}" for i in range(200)]
        picks = {
            seed: tuple(
                FaultPlan(seed, [FaultRule("map.exception", rate=0.3)]).selects(
                    "map.exception", key
                )
                for key in keys
            )
            for seed in (0, 1)
        }
        assert picks[0] != picks[1]

    def test_times_bounds_the_firing_attempts(self):
        plan = FaultPlan(0, [FaultRule("map.exception", times=2)])
        assert plan.should_fire("map.exception", "shard", attempt=0)
        assert plan.should_fire("map.exception", "shard", attempt=1)
        assert plan.should_fire("map.exception", "shard", attempt=2) is None

    def test_match_filters_keys(self):
        plan = FaultPlan(0, [FaultRule("map.exception", match="edge-2")])
        assert plan.should_fire("map.exception", "edge-2/h00") is not None
        assert plan.should_fire("map.exception", "edge-1/h00") is None

    def test_unruled_site_never_fires(self):
        plan = FaultPlan(0, [FaultRule("map.hang", param=0.01)])
        assert plan.should_fire("map.exception", "anything") is None

    def test_fired_counters(self):
        plan = FaultPlan(0, [FaultRule("map.exception")])
        assert plan.fired() == {}
        plan.should_fire("map.exception", "a")
        plan.should_fire("map.exception", "b")
        assert plan.fired() == {"map.exception": 2}

    def test_pickle_round_trip_preserves_decisions(self):
        plan = FaultPlan(11, [FaultRule("map.exception", rate=0.5, times=2)])
        clone = pickle.loads(pickle.dumps(plan))
        keys = [f"shard-{i}" for i in range(100)]
        assert [clone.selects("map.exception", k) for k in keys] == [
            plan.selects("map.exception", k) for k in keys
        ]

    def test_corrupt_line_breaks_json(self):
        import json

        plan = FaultPlan(0, [FaultRule("io.malformed_line")])
        line = '{"timestamp": 1.0, "url": "/api/v1"}\n'
        damaged = plan.corrupt_line("file:1", line)
        assert damaged != line
        with pytest.raises(json.JSONDecodeError):
            json.loads(damaged)


class TestRuntime:
    def test_no_plan_installed_by_default(self):
        assert runtime.active() is None
        assert runtime.should_fire("map.exception", "k") is None
        assert runtime.current_attempt() == 0

    def test_installed_scopes_the_plan(self):
        plan = FaultPlan(0, [FaultRule("map.exception")])
        with runtime.installed(plan):
            assert runtime.active() is plan
            assert runtime.should_fire("map.exception", "k") is not None
        assert runtime.active() is None

    def test_installed_none_is_a_noop(self):
        with runtime.installed(None):
            assert runtime.active() is None

    def test_installed_is_reentrant(self):
        outer = FaultPlan(0, [FaultRule("map.exception")])
        inner = FaultPlan(1, [FaultRule("map.hang", param=0.0)])
        with runtime.installed(outer):
            with runtime.installed(inner):
                assert runtime.active() is inner
            assert runtime.active() is outer

    def test_attempt_context_is_consulted(self):
        plan = FaultPlan(0, [FaultRule("map.exception", times=1)])
        with runtime.installed(plan):
            assert runtime.should_fire("map.exception", "k") is not None
            with runtime.attempt(1):
                assert runtime.current_attempt() == 1
                assert runtime.should_fire("map.exception", "k") is None
            assert runtime.current_attempt() == 0

    def test_plan_restored_on_exception(self):
        plan = FaultPlan(0, [FaultRule("map.exception")])
        with pytest.raises(RuntimeError):
            with runtime.installed(plan):
                raise RuntimeError("boom")
        assert runtime.active() is None


class TestIoFaults:
    @pytest.fixture
    def jsonl_gz(self, tmp_path):
        path = tmp_path / "logs.jsonl.gz"
        records = [
            make_log(timestamp=1_559_347_200.0 + i, url=f"/api/{i}")
            for i in range(20)
        ]
        write_jsonl(records, path)
        return path

    def test_truncated_gzip_raises_eof(self, jsonl_gz):
        plan = FaultPlan(
            0, [FaultRule("io.truncated_gzip", times=1, param=5)]
        )
        with runtime.installed(plan):
            with pytest.raises(EOFError, match="injected truncation"):
                list(read_jsonl(jsonl_gz))

    def test_truncated_gzip_clears_on_retry_attempt(self, jsonl_gz):
        plan = FaultPlan(
            0, [FaultRule("io.truncated_gzip", times=1, param=5)]
        )
        with runtime.installed(plan), runtime.attempt(1):
            assert len(list(read_jsonl(jsonl_gz))) == 20

    def test_malformed_line_skipped_and_counted(self, jsonl_gz):
        # match=":7" selects exactly line 7, regardless of tmp_path.
        plan = FaultPlan(0, [FaultRule("io.malformed_line", match=":7")])
        with runtime.installed(plan):
            clean_stats = LineStats()
            records = list(
                read_jsonl(jsonl_gz, on_error="skip", stats=clean_stats)
            )
        assert clean_stats.skipped == 1
        assert len(records) == 19
        assert clean_stats.parsed == 19

    def test_malformed_line_raises_when_strict(self, jsonl_gz):
        plan = FaultPlan(0, [FaultRule("io.malformed_line", match=":7")])
        with runtime.installed(plan):
            with pytest.raises(ValueError, match="malformed JSONL record"):
                list(read_jsonl(jsonl_gz))

    def test_no_plan_reads_are_clean(self, jsonl_gz):
        stats = LineStats()
        assert len(list(read_jsonl(jsonl_gz, stats=stats))) == 20
        assert stats.parsed == 20 and stats.skipped == 0


class TestExecutorFaults:
    @pytest.fixture
    def shards(self):
        logs = [
            make_log(client_ip_hash=f"cl-{index % 17:02x}", response_bytes=index)
            for index in range(200)
        ]
        return plan_memory_shards(logs, 4)

    @pytest.mark.parametrize(
        "backend,workers", [("serial", 1), ("thread", 3), ("process", 2)]
    )
    def test_transient_exception_is_retried(self, shards, backend, workers):
        plan = FaultPlan(
            0, [FaultRule("map.exception", times=1, match="0002-of-0004")]
        )
        state, report = run_shards(
            shards,
            sum_shard,
            workers=workers,
            backend=backend,
            retries=1,
            backoff_s=0.0,
            faults=plan,
        )
        assert sorted(state.values) == list(range(200))
        assert not report.failed
        assert report.retries == 1
        retried = {r.shard_id: r.attempts for r in report.results}
        assert max(retried.values()) == 2

    def test_exhausted_retries_quarantine_the_shard(self, shards):
        plan = FaultPlan(
            0, [FaultRule("map.exception", times=5, match="0002-of-0004")]
        )
        state, report = run_shards(
            shards,
            sum_shard,
            backend="serial",
            retries=2,
            backoff_s=0.0,
            strict=False,
            faults=plan,
        )
        assert len(report.quarantined) == 1
        assert report.quarantined[0].endswith("0002-of-0004")
        assert report.retries == 2
        # The other three shards still merged.
        healthy = sum(
            len(shard.records)
            for shard in shards
            if not shard.shard_id.endswith("0002-of-0004")
        )
        assert len(state.values) == healthy

    def test_strict_run_raises_the_injected_fault(self, shards):
        plan = FaultPlan(0, [FaultRule("map.exception", match="0002-of-0004")])
        with pytest.raises(EngineError) as excinfo:
            run_shards(shards, sum_shard, backend="serial", faults=plan)
        assert "InjectedFault" in str(excinfo.value)

    def test_hang_is_abandoned_by_the_timeout_and_retried(self, shards):
        plan = FaultPlan(
            0,
            [FaultRule("map.hang", times=1, param=5.0, match="0002-of-0004")],
        )
        started = time.perf_counter()
        state, report = run_shards(
            shards,
            sum_shard,
            workers=3,
            backend="thread",
            timeout_s=0.2,
            retries=1,
            backoff_s=0.0,
            faults=plan,
        )
        assert time.perf_counter() - started < 4.0  # never waited out the hang
        assert sorted(state.values) == list(range(200))
        assert not report.failed
        assert report.retries >= 1

    def test_worker_death_rebuilds_the_process_pool(self, shards):
        plan = FaultPlan(
            0,
            [FaultRule("map.worker_death", times=1, match="0002-of-0004")],
        )
        state, report = run_shards(
            shards,
            sum_shard,
            workers=2,
            backend="process",
            retries=1,
            backoff_s=0.0,
            faults=plan,
        )
        assert sorted(state.values) == list(range(200))
        assert not report.failed
        assert report.retries >= 1

    def test_worker_death_degrades_to_a_raise_off_process(self, shards):
        plan = FaultPlan(
            0,
            [FaultRule("map.worker_death", times=1, match="0002-of-0004")],
        )
        state, report = run_shards(
            shards,
            sum_shard,
            backend="serial",
            retries=1,
            backoff_s=0.0,
            faults=plan,
        )
        assert sorted(state.values) == list(range(200))
        assert report.retries == 1

    def test_fired_counters_observable_after_the_run(self, shards):
        plan = FaultPlan(
            0, [FaultRule("map.exception", times=1, match="0002-of-0004")]
        )
        run_shards(
            shards,
            sum_shard,
            backend="serial",
            retries=1,
            backoff_s=0.0,
            faults=plan,
        )
        assert plan.fired()["map.exception"] == 1


class TestEngineErrorRendering:
    @staticmethod
    def _failure(index, error):
        return ShardResult(shard_id=f"shard-{index:04d}", ok=False, error=error)

    def test_exception_line_rendered_whole(self):
        error = (
            "Traceback (most recent call last):\n"
            '  File "x.py", line 1, in map_fn\n'
            "RuntimeError: boom in shard 2\n"
        )
        message = str(EngineError([self._failure(2, error)]))
        # Regression: the old code indexed the line (first_line[-1])
        # and rendered a single character.
        assert "RuntimeError: boom in shard 2" in message
        assert "Traceback" not in message

    def test_listing_is_capped(self):
        failures = [
            self._failure(i, f"ValueError: bad {i}\n") for i in range(20)
        ]
        message = str(EngineError(failures))
        assert message.splitlines()[0] == "20 shard(s) failed:"
        assert "shard-0007" in message
        assert "shard-0008" not in message
        assert "... and 12 more (see EngineError.failures)" in message

    def test_synthetic_single_line_errors_render(self):
        error = EngineError(
            [self._failure(0, "TimeoutError: shard exceeded 5s deadline")]
        )
        assert "TimeoutError: shard exceeded 5s deadline" in str(error)
        assert len(error.failures) == 1


class TestCheckpointFaults:
    @pytest.fixture
    def shards(self):
        logs = [make_log(response_bytes=index) for index in range(40)]
        return plan_memory_shards(logs, 2)

    def test_torn_checkpoint_fails_to_load(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        plan = FaultPlan(0, [FaultRule("checkpoint.torn")])
        with runtime.installed(plan):
            store.save("shard-a", {"value": 1})
        assert store.has("shard-a")
        with pytest.raises(CheckpointError):
            store.load("shard-a")

    def test_corrupt_checkpoint_fails_the_checksum(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        plan = FaultPlan(0, [FaultRule("checkpoint.corrupt")])
        with runtime.installed(plan):
            store.save("shard-a", {"value": 1})
        with pytest.raises(CheckpointError, match="checksum"):
            store.load("shard-a")

    def test_executor_recomputes_unreadable_checkpoints(self, shards, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        plan = FaultPlan(0, [FaultRule("checkpoint.torn", match="0000")])
        # Run 1 writes one torn checkpoint; its in-memory state is fine.
        first, report1 = run_shards(
            shards, sum_shard, checkpoint=store, faults=plan
        )
        assert not report1.failed
        # Run 2 (no faults) must recompute the torn shard, not crash.
        second, report2 = run_shards(shards, sum_shard, checkpoint=store)
        assert sorted(second.values) == sorted(first.values)
        assert report2.recomputed_checkpoints == 1
        assert report2.skipped == 1  # the healthy checkpoint still served
        # The recompute re-saved a good checkpoint: run 3 skips both.
        _, report3 = run_shards(shards, sum_shard, checkpoint=store)
        assert report3.skipped == 2
        assert report3.recomputed_checkpoints == 0


class TestIngestStall:
    def test_stall_delays_but_loses_nothing(self):
        from repro.stream.ingest import IngestStage

        records = [
            make_log(timestamp=1_559_347_200.0 + i) for i in range(30)
        ]
        plan = FaultPlan(
            0, [FaultRule("ingest.stall", rate=1.0, param=0.05)]
        )
        with runtime.installed(plan):
            stage = IngestStage([iter(records)], workers=1)
            delivered = list(stage)
        assert len(delivered) == 30
        assert stage.stats.stalls == 1
        assert stage.stats.snapshot()["stalls"] == 1
