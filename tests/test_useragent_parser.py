"""Unit tests for repro.useragent.parser."""

from repro.useragent.parser import ParsedUserAgent, ProductToken, parse_user_agent


class TestBasicParsing:
    def test_single_product(self):
        parsed = parse_user_agent("curl/7.64.0")
        assert parsed.products == (ProductToken("curl", "7.64.0"),)

    def test_product_without_version(self):
        parsed = parse_user_agent("MyService")
        assert parsed.primary_product == ProductToken("MyService", None)

    def test_multiple_products_in_order(self):
        parsed = parse_user_agent("Mozilla/5.0 Chrome/76.0 Safari/537.36")
        assert parsed.product_names() == ["Mozilla", "Chrome", "Safari"]

    def test_comments_extracted_and_split(self):
        parsed = parse_user_agent("App/1.0 (iPhone; iOS 13.1; Scale/3.00)")
        assert "iPhone" in parsed.comments
        assert "iOS 13.1" in parsed.comments

    def test_comment_not_parsed_as_product(self):
        parsed = parse_user_agent("App/1.0 (iPhone)")
        assert not parsed.has_product("iPhone")

    def test_multiple_comment_groups(self):
        parsed = parse_user_agent("A/1 (x; y) B/2 (z)")
        assert parsed.comments == ("x", "y", "z")

    def test_nested_parentheses(self):
        parsed = parse_user_agent("A/1 (outer (inner); tail)")
        assert any("inner" in comment for comment in parsed.comments)


class TestRobustness:
    def test_none_input(self):
        parsed = parse_user_agent(None)
        assert parsed.raw == ""
        assert parsed.products == ()

    def test_empty_string(self):
        assert parse_user_agent("").products == ()

    def test_unbalanced_parens_do_not_crash(self):
        parsed = parse_user_agent("A/1 (never closed")
        assert parsed.primary_product.name == "A"

    def test_garbage_input(self):
        parsed = parse_user_agent("((((( ^^^^ %%%")
        assert isinstance(parsed, ParsedUserAgent)

    def test_real_chrome_ua(self):
        ua = (
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/76.0.3809.132 Safari/537.36"
        )
        parsed = parse_user_agent(ua)
        assert parsed.has_product("Chrome")
        assert parsed.has_comment_token("Windows NT")


class TestQueryHelpers:
    def test_has_product_case_insensitive(self):
        parsed = parse_user_agent("OkHttp/3.12.1")
        assert parsed.has_product("okhttp")

    def test_product_version_lookup(self):
        parsed = parse_user_agent("Mozilla/5.0 Firefox/69.0")
        assert parsed.product_version("firefox") == "69.0"

    def test_product_version_missing(self):
        parsed = parse_user_agent("Mozilla/5.0")
        assert parsed.product_version("Chrome") is None

    def test_has_comment_token_substring(self):
        parsed = parse_user_agent("A/1 (CPU iPhone OS 13_1 like Mac OS X)")
        assert parsed.has_comment_token("iphone os")

    def test_contains_searches_raw(self):
        parsed = parse_user_agent("Dalvik/2.1.0 (Linux; U; Android 9)")
        assert parsed.contains("android")
        assert not parsed.contains("windows")

    def test_str_round_trip_of_token(self):
        assert str(ProductToken("curl", "7.0")) == "curl/7.0"
        assert str(ProductToken("bare")) == "bare"
