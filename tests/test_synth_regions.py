"""Tests for repro.synth.regions and repro.analysis.regional."""

import pytest

from repro.analysis.regional import (
    edge_region,
    peak_hour_spread,
    regional_breakdown,
)
from repro.synth.clients import ClientPopulation
from repro.synth.regions import DEFAULT_REGIONS, Region, assign_regions
from repro.synth.rng import substream
from repro.synth.workload import WorkloadBuilder, long_term_config
from tests.conftest import make_log


class TestRegionModel:
    def test_default_regions_share_sums_to_one(self):
        assert sum(r.client_share for r in DEFAULT_REGIONS) == pytest.approx(1.0)

    def test_local_hour_applies_offset(self):
        region = Region("x", utc_offset_h=8.0, client_share=1.0)
        assert region.local_hour(0.0, epoch=0.0) == pytest.approx(8.0)
        assert region.local_hour(3600.0 * 20, epoch=0.0) == pytest.approx(4.0)

    def test_assign_regions_exact_counts(self):
        rng = substream(1, "regions-test")
        assignment = assign_regions(rng, 200, DEFAULT_REGIONS)
        counts = {name: 0 for name in (r.name for r in DEFAULT_REGIONS)}
        for region in assignment:
            counts[region.name] += 1
        for region in DEFAULT_REGIONS:
            assert counts[region.name] == pytest.approx(
                200 * region.client_share, abs=1
            )

    def test_assign_regions_empty_rejected(self):
        with pytest.raises(ValueError):
            assign_regions(substream(1, "x"), 10, [])

    def test_client_population_carries_region(self):
        population = ClientPopulation(100, seed=2, regions=DEFAULT_REGIONS)
        names = {client.region for client in population}
        assert names == {"na", "eu", "apac", "sa"}

    def test_single_region_population_empty_region(self):
        population = ClientPopulation(10, seed=2)
        assert all(client.region == "" for client in population)


class TestEdgeRegion:
    def test_multi_region_id(self):
        assert edge_region("na-edge-0") == "na"
        assert edge_region("apac-edge-2") == "apac"

    def test_single_region_id(self):
        assert edge_region("edge-3") == ""

    def test_odd_id(self):
        assert edge_region("weird") == ""


class TestMultiRegionDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return WorkloadBuilder(
            long_term_config(
                12_000, seed=4, num_domains=40, regions=DEFAULT_REGIONS
            )
        ).build()

    def test_all_regions_serve_traffic(self, dataset):
        stats = regional_breakdown(dataset.logs, epoch=dataset.config.start_time)
        assert set(stats) == {"na", "eu", "apac", "sa"}

    def test_traffic_tracks_client_share(self, dataset):
        stats = regional_breakdown(dataset.logs, epoch=dataset.config.start_time)
        total = sum(s.total_requests for s in stats.values())
        by_name = {r.name: r.client_share for r in DEFAULT_REGIONS}
        for name, bucket in stats.items():
            assert abs(bucket.total_requests / total - by_name[name]) < 0.12

    def test_clients_stay_in_their_region(self, dataset):
        seen = {}
        for record in dataset.logs:
            region = edge_region(record.edge_id)
            previous = seen.setdefault(record.client_ip_hash, region)
            assert previous == region

    def test_peak_hours_differ_across_timezones(self, dataset):
        stats = regional_breakdown(dataset.logs, epoch=dataset.config.start_time)
        # NA and APAC are 14 timezones apart; their diurnal peaks
        # must land hours apart on the dataset clock.
        assert peak_hour_spread(stats) >= 4

    def test_single_region_dataset_unchanged(self, long_dataset):
        stats = regional_breakdown(long_dataset.logs)
        assert set(stats) == {""}


class TestRegionalStats:
    def test_hourly_profile_complete(self):
        logs = [make_log(timestamp=3600.0 * h) for h in range(24)]
        stats = regional_breakdown(logs, epoch=0.0)[""]
        profile = stats.hourly_profile()
        assert len(profile) == 24
        assert all(count == 1 for _, count in profile)

    def test_peak_hour(self):
        logs = [make_log(timestamp=3600.0 * 5 + i) for i in range(10)]
        logs += [make_log(timestamp=3600.0 * 9)]
        stats = regional_breakdown(logs, epoch=0.0)[""]
        assert stats.peak_hour() == 5

    def test_spread_of_single_region_is_zero(self):
        logs = [make_log(timestamp=0.0)]
        assert peak_hour_spread(regional_breakdown(logs, epoch=0.0)) == 0
