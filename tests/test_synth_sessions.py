"""Unit tests for repro.synth.sessions."""

import random

import pytest

from repro.synth.clients import Client
from repro.synth.domains import DomainPopulation, EndpointKind
from repro.synth.sessions import RequestEvent, SessionConfig, SessionGenerator


@pytest.fixture(scope="module")
def domain():
    return DomainPopulation(num_domains=5, seed=2).domains[0]


@pytest.fixture
def client():
    return Client("ab12cd34", "NewsReader/1.0 (iPhone; iOS 13.1)", "mobile_app", 1.0)


@pytest.fixture
def generator():
    return SessionGenerator(random.Random(77))


class TestAppSession:
    def test_starts_with_config_or_manifest(self, generator, client, domain):
        for _ in range(50):
            session = generator.app_session(client, domain, 0.0)
            first_kinds = {session[0].endpoint.kind, session[1].endpoint.kind}
            assert session[0].endpoint.kind in (
                EndpointKind.CONFIG,
                EndpointKind.MANIFEST,
            )
            assert EndpointKind.MANIFEST in first_kinds or session[0].endpoint.kind is EndpointKind.MANIFEST

    def test_manifest_always_requested(self, generator, client, domain):
        session = generator.app_session(client, domain, 0.0)
        assert any(
            event.endpoint.kind is EndpointKind.MANIFEST for event in session
        )

    def test_all_events_json(self, generator, client, domain):
        session = generator.app_session(client, domain, 0.0)
        assert all(
            event.endpoint.mime_type == "application/json" for event in session
        )

    def test_timestamps_monotonic(self, generator, client, domain):
        session = generator.app_session(client, domain, 1000.0)
        times = [event.timestamp for event in session]
        assert times == sorted(times)
        assert times[0] >= 1000.0

    def test_session_bounded(self, generator, client, domain):
        config = SessionConfig(max_steps=10)
        bounded = SessionGenerator(random.Random(1), config)
        for _ in range(20):
            session = bounded.app_session(client, domain, 0.0)
            assert len(session) <= 10 + 3  # config + manifest + launch telemetry

    def test_content_follows_manifest_pattern(self, generator, client, domain):
        """Table 1: manifests precede content fetches."""
        saw_content_after_manifest = 0
        for _ in range(100):
            session = generator.app_session(client, domain, 0.0)
            kinds = [event.endpoint.kind for event in session]
            if EndpointKind.CONTENT in kinds:
                first_content = kinds.index(EndpointKind.CONTENT)
                if EndpointKind.MANIFEST in kinds[:first_content]:
                    saw_content_after_manifest += 1
        assert saw_content_after_manifest > 50

    def test_events_carry_client_and_domain(self, generator, client, domain):
        session = generator.app_session(client, domain, 0.0)
        assert all(event.client is client for event in session)
        assert all(event.domain is domain for event in session)


class TestBrowserSession:
    def test_contains_html_page(self, generator, client, domain):
        session = generator.browser_session(client, domain, 0.0)
        assert any(event.endpoint.mime_type == "text/html" for event in session)

    def test_contains_static_assets(self, generator, client, domain):
        session = generator.browser_session(client, domain, 0.0)
        mimes = {event.endpoint.mime_type for event in session}
        assert mimes & {"text/css", "application/javascript", "image/jpeg"}

    def test_json_is_minority(self, generator, client, domain):
        json_count = html_count = 0
        for _ in range(100):
            for event in generator.browser_session(client, domain, 0.0):
                if event.endpoint.mime_type == "application/json":
                    json_count += 1
                elif event.endpoint.mime_type == "text/html":
                    html_count += 1
        # Browser page loads carry ~0.5 JSON calls per page.
        assert json_count < html_count

    def test_timestamps_monotonic_nondecreasing(self, generator, client, domain):
        session = generator.browser_session(client, domain, 50.0)
        times = [event.timestamp for event in session]
        assert all(b >= a - 1e-9 for a, b in zip(times, times[1:])) or times == sorted(times)


class TestScriptBurst:
    def test_rapid_fire_timing(self, generator, client, domain):
        burst = generator.script_burst(client, domain, 0.0)
        gaps = [
            b.timestamp - a.timestamp for a, b in zip(burst, burst[1:])
        ]
        assert all(gap <= 1.5 for gap in gaps)

    def test_contains_uploads_sometimes(self, generator, client, domain):
        uploads = 0
        for _ in range(50):
            for event in generator.script_burst(client, domain, 0.0):
                if event.endpoint.method.is_upload():
                    uploads += 1
        assert uploads > 0

    def test_bounded_length(self, generator, client, domain):
        for _ in range(30):
            assert len(generator.script_burst(client, domain, 0.0)) <= 30


class TestRequestEvent:
    def test_ordering_by_timestamp_only(self, client, domain):
        endpoint = domain.manifests[0]
        early = RequestEvent(1.0, client, domain, endpoint)
        late = RequestEvent(2.0, client, domain, endpoint)
        assert early < late
        assert sorted([late, early])[0] is early

    def test_equal_timestamps_sortable(self, client, domain):
        a = RequestEvent(1.0, client, domain, domain.manifests[0])
        b = RequestEvent(1.0, client, domain, domain.configs[0])
        sorted([a, b])  # must not raise


class TestReproducibility:
    def test_same_seed_same_sessions(self, client, domain):
        a = SessionGenerator(random.Random(123)).app_session(client, domain, 0.0)
        b = SessionGenerator(random.Random(123)).app_session(client, domain, 0.0)
        assert [e.endpoint.url for e in a] == [e.endpoint.url for e in b]
        assert [e.timestamp for e in a] == [e.timestamp for e in b]
