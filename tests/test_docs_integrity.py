"""Documentation integrity: the docs must track the code.

These tests keep README/DESIGN/EXPERIMENTS honest — every referenced
file, module, CLI command, and example must actually exist.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text(encoding="utf-8")


class TestReadme:
    def test_referenced_docs_exist(self):
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO / name).is_file()
        assert (REPO / "docs").is_dir()

    def test_example_table_matches_directory(self):
        readme = read("README.md")
        on_disk = {
            path.name for path in (REPO / "examples").glob("*.py")
        }
        referenced = set(re.findall(r"`(\w+\.py)`", readme))
        assert referenced <= on_disk | {"quickstart.py"}
        for example in on_disk:
            assert example in readme, f"{example} missing from README"

    def test_architecture_packages_importable(self):
        readme = read("README.md")
        for match in set(re.findall(r"^repro\.(\w+)", readme, re.MULTILINE)):
            importlib.import_module(f"repro.{match}")

    def test_cli_commands_exist(self):
        from repro.cli import build_parser

        readme = read("README.md")
        parser = build_parser()
        subactions = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        for command in re.findall(r"repro-json-cdn ([\w-]+)", readme):
            assert command in subactions.choices, command

    def test_quickstart_snippet_runs(self):
        """The README's quickstart code block must execute as written."""
        readme = read("README.md")
        match = re.search(r"```python\n(.*?)```", readme, re.DOTALL)
        assert match
        code = match.group(1).replace("50_000", "2_000")
        exec(compile(code, "<readme>", "exec"), {})


class TestExperimentsDoc:
    def test_bench_references_exist(self):
        experiments = read("EXPERIMENTS.md")
        for reference in set(re.findall(r"`(benchmarks/\w+\.py)", experiments)):
            assert (REPO / reference).is_file(), reference

    def test_covers_every_figure_and_table(self):
        experiments = read("EXPERIMENTS.md")
        for artifact in ("Figure 1", "Table 2", "Figure 3", "Figure 4",
                         "Figure 5", "Figure 6", "Table 3"):
            assert artifact in experiments, artifact


class TestDesignDoc:
    def test_experiment_index_benches_exist(self):
        design = read("DESIGN.md")
        for reference in set(re.findall(r"`(benchmarks/\w+\.py)", design)):
            assert (REPO / reference).is_file(), reference

    def test_mismatch_banner_absent(self):
        """DESIGN must not carry the title-collision warning (the
        supplied paper text matched)."""
        design = read("DESIGN.md")
        assert "matches the target paper" in design


class TestDocsDirectory:
    def test_guides_present(self):
        for name in ("architecture.md", "calibration.md", "periodicity.md",
                     "prediction.md", "observability.md"):
            assert (REPO / "docs" / name).is_file(), name

    def test_module_references_resolve(self):
        """Every `repro.pkg.name` in the docs is a module or attribute."""
        for path in (REPO / "docs").glob("*.md"):
            text = path.read_text(encoding="utf-8")
            for package, name in set(re.findall(r"`repro\.(\w+)\.(\w+)`", text)):
                module = importlib.import_module(f"repro.{package}")
                try:
                    importlib.import_module(f"repro.{package}.{name}")
                except ModuleNotFoundError:
                    assert hasattr(module, name), f"repro.{package}.{name}"
