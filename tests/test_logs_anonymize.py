"""Unit tests for repro.logs.anonymize."""

import pytest

from repro.logs.anonymize import IpAnonymizer, generate_key


@pytest.fixture
def anonymizer():
    return IpAnonymizer(b"k" * 32)


class TestKeyHandling:
    def test_generate_key_length(self):
        assert len(generate_key()) == 32

    def test_generate_key_is_random(self):
        assert generate_key() != generate_key()

    def test_hex_string_key_accepted(self):
        hex_key = "ab" * 16
        a = IpAnonymizer(hex_key)
        b = IpAnonymizer(bytes.fromhex(hex_key))
        assert a.anonymize("192.0.2.1") == b.anonymize("192.0.2.1")

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            IpAnonymizer(b"short")


class TestAnonymization:
    def test_deterministic_for_same_ip(self, anonymizer):
        assert anonymizer.anonymize("192.0.2.7") == anonymizer.anonymize("192.0.2.7")

    def test_distinct_ips_distinct_pseudonyms(self, anonymizer):
        assert anonymizer.anonymize("192.0.2.7") != anonymizer.anonymize("192.0.2.8")

    def test_different_keys_different_pseudonyms(self):
        a = IpAnonymizer(b"a" * 32)
        b = IpAnonymizer(b"b" * 32)
        assert a.anonymize("192.0.2.7") != b.anonymize("192.0.2.7")

    def test_pseudonym_is_fixed_width_hex(self, anonymizer):
        pseudonym = anonymizer.anonymize("10.1.2.3")
        assert len(pseudonym) == 16
        int(pseudonym, 16)  # must parse as hex

    def test_ipv6_supported(self, anonymizer):
        assert anonymizer.anonymize("2001:db8::1")

    def test_ipv4_mapped_ipv6_equals_ipv4(self, anonymizer):
        assert anonymizer.anonymize("::ffff:192.0.2.7") == anonymizer.anonymize(
            "192.0.2.7"
        )

    def test_invalid_ip_raises(self, anonymizer):
        with pytest.raises(ValueError):
            anonymizer.anonymize("not-an-ip")

    def test_opaque_identifier_supported(self, anonymizer):
        a = anonymizer.anonymize_opaque("device-1234")
        b = anonymizer.anonymize_opaque("device-1234")
        assert a == b
        assert a != anonymizer.anonymize_opaque("device-1235")
