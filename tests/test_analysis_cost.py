"""Tests for repro.analysis.cost."""

import pytest

from repro.analysis.cost import ContentCost, CostModel, serving_costs
from repro.synth.sizes import json_size_scale
from tests.conftest import make_log


class TestCostModel:
    def test_request_cost_components(self):
        model = CostModel(per_request=10.0, per_kilobyte=2.0)
        assert model.request_cost(0) == 10.0
        assert model.request_cost(2048) == pytest.approx(14.0)

    def test_cost_per_byte_rises_as_sizes_shrink(self):
        """The §4 provisioning claim in one assertion."""
        model = CostModel()
        assert model.cost_per_byte(1_000) > model.cost_per_byte(10_000)

    def test_cost_per_byte_28pct_size_decrease(self):
        """Quantify §4: the 2016→2019 JSON shrink raises cost/byte."""
        model = CostModel()
        size_2016 = 10_000.0
        size_2019 = size_2016 * json_size_scale(2019) / json_size_scale(2016)
        increase = model.cost_per_byte(size_2019) / model.cost_per_byte(
            size_2016
        )
        assert increase > 1.15  # meaningfully more CPU per byte

    def test_zero_size(self):
        assert CostModel().cost_per_byte(0.0) == float("inf")


class TestServingCosts:
    def _logs(self):
        logs = [
            make_log(timestamp=float(i), response_bytes=2_000)
            for i in range(10)
        ]
        logs += [
            make_log(
                timestamp=100.0 + i,
                mime_type="text/html",
                response_bytes=40_000,
                url="/page",
            )
            for i in range(5)
        ]
        return logs

    def test_aggregation(self):
        costs = serving_costs(self._logs())
        json_cost = costs["application/json"]
        html_cost = costs["text/html"]
        assert json_cost.requests == 10
        assert html_cost.requests == 5
        assert json_cost.mean_bytes == 2_000
        assert html_cost.mean_bytes == 40_000

    def test_json_costs_more_per_byte(self):
        costs = serving_costs(self._logs())
        assert (
            costs["application/json"].cost_per_byte
            > 2 * costs["text/html"].cost_per_byte
        )

    def test_html_costs_more_per_request(self):
        costs = serving_costs(self._logs())
        assert (
            costs["text/html"].cost_per_request
            > costs["application/json"].cost_per_request
        )

    def test_on_synthetic_dataset(self, short_dataset):
        costs = serving_costs(short_dataset.logs)
        json_cost = costs["application/json"]
        html_cost = costs["text/html"]
        assert json_cost.requests > html_cost.requests  # the 4x ratio
        # The paper's point: JSON needs more CPU per delivered byte.
        assert json_cost.cost_per_byte > html_cost.cost_per_byte

    def test_empty_bucket(self):
        costs = serving_costs([], content_types=("application/json",))
        assert costs["application/json"].cost_per_byte == 0.0
        assert costs["application/json"].mean_bytes == 0.0
