"""Unit tests for repro.synth.periodic."""

import random

import numpy as np
import pytest

from repro.synth.clients import Client
from repro.synth.domains import DomainPopulation
from repro.synth.periodic import (
    CANONICAL_PERIODS,
    PeriodicAgent,
    PeriodicObjectSpec,
    agent_duty_window,
    choose_period,
    choose_periodic_share,
)


@pytest.fixture(scope="module")
def domain():
    return DomainPopulation(num_domains=3, seed=8).domains[0]


@pytest.fixture
def spec(domain):
    return PeriodicObjectSpec(
        domain=domain,
        endpoint=domain.telemetry[0],
        period_s=60.0,
        periodic_client_share=0.5,
    )


def make_agent(spec, start=0.0, end=3600.0, jitter=0.1, drop=0.0):
    client = Client("ffee", "FitTrack/1.0 (Android 10) okhttp/3.12.1",
                    "mobile_app", 1.0)
    return PeriodicAgent(
        client=client,
        spec=spec,
        phase_s=5.0,
        jitter_s=jitter,
        drop_probability=drop,
        active_start=start,
        active_end=end,
    )


class TestCanonicalPeriods:
    def test_matches_figure5_spikes(self):
        periods = {period for period, _ in CANONICAL_PERIODS}
        assert periods == {30.0, 60.0, 120.0, 180.0, 600.0, 900.0, 1800.0}

    def test_weights_sum_to_one(self):
        assert sum(weight for _, weight in CANONICAL_PERIODS) == pytest.approx(1.0)

    def test_choose_period_only_canonical(self):
        rng = random.Random(4)
        for _ in range(200):
            assert choose_period(rng) in {p for p, _ in CANONICAL_PERIODS}


class TestPeriodicShare:
    def test_share_in_unit_interval(self):
        rng = random.Random(4)
        for _ in range(500):
            assert 0.0 < choose_periodic_share(rng) < 1.0

    def test_majority_fraction_near_target(self):
        rng = random.Random(4)
        shares = [choose_periodic_share(rng, majority_share=0.2) for _ in range(3000)]
        majority = sum(1 for share in shares if share > 0.5) / len(shares)
        assert 0.12 < majority < 0.30


class TestAgentGeneration:
    def test_tick_count_close_to_expected(self, spec):
        agent = make_agent(spec, end=3600.0)
        events = agent.generate(random.Random(1))
        assert abs(len(events) - 60) <= 2

    def test_intervals_cluster_at_period(self, spec):
        agent = make_agent(spec, end=7200.0, jitter=0.2)
        events = agent.generate(random.Random(2))
        times = np.array([event.timestamp for event in events])
        gaps = np.diff(np.sort(times))
        # Most gaps are one period ± jitter.
        close = np.abs(gaps - 60.0) < 2.0
        assert close.mean() > 0.9

    def test_drops_reduce_count(self, spec):
        rng_a, rng_b = random.Random(3), random.Random(3)
        full = make_agent(spec, drop=0.0).generate(rng_a)
        dropped = make_agent(spec, drop=0.3).generate(rng_b)
        assert len(dropped) < len(full)

    def test_events_within_active_window(self, spec):
        agent = make_agent(spec, start=1000.0, end=2000.0)
        for event in agent.generate(random.Random(4)):
            assert 1000.0 <= event.timestamp < 2000.0

    def test_expected_requests_estimate(self, spec):
        agent = make_agent(spec, end=3600.0, drop=0.1)
        assert agent.expected_requests == pytest.approx(54.0)

    def test_events_carry_spec_endpoint(self, spec):
        agent = make_agent(spec, end=600.0)
        for event in agent.generate(random.Random(5)):
            assert event.endpoint is spec.endpoint

    def test_object_id(self, spec, domain):
        assert spec.object_id == f"{domain.name}{domain.telemetry[0].url}"


class TestDutyWindow:
    def test_short_period_bounded_duty(self):
        rng = random.Random(6)
        start, end = agent_duty_window(rng, 30.0, 0.0, 86400.0)
        assert 0.0 <= start < end <= 86400.0
        assert end - start < 86400.0

    def test_duty_fits_min_requests(self):
        rng = random.Random(6)
        for period in (30.0, 60.0, 180.0):
            start, end = agent_duty_window(rng, period, 0.0, 86400.0,
                                           min_requests=12)
            assert (end - start) / period >= 12

    def test_long_period_long_duty(self):
        rng = random.Random(6)
        durations = []
        for _ in range(50):
            start, end = agent_duty_window(rng, 1800.0, 0.0, 86400.0)
            durations.append(end - start)
        # Infrastructure timers run for hours.
        assert np.median(durations) > 4 * 3600

    def test_window_respects_dataset_bounds(self):
        rng = random.Random(7)
        for _ in range(100):
            start, end = agent_duty_window(rng, 60.0, 500.0, 1300.0)
            assert 500.0 <= start <= end <= 1300.0
