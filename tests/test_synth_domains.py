"""Unit tests for repro.synth.domains."""

import pytest

from repro.core.taxonomy import IndustryCategory
from repro.synth.domains import (
    CATEGORY_DOMAIN_SHARE,
    CATEGORY_POLICY_MIX,
    CachePolicy,
    CachePolicyKind,
    DomainPopulation,
    EndpointKind,
)


@pytest.fixture(scope="module")
def population():
    return DomainPopulation(num_domains=400, seed=11)


class TestCachePolicy:
    def test_always_policy(self):
        policy = CachePolicy(CachePolicyKind.ALWAYS)
        assert policy.object_cacheable("d.com/any")

    def test_never_policy(self):
        policy = CachePolicy(CachePolicyKind.NEVER)
        assert not policy.object_cacheable("d.com/any")

    def test_mixed_policy_is_stable_per_object(self):
        policy = CachePolicy(CachePolicyKind.MIXED, mixed_uncacheable_share=0.5)
        url = "d.com/api/v1/item/5"
        assert policy.object_cacheable(url) == policy.object_cacheable(url)

    def test_mixed_policy_share_roughly_respected(self):
        policy = CachePolicy(CachePolicyKind.MIXED, mixed_uncacheable_share=0.3)
        urls = [f"d.com/api/v1/item/{i}" for i in range(2000)]
        uncacheable = sum(1 for url in urls if not policy.object_cacheable(url))
        assert 0.2 < uncacheable / len(urls) < 0.4


class TestCalibrationTables:
    def test_category_shares_sum_to_one(self):
        assert sum(CATEGORY_DOMAIN_SHARE.values()) == pytest.approx(1.0)

    def test_policy_mixes_sum_to_one(self):
        for category, (never, always, mixed) in CATEGORY_POLICY_MIX.items():
            assert never + always + mixed == pytest.approx(1.0), category

    def test_financial_mostly_uncacheable(self):
        never, always, _ = CATEGORY_POLICY_MIX[IndustryCategory.FINANCIAL]
        assert never > 0.8 and always < 0.1

    def test_news_mostly_cacheable(self):
        never, always, _ = CATEGORY_POLICY_MIX[IndustryCategory.NEWS_MEDIA]
        assert always > 0.6 and never < 0.2


class TestPopulation:
    def test_population_size(self, population):
        assert len(population) == 400

    def test_reproducible(self):
        a = DomainPopulation(50, seed=3)
        b = DomainPopulation(50, seed=3)
        assert [d.name for d in a] == [d.name for d in b]
        assert [d.policy.kind for d in a] == [d.policy.kind for d in b]

    def test_different_seed_differs(self):
        a = DomainPopulation(50, seed=3)
        b = DomainPopulation(50, seed=4)
        assert [d.name for d in a] != [d.name for d in b]

    def test_domain_names_unique(self, population):
        names = [domain.name for domain in population]
        assert len(names) == len(set(names))

    def test_policy_marginals_near_paper(self, population):
        shares = population.policy_kind_shares()
        # Paper: ~50% never, ~30% always (Figure 4 marginals).
        assert abs(shares[CachePolicyKind.NEVER] - 0.50) < 0.10
        assert abs(shares[CachePolicyKind.ALWAYS] - 0.30) < 0.10

    def test_popularity_weights_normalized(self, population):
        assert sum(population.popularity_weights()) == pytest.approx(1.0)

    def test_by_category_partition(self, population):
        grouped = population.by_category()
        assert sum(len(group) for group in grouped.values()) == len(population)


class TestDomainStructure:
    def test_every_domain_has_manifest_and_content(self, population):
        for domain in population:
            assert domain.manifests
            assert len(domain.contents) >= 10
            assert domain.configs

    def test_urls_are_absolute_paths(self, population):
        for domain in list(population)[:20]:
            for endpoint in domain.json_endpoints:
                assert endpoint.url.startswith("/api/v")

    def test_telemetry_endpoints_are_uploads(self, population):
        for domain in population:
            for endpoint in domain.telemetry:
                assert endpoint.method.is_upload()
                assert endpoint.kind is EndpointKind.TELEMETRY

    def test_polls_are_downloads(self, population):
        for domain in population:
            for endpoint in domain.polls:
                assert endpoint.method.is_download()

    def test_pages_are_html(self, population):
        for domain in population:
            for page in domain.pages:
                assert page.mime_type == "text/html"

    def test_json_endpoints_are_json(self, population):
        domain = population.domains[0]
        for endpoint in domain.json_endpoints:
            assert endpoint.mime_type == "application/json"

    def test_never_domain_has_no_cacheable_endpoints(self, population):
        for domain in population:
            if domain.policy.kind is CachePolicyKind.NEVER:
                assert not any(e.cacheable for e in domain.json_endpoints)
                break
        else:
            pytest.skip("no NEVER domain in sample")

    def test_always_domain_fully_cacheable(self, population):
        for domain in population:
            if domain.policy.kind is CachePolicyKind.ALWAYS:
                assert all(e.cacheable for e in domain.json_endpoints)
                break
        else:
            pytest.skip("no ALWAYS domain in sample")

    def test_periodic_endpoints_union(self, population):
        domain = population.domains[0]
        assert set(domain.periodic_endpoints) == set(
            domain.telemetry + domain.polls
        )

    def test_invalid_population_size(self):
        with pytest.raises(ValueError):
            DomainPopulation(0)
