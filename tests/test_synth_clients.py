"""Unit tests for repro.synth.clients."""

import pytest

from repro.synth.clients import DEFAULT_SEGMENT_MIX, Client, ClientPopulation


@pytest.fixture(scope="module")
def population():
    return ClientPopulation(num_clients=3000, seed=5)


class TestSegmentMix:
    def test_mix_sums_to_one(self):
        assert sum(DEFAULT_SEGMENT_MIX.values()) == pytest.approx(1.0)

    def test_all_segments_present(self, population):
        counts = population.segment_counts()
        for segment in DEFAULT_SEGMENT_MIX:
            assert counts.get(segment, 0) > 0

    def test_segment_counts_near_weights(self, population):
        counts = population.segment_counts()
        total = len(population)
        for segment, weight in DEFAULT_SEGMENT_MIX.items():
            share = counts[segment] / total
            assert abs(share - weight) < 0.04, segment

    def test_custom_mix(self):
        pop = ClientPopulation(200, seed=1, segment_mix={"sdk": 1.0})
        assert set(pop.segment_counts()) == {"sdk"}

    def test_unnormalized_mix_accepted(self):
        pop = ClientPopulation(100, seed=1, segment_mix={"sdk": 2, "no_ua": 2})
        assert len(pop) == 100

    def test_zero_weight_mix_rejected(self):
        with pytest.raises(ValueError):
            ClientPopulation(10, seed=1, segment_mix={"sdk": 0.0})


class TestClients:
    def test_reproducible(self):
        a = ClientPopulation(100, seed=9)
        b = ClientPopulation(100, seed=9)
        assert [c.ip_hash for c in a] == [c.ip_hash for c in b]
        assert [c.user_agent for c in a] == [c.user_agent for c in b]

    def test_no_ua_segment_has_no_user_agent(self, population):
        for client in population.by_segment().get("no_ua", []):
            assert client.user_agent is None

    def test_other_segments_have_user_agent(self, population):
        for segment, group in population.by_segment().items():
            if segment == "no_ua":
                continue
            assert all(client.user_agent for client in group)

    def test_ip_hash_looks_hashed(self, population):
        client = population.clients[0]
        assert len(client.ip_hash) == 16
        int(client.ip_hash, 16)

    def test_activity_positive(self, population):
        assert all(client.activity > 0 for client in population)

    def test_client_key_matches_log_format(self, population):
        client = population.clients[0]
        assert client.client_key == f"{client.ip_hash}|{client.user_agent or ''}"

    def test_human_capable_flags(self):
        human = Client("ab", "ua", "mobile_app", 1.0)
        script = Client("cd", "curl/1.0", "sdk", 1.0)
        assert human.is_human_capable
        assert not script.is_human_capable

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ClientPopulation(0)
