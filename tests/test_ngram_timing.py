"""Unit tests for repro.ngram.timing and the timed prefetcher."""

import pytest

from repro.cdn.cache import LruTtlCache
from repro.cdn.edge import EdgeServer
from repro.cdn.network import LatencyModel
from repro.cdn.origin import OriginFleet
from repro.cdn.prefetch import TimedNgramPrefetcher, build_object_index
from repro.logs.record import CacheStatus
from repro.ngram.evaluate import build_timed_client_sequences
from repro.ngram.timing import TimedNgramModel
from repro.synth.clients import Client
from repro.synth.domains import CachePolicyKind, DomainPopulation
from repro.synth.rng import substream
from repro.synth.sessions import RequestEvent
from repro.synth.sizes import SizeModel
from tests.conftest import make_log


@pytest.fixture
def model():
    timed = TimedNgramModel(order=1)
    # a → b after ~5s, b → c after ~0.02s (too fast to prefetch).
    timed.fit(
        [
            [(0.0, "a"), (5.0, "b"), (5.02, "c")],
            [(10.0, "a"), (15.2, "b"), (15.22, "c")],
            [(30.0, "a"), (34.8, "b"), (34.82, "c")],
        ]
    )
    return timed


class TestTimedModel:
    def test_order_prediction_preserved(self, model):
        top = model.predict(["a"], k=1)
        assert top[0].token == "b"

    def test_expected_gap_median(self, model):
        assert model.expected_gap("a", "b") == pytest.approx(5.0, abs=0.3)

    def test_unknown_transition_gap_none(self, model):
        assert model.expected_gap("a", "zzz") is None

    def test_prediction_carries_gap(self, model):
        prediction = model.predict(["a"], k=1)[0]
        assert prediction.expected_gap_s == pytest.approx(5.0, abs=0.3)

    def test_backed_off_prediction_has_no_gap(self, model):
        predictions = model.predict(["never-seen"], k=3)
        assert all(p.expected_gap_s is None for p in predictions)

    def test_negative_gaps_ignored(self):
        timed = TimedNgramModel(order=1)
        timed.add_sequence([(5.0, "a"), (3.0, "b")])  # out of order
        assert timed.expected_gap("a", "b") is None

    def test_gap_stats_percentiles(self, model):
        stats = model.transition_gap_stats("a", "b")
        assert stats.count == 3
        assert stats.percentile_s(0) <= stats.median_s <= stats.percentile_s(100)

    def test_fit_from_logs_helper(self):
        logs = [
            make_log(timestamp=0.0, url="/api/v1/a"),
            make_log(timestamp=4.0, url="/api/v1/b"),
        ]
        sequences = build_timed_client_sequences(logs)
        timed = TimedNgramModel(order=1).fit(sequences.values())
        flow = next(iter(sequences.values()))
        assert timed.expected_gap(flow[0][1], flow[1][1]) == pytest.approx(4.0)


class TestWorthwhilePrefetches:
    def test_too_fast_transition_skipped(self, model):
        # b → c arrives in 20ms; a 100ms origin fetch can't win.
        selected = model.worthwhile_prefetches(["b"], k=1, min_lead_s=0.1)
        assert selected == []

    def test_normal_transition_kept(self, model):
        selected = model.worthwhile_prefetches(["a"], k=1, min_lead_s=0.1)
        assert [p.token for p in selected] == ["b"]

    def test_beyond_ttl_skipped(self, model):
        selected = model.worthwhile_prefetches(
            ["a"], k=1, min_lead_s=0.1, max_lead_s=2.0
        )
        assert selected == []

    def test_unknown_timing_kept(self, model):
        selected = model.worthwhile_prefetches(["never-seen"], k=2, min_lead_s=0.1)
        assert selected  # order evidence alone still drives prefetch


class TestTimedPrefetcher:
    @pytest.fixture
    def domains(self):
        return DomainPopulation(num_domains=25, seed=33)

    @pytest.fixture
    def edge(self):
        return EdgeServer(
            "edge-t",
            LruTtlCache(1 << 24),
            OriginFleet(),
            LatencyModel(substream(4, "lat")),
            SizeModel(substream(4, "sz")),
            substream(4, "edge"),
        )

    @pytest.fixture
    def client(self):
        return Client("aa11bb22", "NewsReader/2.0 (iPhone; iOS 13.1)",
                      "mobile_app", 1.0)

    def _always_domain(self, domains):
        for domain in domains:
            if domain.policy.kind is CachePolicyKind.ALWAYS:
                return domain
        pytest.skip("no ALWAYS domain")

    def test_prefetches_with_good_timing(self, domains, edge, client):
        domain = self._always_domain(domains)
        manifest = f"{domain.name}{domain.manifests[0].url}"
        item = f"{domain.name}{domain.contents[0].url}"
        timed = TimedNgramModel(order=1)
        timed.fit([[(0.0, manifest), (6.0, item)]] * 10)
        prefetcher = TimedNgramPrefetcher(
            timed, build_object_index([domain]), k=1, min_lead_s=0.1
        )
        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        edge.serve(event)
        assert prefetcher.on_request(edge, event) == 1
        follow = edge.serve(RequestEvent(6.0, client, domain, domain.contents[0]))
        assert follow.log.cache_status is CacheStatus.HIT

    def test_skips_prefetch_when_gap_too_small(self, domains, edge, client):
        domain = self._always_domain(domains)
        manifest = f"{domain.name}{domain.manifests[0].url}"
        item = f"{domain.name}{domain.contents[0].url}"
        timed = TimedNgramModel(order=1)
        timed.fit([[(0.0, manifest), (0.01, item)]] * 10)
        prefetcher = TimedNgramPrefetcher(
            timed, build_object_index([domain]), k=1, min_lead_s=0.1
        )
        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        assert prefetcher.on_request(edge, event) == 0
        assert prefetcher.skipped_timing == 1

    def test_skips_prefetch_beyond_ttl(self, domains, edge, client):
        domain = self._always_domain(domains)
        manifest = f"{domain.name}{domain.manifests[0].url}"
        item = f"{domain.name}{domain.contents[0].url}"
        gap = domain.policy.ttl_seconds * 2
        timed = TimedNgramModel(order=1)
        timed.fit([[(0.0, manifest), (gap, item)]] * 10)
        prefetcher = TimedNgramPrefetcher(
            timed, build_object_index([domain]), k=1
        )
        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        assert prefetcher.on_request(edge, event) == 0
        assert prefetcher.skipped_timing == 1

    def test_invalid_k(self, domains):
        with pytest.raises(ValueError):
            TimedNgramPrefetcher(TimedNgramModel(), {}, k=0)
