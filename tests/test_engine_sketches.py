"""Unit tests for repro.engine.sketches — accuracy and mergeability."""

import pickle

import pytest

from repro.engine.sketches import (
    CountMinSketch,
    HyperLogLog,
    ReservoirSample,
    TopK,
    UniqueCounter,
    stable_hash64,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("client-1") == stable_hash64("client-1")
        assert stable_hash64("client-1") != stable_hash64("client-2")

    def test_salt_changes_value(self):
        assert stable_hash64("x") != stable_hash64("x", salt=b"\x00\x01")

    def test_64_bit_range(self):
        value = stable_hash64("anything")
        assert 0 <= value < 2 ** 64


class TestHyperLogLog:
    def test_empty_estimate(self):
        assert HyperLogLog().estimate() == 0.0

    def test_accuracy_at_100k(self):
        sketch = HyperLogLog()
        for index in range(100_000):
            sketch.add(f"client-{index}")
        estimate = sketch.estimate()
        assert abs(estimate - 100_000) / 100_000 < 0.02

    def test_small_cardinalities_near_exact(self):
        for n in (1, 10, 100, 1000):
            sketch = HyperLogLog()
            for index in range(n):
                sketch.add(f"item-{index}")
            assert abs(sketch.estimate() - n) / n < 0.05

    def test_duplicates_ignored(self):
        sketch = HyperLogLog()
        for _ in range(1000):
            sketch.add("same")
        assert len(sketch) == 1

    def test_merge_equals_union(self):
        left, right, union = HyperLogLog(), HyperLogLog(), HyperLogLog()
        for index in range(5000):
            target = left if index % 2 else right
            target.add(f"item-{index}")
            union.add(f"item-{index}")
        left.merge(right)
        assert bytes(left.registers) == bytes(union.registers)

    def test_merge_precision_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HyperLogLog(12).merge(HyperLogLog(14))

    def test_round_trip_dict(self):
        sketch = HyperLogLog()
        sketch.update(f"item-{index}" for index in range(500))
        clone = HyperLogLog.from_dict(sketch.to_dict())
        assert clone.estimate() == sketch.estimate()

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=2)

    def test_relative_error_bound(self):
        assert HyperLogLog(14).relative_error == pytest.approx(0.0081, abs=5e-4)


class TestUniqueCounter:
    def test_exact_below_threshold(self):
        counter = UniqueCounter(exact_threshold=100)
        for index in range(100):
            counter.add(str(index))
        assert counter.is_exact
        assert len(counter) == 100
        assert "5" in counter

    def test_spills_above_threshold(self):
        counter = UniqueCounter(exact_threshold=50)
        for index in range(500):
            counter.add(str(index))
        assert not counter.is_exact
        assert abs(len(counter) - 500) / 500 < 0.1

    def test_membership_unavailable_after_spill(self):
        counter = UniqueCounter(exact_threshold=2)
        for index in range(10):
            counter.add(str(index))
        with pytest.raises(TypeError):
            "1" in counter

    def test_merge_exact_plus_exact(self):
        a, b = UniqueCounter(1000), UniqueCounter(1000)
        for index in range(40):
            a.add(f"a-{index}")
            b.add(f"b-{index}")
        b.add("a-0")  # overlap
        a.merge(b)
        assert a.is_exact and len(a) == 80

    def test_merge_spills_when_union_too_big(self):
        a, b = UniqueCounter(50), UniqueCounter(50)
        for index in range(40):
            a.add(f"a-{index}")
            b.add(f"b-{index}")
        a.merge(b)
        assert not a.is_exact
        assert abs(len(a) - 80) / 80 < 0.15

    def test_merge_mixed_modes(self):
        spilled, exact = UniqueCounter(10), UniqueCounter(10_000)
        for index in range(200):
            spilled.add(f"s-{index}")
        for index in range(5):
            exact.add(f"e-{index}")
        spilled.merge(exact)
        assert not spilled.is_exact
        assert abs(len(spilled) - 205) / 205 < 0.15


class TestReservoirSample:
    def test_keeps_everything_under_capacity(self):
        sample = ReservoirSample(capacity=100)
        for value in range(50):
            sample.add(float(value))
        assert sorted(sample.items) == [float(v) for v in range(50)]
        assert sample.count == 50

    def test_bounded_memory(self):
        sample = ReservoirSample(capacity=64)
        for value in range(10_000):
            sample.add(float(value))
        assert len(sample.items) == 64
        assert sample.count == 10_000

    def test_quantiles_approximate_uniform(self):
        sample = ReservoirSample(capacity=2000, seed=7)
        for value in range(100_000):
            sample.add(float(value))
        assert sample.quantile(0.5) == pytest.approx(50_000, rel=0.1)
        assert sample.quantile(0.0) < sample.quantile(1.0)

    def test_merge_count_and_capacity(self):
        a, b = ReservoirSample(capacity=50, seed=1), ReservoirSample(capacity=50, seed=2)
        for value in range(500):
            a.add(float(value))
            b.add(float(value + 500))
        a.merge(b)
        assert a.count == 1000
        assert len(a.items) == 50

    def test_merge_small_concatenates(self):
        a, b = ReservoirSample(capacity=100), ReservoirSample(capacity=100)
        a.add(1.0)
        b.add(2.0)
        a.merge(b)
        assert sorted(a.items) == [1.0, 2.0]

    def test_quantile_validation(self):
        sample = ReservoirSample()
        with pytest.raises(ValueError):
            sample.quantile(0.5)  # empty
        sample.add(1.0)
        with pytest.raises(ValueError):
            sample.quantile(1.5)


class TestCountMinSketch:
    def test_never_underestimates(self):
        sketch = CountMinSketch(width=256, depth=4)
        truth = {}
        for index in range(2000):
            key = f"key-{index % 100}"
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_heavy_hitter_accurate(self):
        sketch = CountMinSketch()
        for _ in range(5000):
            sketch.add("popular")
        for index in range(1000):
            sketch.add(f"rare-{index}")
        assert sketch.estimate("popular") == pytest.approx(5000, rel=0.02)

    def test_merge_equals_combined(self):
        a, b, combined = CountMinSketch(), CountMinSketch(), CountMinSketch()
        for index in range(1000):
            key = f"key-{index % 37}"
            (a if index % 2 else b).add(key)
            combined.add(key)
        a.merge(b)
        assert a.rows == combined.rows
        assert a.total == combined.total

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=128).merge(CountMinSketch(width=256))


class TestTopK:
    def test_exact_when_under_capacity(self):
        topk = TopK(capacity=100)
        for index in range(10):
            for _ in range(index + 1):
                topk.add(f"key-{index}")
        assert topk.top(1) == [("key-9", 10)]
        assert dict(topk.top(10))["key-0"] == 1

    def test_heavy_hitter_survives_eviction(self):
        topk = TopK(capacity=10)
        for _ in range(1000):
            topk.add("heavy")
        for index in range(500):
            topk.add(f"light-{index}")
        keys = [key for key, _ in topk.top(10)]
        assert "heavy" in keys

    def test_capacity_respected(self):
        topk = TopK(capacity=5)
        for index in range(100):
            topk.add(f"key-{index}")
        assert len(topk.counts) == 5

    def test_merge_sums_counts(self):
        a, b = TopK(capacity=50), TopK(capacity=50)
        for _ in range(10):
            a.add("shared")
        for _ in range(15):
            b.add("shared")
        a.merge(b)
        assert dict(a.top(1))["shared"] == 25
        assert a.total == 25

    def test_merge_retruncates(self):
        a, b = TopK(capacity=4), TopK(capacity=4)
        for index in range(4):
            for _ in range(index + 1):
                a.add(f"a-{index}")
                b.add(f"b-{index}")
        a.merge(b)
        assert len(a.counts) == 4


class TestPickling:
    def test_sketches_pickle_round_trip(self):
        hll = HyperLogLog()
        hll.add("x")
        reservoir = ReservoirSample()
        reservoir.add(1.0)
        cms = CountMinSketch()
        cms.add("x")
        topk = TopK()
        topk.add("x")
        unique = UniqueCounter(exact_threshold=1)
        unique.add("a")
        unique.add("b")
        for sketch in (hll, reservoir, cms, topk, unique):
            clone = pickle.loads(pickle.dumps(sketch))
            assert type(clone) is type(sketch)
        assert pickle.loads(pickle.dumps(hll)).estimate() == hll.estimate()
