"""Tests for repro.engine.executor — backends, determinism, errors.

Map functions used with the process backend must be module-level so
they pickle.
"""

import pytest

from repro.core.pipeline import run_characterization, run_characterization_parallel
from repro.engine.executor import EngineError, ShardExecutor, run_shards
from repro.engine.shard import MemoryShard, plan_memory_shards
from repro.engine.state import CharacterizationState
from tests.conftest import make_log


class SumState:
    """Minimal mergeable state: records the merge order."""

    def __init__(self, values=(), trace=()):
        self.values = list(values)
        self.trace = list(trace)

    def merge(self, other):
        self.values.extend(other.values)
        self.trace.extend(other.trace)
        return self


def sum_shard(shard):
    records = list(shard.iter_logs())
    return SumState(
        [record.response_bytes for record in records], [shard.shard_id]
    )


def failing_shard(shard):
    if shard.shard_id.endswith("0002-of-0004"):
        raise RuntimeError("boom in shard 2")
    return sum_shard(shard)


def characterize_shard(shard):
    return CharacterizationState().update(shard.iter_logs())


@pytest.fixture
def shards():
    logs = [
        make_log(client_ip_hash=f"cl-{index % 17:02x}", response_bytes=index)
        for index in range(200)
    ]
    return plan_memory_shards(logs, 4)


class TestBackends:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1),
        ("thread", 3),
        ("process", 2),
    ])
    def test_all_backends_agree(self, shards, backend, workers):
        state, report = run_shards(
            shards, sum_shard, workers=workers, backend=backend
        )
        assert sorted(state.values) == list(range(200))
        assert report.backend == backend
        assert report.total_shards == 4
        assert not report.failed

    def test_merge_order_is_plan_order(self, shards):
        serial_state, _ = run_shards(shards, sum_shard, backend="serial")
        thread_state, _ = run_shards(
            shards, sum_shard, workers=4, backend="thread"
        )
        assert serial_state.trace == [shard.shard_id for shard in shards]
        assert thread_state.trace == serial_state.trace
        assert thread_state.values == serial_state.values

    def test_auto_backend_selection(self):
        assert ShardExecutor(workers=1).backend == "serial"
        assert ShardExecutor(workers=4).backend == "process"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ShardExecutor(backend="gpu")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ShardExecutor(workers=0)

    def test_empty_plan(self):
        state, report = run_shards([], sum_shard)
        assert state is None
        assert report.total_shards == 0

    def test_duplicate_shard_ids_rejected(self):
        twins = [MemoryShard(shard_id="dup"), MemoryShard(shard_id="dup")]
        with pytest.raises(ValueError, match="duplicate"):
            run_shards(twins, sum_shard)


class TestErrorCapture:
    def test_strict_raises_after_all_shards(self, shards):
        with pytest.raises(EngineError) as excinfo:
            run_shards(shards, failing_shard, backend="serial")
        assert "0002-of-0004" in str(excinfo.value)
        assert len(excinfo.value.failures) == 1

    def test_non_strict_returns_partial(self, shards):
        state, report = run_shards(
            shards, failing_shard, backend="serial", strict=False
        )
        failed = report.failed
        assert len(failed) == 1
        assert "boom in shard 2" in failed[0].error
        assert report.executed == 3
        # The three healthy shards still merged.
        healthy = sum(len(shard.records) for shard in shards) - len(
            [r for s in shards if s.shard_id.endswith("0002-of-0004")
             for r in s.records]
        )
        assert len(state.values) == healthy

    def test_process_backend_captures_errors(self, shards):
        state, report = run_shards(
            shards, failing_shard, workers=2, backend="process", strict=False
        )
        assert len(report.failed) == 1
        assert "boom in shard 2" in report.failed[0].error


class TestUnpicklableMapFn:
    """The process backend must reject unpicklable map functions up
    front with one actionable error, not fail every shard with a
    cryptic ``PicklingError`` traceback."""

    def test_lambda_map_fn_fails_fast(self, shards):
        with pytest.raises(ValueError) as excinfo:
            run_shards(shards, lambda shard: None, workers=2, backend="process")
        message = str(excinfo.value)
        assert "picklable map function" in message
        assert "module top level" in message
        assert "thread/serial" in message

    def test_partial_with_unpicklable_binding_fails_fast(self, shards):
        from functools import partial

        def map_with_callback(shard, callback=None):
            return sum_shard(shard)

        bound = partial(map_with_callback, callback=lambda result: None)
        with pytest.raises(ValueError, match="picklable map function"):
            run_shards(shards, bound, workers=2, backend="process")

    def test_failure_precedes_any_shard_work(self, shards):
        """No ShardResults exist — the preflight rejects the whole run."""
        seen = []
        with pytest.raises(ValueError):
            run_shards(
                shards,
                lambda shard: None,
                workers=2,
                backend="process",
                progress=lambda result, done, total: seen.append(result),
            )
        assert seen == []

    def test_lambda_map_fn_fine_on_thread_backend(self, shards):
        state, report = run_shards(
            shards,
            lambda shard: sum_shard(shard),
            workers=2,
            backend="thread",
        )
        assert sorted(state.values) == list(range(200))
        assert not report.failed

    def test_lambda_progress_fine_on_process_backend(self, shards):
        """The progress callback runs in the parent and never pickles."""
        seen = []
        state, report = run_shards(
            shards,
            sum_shard,
            workers=2,
            backend="process",
            progress=lambda result, done, total: seen.append(done),
        )
        assert sorted(state.values) == list(range(200))
        assert sorted(seen) == [1, 2, 3, 4]


class TestProgress:
    def test_progress_called_per_shard(self, shards):
        seen = []

        def progress(result, done, total):
            seen.append((result.shard_id, done, total))

        run_shards(shards, sum_shard, backend="serial", progress=progress)
        assert len(seen) == 4
        assert [done for _, done, _ in seen] == [1, 2, 3, 4]
        assert all(total == 4 for _, _, total in seen)

    def test_report_statistics(self, shards):
        _, report = run_shards(shards, sum_shard, backend="serial")
        assert report.elapsed_seconds > 0
        assert report.skipped == 0
        assert report.executed == 4
        assert all(result.seconds >= 0 for result in report.results)


class TestParallelEqualsSerial:
    """The tentpole acceptance: engine result == serial pipeline."""

    def test_characterization_identical_across_backends(self, short_dataset):
        categories = {
            d.name: d.category.value for d in short_dataset.domains
        }
        serial = run_characterization(short_dataset.logs, categories)
        parallel = run_characterization_parallel(
            short_dataset.logs, categories, workers=4, backend="process"
        )
        assert parallel.traffic_source == serial.traffic_source
        assert parallel.request_type == serial.request_type
        assert parallel.cacheability == serial.cacheability
        assert parallel.summary == serial.summary
        assert parallel.heatmap == serial.heatmap
        assert parallel.apps == serial.apps
        for content_type, dist in serial.sizes.items():
            assert sorted(parallel.sizes[content_type].sizes) == sorted(dist.sizes)

    def test_shard_count_does_not_matter(self, short_dataset):
        sample = short_dataset.logs[:4000]
        reports = [
            run_characterization_parallel(sample, num_shards=n)
            for n in (1, 3, 16)
        ]
        for report in reports[1:]:
            assert report.traffic_source == reports[0].traffic_source
            assert report.summary == reports[0].summary

    def test_hll_estimate_tracks_exact(self, short_dataset):
        state = CharacterizationState().update(short_dataset.logs)
        exact = state.summary.num_clients
        estimate = state.unique_clients_estimate()
        assert abs(estimate - exact) / exact < 0.02

    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            run_characterization_parallel()
        with pytest.raises(ValueError):
            run_characterization_parallel([], logs_dir="/tmp/x")

    def test_with_stats(self, short_dataset):
        sample = short_dataset.logs[:2000]
        report, stats = run_characterization_parallel(
            sample, workers=2, backend="thread", with_stats=True
        )
        assert stats.total_records == len(sample)
        assert stats.total_shards == 8  # workers * 4
        assert report.summary.total_logs == len(sample)
