"""Unit tests for repro.ngram.model."""

import pytest

from repro.ngram.model import BackoffNgramModel


@pytest.fixture
def bigram():
    model = BackoffNgramModel(order=1)
    model.fit(
        [
            ["home", "stories", "item1", "item2"],
            ["home", "stories", "item1", "home"],
            ["home", "item3"],
        ]
    )
    return model


class TestConstruction:
    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BackoffNgramModel(order=0)

    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            BackoffNgramModel(backoff_discount=0.0)
        with pytest.raises(ValueError):
            BackoffNgramModel(backoff_discount=1.5)

    def test_training_counters(self, bigram):
        assert bigram.trained_sequences == 3
        assert bigram.trained_tokens == 10


class TestPrediction:
    def test_most_frequent_successor_first(self, bigram):
        assert bigram.predict(["home"], k=1) == ["stories"]

    def test_top_k_ordering(self, bigram):
        top = bigram.predict(["home"], k=3)
        assert top[0] == "stories"
        assert set(top[1:]) <= {"item3", "home", "item1", "item2"}

    def test_deterministic_successor(self, bigram):
        assert bigram.predict(["stories"], k=1) == ["item1"]

    def test_unknown_history_backs_off_to_unigram(self, bigram):
        top = bigram.predict(["never-seen"], k=1)
        # Unigram distribution: "home" and "stories"/"item1" are common.
        assert top[0] in {"home", "stories", "item1"}

    def test_empty_history_uses_unigram(self, bigram):
        assert bigram.predict([], k=1)

    def test_k_larger_than_vocab(self, bigram):
        top = bigram.predict(["home"], k=100)
        assert len(top) == len(set(top))

    def test_invalid_k(self, bigram):
        with pytest.raises(ValueError):
            bigram.predict(["home"], k=0)

    def test_no_duplicates_across_backoff_levels(self, bigram):
        top = bigram.predict(["home"], k=10)
        assert len(top) == len(set(top))


class TestHigherOrder:
    def test_longer_history_disambiguates(self):
        model = BackoffNgramModel(order=2)
        model.fit(
            [
                ["a", "x", "p"],
                ["a", "x", "p"],
                ["b", "x", "q"],
                ["b", "x", "q"],
            ]
        )
        assert model.predict(["a", "x"], k=1) == ["p"]
        assert model.predict(["b", "x"], k=1) == ["q"]

    def test_history_trimmed_to_order(self):
        model = BackoffNgramModel(order=1)
        model.fit([["a", "b", "c"]])
        # Only the last token matters for an order-1 model.
        assert model.predict(["zzz", "b"], k=1) == ["c"]

    def test_short_sequences_ignored(self):
        model = BackoffNgramModel(order=1)
        model.fit([["only"]])
        assert model.trained_sequences == 0


class TestScores:
    def test_probability_of_seen_transition(self, bigram):
        # home → stories twice, home → item3 once.
        assert bigram.probability(["home"], "stories") == pytest.approx(2 / 3)

    def test_probability_backoff_discounted(self, bigram):
        direct = bigram.probability(["home"], "stories")
        backed_off = bigram.probability(["never-seen"], "stories")
        assert 0 < backed_off < direct + 1e-9

    def test_probability_unseen_token(self, bigram):
        assert bigram.probability(["home"], "nope") == 0.0

    def test_scored_predictions_descending(self, bigram):
        scored = bigram.scored_predictions(["home"], k=4)
        values = [score for _, score in scored]
        # Same-level candidates are ordered; backoff levels discounted.
        assert values[0] >= values[1]

    def test_successors_raw_counts(self, bigram):
        successors = bigram.successors(["home"])
        assert successors == {"stories": 2, "item3": 1}


class TestIntrospection:
    def test_vocabulary_size(self, bigram):
        assert bigram.vocabulary_size == 5

    def test_context_count_positive(self, bigram):
        assert bigram.context_count() > 1

    def test_incremental_add_sequence(self):
        model = BackoffNgramModel(order=1)
        model.add_sequence(["a", "b"])
        model.add_sequence(["a", "c"])
        assert set(model.predict(["a"], k=2)) == {"b", "c"}


class TestMerge:
    SEQUENCES = [
        ["home", "stories", "item1", "item2"],
        ["home", "stories", "item1", "home"],
        ["home", "item3"],
        ["stories", "item1", "item3", "home"],
    ]

    def test_merge_equals_fit_on_all(self):
        whole = BackoffNgramModel(order=2).fit(self.SEQUENCES)
        left = BackoffNgramModel(order=2).fit(self.SEQUENCES[:2])
        right = BackoffNgramModel(order=2).fit(self.SEQUENCES[2:])
        merged = left.merge(right)
        assert merged.trained_sequences == whole.trained_sequences
        assert merged.trained_tokens == whole.trained_tokens
        assert merged.vocabulary_size == whole.vocabulary_size
        assert merged.context_count() == whole.context_count()
        for sequence in self.SEQUENCES:
            for position in range(1, len(sequence)):
                history = sequence[max(0, position - 2):position]
                assert merged.scored_predictions(history, k=5) == (
                    whole.scored_predictions(history, k=5)
                )
                assert merged.successors(history) == whole.successors(history)

    def test_merge_with_empty_is_identity(self):
        trained = BackoffNgramModel(order=1).fit(self.SEQUENCES)
        reference = BackoffNgramModel(order=1).fit(self.SEQUENCES)
        trained.merge(BackoffNgramModel(order=1))
        assert trained.successors(["home"]) == reference.successors(["home"])
        assert trained.trained_sequences == reference.trained_sequences

    def test_merge_order_mismatch_rejected(self):
        with pytest.raises(ValueError, match="order"):
            BackoffNgramModel(order=1).merge(BackoffNgramModel(order=2))

    def test_merge_discount_mismatch_rejected(self):
        with pytest.raises(ValueError, match="discount"):
            BackoffNgramModel(backoff_discount=0.4).merge(
                BackoffNgramModel(backoff_discount=0.9)
            )


class TestTieBreaks:
    def test_equal_counts_rank_by_token(self):
        model = BackoffNgramModel(order=1)
        model.fit([["x", "zeta"], ["x", "alpha"], ["x", "mid"]])
        assert model.predict(["x"], k=3) == ["alpha", "mid", "zeta"]

    def test_predictions_invariant_to_training_order(self):
        """Equal-count ties never depend on counter insertion order —
        the property the sharded trainer's exactness relies on."""
        sequences = [["x", "zeta"], ["x", "alpha"], ["x", "mid"]]
        forward = BackoffNgramModel(order=1).fit(sequences)
        backward = BackoffNgramModel(order=1).fit(reversed(sequences))
        assert forward.predict(["x"], k=3) == backward.predict(["x"], k=3)
        assert forward.scored_predictions(["x"], k=3) == (
            backward.scored_predictions(["x"], k=3)
        )
