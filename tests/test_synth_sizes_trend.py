"""Unit tests for repro.synth.sizes and repro.synth.trend."""

import numpy as np
import pytest

from repro.synth.domains import DomainPopulation, Endpoint, EndpointKind
from repro.synth.rng import substream
from repro.synth.sizes import HTML_MIXTURE, SizeModel, json_size_scale
from repro.synth.trend import MonthlyVolume, TrendModel


@pytest.fixture
def size_model():
    return SizeModel(substream(1, "sizes"))


@pytest.fixture(scope="module")
def domain():
    return DomainPopulation(num_domains=3, seed=1).domains[0]


class TestSizeModel:
    def test_sizes_positive(self, size_model, domain):
        for endpoint in domain.json_endpoints:
            assert size_model.sample(endpoint) >= 64

    def test_telemetry_smaller_than_content(self, size_model, domain):
        telemetry = [size_model.sample(domain.telemetry[0]) for _ in range(500)]
        content = [size_model.sample(domain.contents[0]) for _ in range(500)]
        assert np.median(telemetry) < np.median(content)

    def test_median_near_endpoint_median(self, size_model, domain):
        endpoint = domain.manifests[0]
        samples = [size_model.sample(endpoint) for _ in range(3000)]
        assert abs(np.median(samples) / endpoint.median_bytes - 1.0) < 0.15

    def test_html_mixture_heavy_tail(self, size_model, domain):
        page = domain.pages[0]
        samples = np.array([size_model.sample(page) for _ in range(5000)])
        p50, p75 = np.percentile(samples, [50, 75])
        # The document mixture makes p75 a multiple of p50 (≥4x).
        assert p75 / p50 > 4.0

    def test_html_mixture_weights_sum_to_one(self):
        assert sum(w for w, _, _ in HTML_MIXTURE) == pytest.approx(1.0)

    def test_request_body_zero_for_get(self, size_model, domain):
        assert size_model.sample_request_body(domain.manifests[0]) == 0

    def test_request_body_positive_for_post(self, size_model, domain):
        assert size_model.sample_request_body(domain.telemetry[0]) >= 32

    def test_year_scaling_shrinks_json(self, domain):
        early = SizeModel(substream(1, "a"), year=2016.0)
        late = SizeModel(substream(1, "a"), year=2019.0)
        endpoint = domain.manifests[0]
        early_sizes = [early.sample(endpoint) for _ in range(2000)]
        late_sizes = [late.sample(endpoint) for _ in range(2000)]
        ratio = np.mean(late_sizes) / np.mean(early_sizes)
        # §4: JSON responses shrank ~28% between 2016 and 2019.
        assert 0.62 < ratio < 0.82

    def test_year_scaling_does_not_touch_html(self, domain):
        early = SizeModel(substream(1, "a"), year=2016.0)
        late = SizeModel(substream(1, "a"), year=2019.0)
        page = domain.pages[0]
        early_sizes = np.median([early.sample(page) for _ in range(2000)])
        late_sizes = np.median([late.sample(page) for _ in range(2000)])
        assert abs(late_sizes / early_sizes - 1.0) < 0.2


class TestJsonSizeScale:
    def test_normalized_at_2019(self):
        assert json_size_scale(2019) == pytest.approx(1.0)

    def test_2016_is_about_28pct_larger_budget(self):
        assert json_size_scale(2016) == pytest.approx(1 / 0.72, rel=0.05)

    def test_monotonic_decrease(self):
        years = [2016, 2017, 2018, 2019]
        scales = [json_size_scale(year) for year in years]
        assert all(a > b for a, b in zip(scales, scales[1:]))


class TestTrendModel:
    def test_month_range(self):
        model = TrendModel(seed=1)
        months = model.months()
        assert months[0] == (2016, 1)
        assert months[-1] == (2019, 6)
        assert len(months) == 42

    def test_series_covers_all_months(self):
        model = TrendModel(seed=1)
        assert len(model.series()) == len(model.months())

    def test_ratio_grows_to_target(self):
        model = TrendModel(seed=1, json_end_ratio=4.3)
        series = model.ratio_series()
        assert series[0][1] < 1.3
        assert series[-1][1] > 3.8

    def test_end_ratio_exceeds_4x(self):
        # Figure 1: JSON requested >4x more than HTML at window end.
        model = TrendModel(seed=2)
        assert model.ratio_series()[-1][1] > 4.0

    def test_reproducible(self):
        a = TrendModel(seed=3).ratio_series()
        b = TrendModel(seed=3).ratio_series()
        assert a == b

    def test_counts_positive(self):
        for volume in TrendModel(seed=1).series():
            assert all(count > 0 for count in volume.counts.values())

    def test_monthly_volume_ratio_handles_zero(self):
        volume = MonthlyVolume(2019, 1, {"application/json": 10, "text/html": 0})
        assert volume.ratio("application/json", "text/html") == float("inf")

    def test_invalid_ratios_rejected(self):
        with pytest.raises(ValueError):
            TrendModel(json_start_ratio=2.0, json_end_ratio=1.0)

    def test_label_format(self):
        volume = MonthlyVolume(2016, 3, {})
        assert volume.label == "2016-03"
