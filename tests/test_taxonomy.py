"""Unit tests for repro.core.taxonomy."""

from repro.core.taxonomy import (
    AppClass,
    DeviceType,
    IndustryCategory,
    RequestKind,
    TrafficSource,
    TriggerType,
)


class TestEnums:
    def test_device_types_cover_paper_categories(self):
        values = {device.value for device in DeviceType}
        assert values == {"mobile", "desktop", "embedded", "unknown"}

    def test_app_class_browser_flag(self):
        assert AppClass.BROWSER.is_browser
        assert not AppClass.NATIVE_APP.is_browser
        assert not AppClass.SDK.is_browser

    def test_trigger_types(self):
        assert {t.value for t in TriggerType} == {"human", "machine", "unknown"}

    def test_request_kinds(self):
        assert {k.value for k in RequestKind} == {"download", "upload", "other"}

    def test_industry_categories_cover_figure4(self):
        names = {category.value for category in IndustryCategory}
        for expected in (
            "News/Media",
            "Sports",
            "Entertainment",
            "Financial Services",
            "Streaming",
            "Gaming",
        ):
            assert expected in names
        assert len(names) == 11  # the paper's top-11 heatmap rows

    def test_enums_are_string_valued(self):
        assert isinstance(DeviceType.MOBILE.value, str)
        assert DeviceType("mobile") is DeviceType.MOBILE


class TestTrafficSource:
    def test_is_browser(self):
        source = TrafficSource(DeviceType.MOBILE, AppClass.BROWSER)
        assert source.is_browser

    def test_is_identified(self):
        assert TrafficSource(DeviceType.MOBILE, AppClass.UNKNOWN).is_identified
        assert not TrafficSource(DeviceType.UNKNOWN, AppClass.SDK).is_identified

    def test_raw_platform_preserved(self):
        source = TrafficSource(DeviceType.MOBILE, AppClass.NATIVE_APP, "iOS")
        assert source.raw_platform == "iOS"

    def test_frozen(self):
        source = TrafficSource(DeviceType.MOBILE, AppClass.BROWSER)
        try:
            source.device = DeviceType.DESKTOP
            assert False, "should be frozen"
        except AttributeError:
            pass
