"""Unit tests for repro.cdn.edge, .origin, .network, .metrics."""

import pytest

from repro.cdn.cache import LruTtlCache
from repro.cdn.edge import EdgeServer
from repro.cdn.metrics import DeliveryMetrics, percentile
from repro.cdn.network import LatencyModel
from repro.cdn.origin import OriginFleet
from repro.logs.record import CacheStatus
from repro.synth.clients import Client
from repro.synth.domains import CachePolicyKind, DomainPopulation
from repro.synth.rng import substream
from repro.synth.sessions import RequestEvent
from repro.synth.sizes import SizeModel


@pytest.fixture(scope="module")
def domains():
    return DomainPopulation(num_domains=30, seed=21)


@pytest.fixture
def edge():
    return EdgeServer(
        edge_id="edge-test",
        cache=LruTtlCache(1 << 24),
        origins=OriginFleet(),
        latency_model=LatencyModel(substream(1, "lat")),
        size_model=SizeModel(substream(1, "sz")),
        rng=substream(1, "edge"),
    )


@pytest.fixture
def client():
    return Client("abcd1234", "NewsReader/1.0 (iPhone; iOS 13.1)", "mobile_app", 1.0)


def cacheable_domain(domains):
    for domain in domains:
        if domain.policy.kind is CachePolicyKind.ALWAYS:
            return domain
    pytest.skip("no ALWAYS domain")


def uncacheable_domain(domains):
    for domain in domains:
        if domain.policy.kind is CachePolicyKind.NEVER:
            return domain
    pytest.skip("no NEVER domain")


class TestServePath:
    def test_first_request_is_miss(self, edge, client, domains):
        domain = cacheable_domain(domains)
        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        served = edge.serve(event)
        assert served.log.cache_status is CacheStatus.MISS
        assert served.origin_fetch

    def test_second_request_is_hit(self, edge, client, domains):
        domain = cacheable_domain(domains)
        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        edge.serve(event)
        served = edge.serve(RequestEvent(1.0, client, domain, domain.manifests[0]))
        assert served.log.cache_status is CacheStatus.HIT
        assert not served.origin_fetch

    def test_hit_size_matches_miss_size(self, edge, client, domains):
        domain = cacheable_domain(domains)
        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        first = edge.serve(event)
        second = edge.serve(RequestEvent(1.0, client, domain, domain.manifests[0]))
        assert first.log.response_bytes == second.log.response_bytes

    def test_expired_after_ttl_is_miss(self, edge, client, domains):
        domain = cacheable_domain(domains)
        ttl = domain.policy.ttl_seconds
        edge.serve(RequestEvent(0.0, client, domain, domain.manifests[0]))
        served = edge.serve(
            RequestEvent(ttl + 1.0, client, domain, domain.manifests[0])
        )
        assert served.log.cache_status is CacheStatus.MISS

    def test_uncacheable_is_no_store(self, edge, client, domains):
        domain = uncacheable_domain(domains)
        served = edge.serve(RequestEvent(0.0, client, domain, domain.manifests[0]))
        assert served.log.cache_status is CacheStatus.NO_STORE
        assert served.log.ttl_seconds is None
        assert served.origin_fetch

    def test_uncacheable_always_origin(self, edge, client, domains):
        domain = uncacheable_domain(domains)
        for t in range(5):
            served = edge.serve(
                RequestEvent(float(t), client, domain, domain.manifests[0])
            )
            assert served.origin_fetch

    def test_log_fields_populated(self, edge, client, domains):
        domain = cacheable_domain(domains)
        served = edge.serve(RequestEvent(5.0, client, domain, domain.manifests[0]))
        log = served.log
        assert log.timestamp == 5.0
        assert log.client_ip_hash == client.ip_hash
        assert log.user_agent == client.user_agent
        assert log.domain == domain.name
        assert log.edge_id == "edge-test"
        assert log.response_bytes > 0

    def test_origin_fleet_accounting(self, edge, client, domains):
        domain = cacheable_domain(domains)
        edge.serve(RequestEvent(0.0, client, domain, domain.manifests[0]))
        edge.serve(RequestEvent(1.0, client, domain, domain.manifests[0]))
        assert edge.origins.total_requests == 1
        assert edge.origins.domain_stats(domain.name).requests == 1

    def test_miss_latency_includes_middle_mile(self, edge, client, domains):
        domain = cacheable_domain(domains)
        miss = edge.serve(RequestEvent(0.0, client, domain, domain.manifests[0]))
        hit = edge.serve(RequestEvent(1.0, client, domain, domain.manifests[0]))
        assert miss.latency.middle_mile_s > 0
        assert hit.latency.middle_mile_s == 0


class TestPrefetch:
    def test_prefetch_warms_cache(self, edge, client, domains):
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        assert edge.prefetch(domain.name, endpoint, 0.0, domain.policy.ttl_seconds)
        served = edge.serve(RequestEvent(1.0, client, domain, endpoint))
        assert served.log.cache_status is CacheStatus.HIT

    def test_prefetch_skips_fresh_object(self, edge, client, domains):
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        edge.prefetch(domain.name, endpoint, 0.0, 300.0)
        assert not edge.prefetch(domain.name, endpoint, 1.0, 300.0)

    def test_prefetch_refuses_uncacheable(self, edge, domains):
        domain = uncacheable_domain(domains)
        assert not edge.prefetch(
            domain.name, domain.manifests[0], 0.0, None
        )

    def test_prefetch_counts_origin_fetch(self, edge, domains):
        domain = cacheable_domain(domains)
        before = edge.origins.total_requests
        edge.prefetch(domain.name, domain.manifests[0], 0.0, 300.0)
        assert edge.origins.total_requests == before + 1


class TestOriginFleet:
    def test_offload_ratio(self):
        fleet = OriginFleet()
        fleet.fetch("a.com", 100)
        assert fleet.offload_ratio(total_cdn_requests=4) == pytest.approx(0.75)

    def test_offload_ratio_empty(self):
        assert OriginFleet().offload_ratio(0) == 0.0

    def test_top_domains(self):
        fleet = OriginFleet()
        for _ in range(3):
            fleet.fetch("a.com", 10)
        fleet.fetch("b.com", 10)
        assert list(fleet.top_domains(1)) == ["a.com"]


class TestLatencyModel:
    def test_transfer_scales_with_size(self):
        model = LatencyModel(substream(2, "lat"))
        small = model.sample(1_000, origin_fetch=False)
        large = model.sample(10_000_000, origin_fetch=False)
        assert large.transfer_s > small.transfer_s

    def test_total_is_sum(self):
        model = LatencyModel(substream(2, "lat"))
        sample = model.sample(1000, origin_fetch=True)
        assert sample.total_s == pytest.approx(
            sample.last_mile_s + sample.middle_mile_s + sample.transfer_s
        )


class TestDeliveryMetrics:
    def test_percentile_linear_interpolation(self):
        # The repo-wide canonical definition (repro.core.stats):
        # linear interpolation between closest ranks, not nearest-rank.
        assert percentile([1, 2, 3, 4], 50) == 2.5
        assert percentile([1, 2, 3, 4], 100) == 4
        assert percentile([1, 2, 3, 4], 0) == 1

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 200)

    def test_latency_memory_stays_bounded(self):
        # Regression: latencies used to accumulate in an unbounded
        # list (one float per served request, forever).  The sketch
        # keeps a bounded bucket grid no matter the request volume.
        import math

        metrics = DeliveryMetrics()
        for i in range(100_000):
            # Latencies spread over ~5 decades (10µs .. 10s).
            metrics.latency_sketch.observe(1e-5 * 10 ** ((i % 1000) / 200))
        assert metrics.latency_sketch.count == 100_000
        # log(1e6 dynamic range) / log(growth) ≈ a few hundred buckets.
        grid_bound = (
            math.log(1e7) / math.log(metrics.latency_sketch.growth) + 2
        )
        assert len(metrics.latency_sketch.buckets) <= grid_bound
        assert len(metrics.latency_sketch.buckets) < 500

    def test_sketch_percentiles_track_exact(self, edge, client, domains):
        domain = cacheable_domain(domains)
        metrics = DeliveryMetrics()
        exact = []
        endpoint = domain.manifests[0]
        for t in range(200):
            served = edge.serve(
                RequestEvent(float(t), client, domain, endpoint)
            )
            exact.append(served.latency.total_s)
            metrics.record(served)
        for q in (50, 90, 99):
            estimate = metrics.latency_percentile_s(q)
            truth = percentile(exact, q)
            # Sketch relative error is bounded by growth - 1 (~4.4%).
            assert estimate == pytest.approx(truth, rel=0.05)

    def test_metrics_merge_matches_single_pass(self, edge, client, domains):
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        single = DeliveryMetrics()
        left, right = DeliveryMetrics(), DeliveryMetrics()
        for t in range(40):
            served = edge.serve(
                RequestEvent(float(t), client, domain, endpoint)
            )
            single.record(served)
            (left if t < 20 else right).record(served)
        merged = left.merge(right)
        merged_summary, single_summary = merged.summary(), single.summary()
        assert set(merged_summary) == set(single_summary)
        for key, value in single_summary.items():
            assert merged_summary[key] == pytest.approx(value)

    def test_metrics_accumulate(self, edge, client, domains):
        domain = cacheable_domain(domains)
        metrics = DeliveryMetrics()
        endpoint = domain.manifests[0]
        metrics.record(edge.serve(RequestEvent(0.0, client, domain, endpoint)))
        metrics.record(edge.serve(RequestEvent(1.0, client, domain, endpoint)))
        assert metrics.requests == 2
        assert metrics.hits == 1
        assert metrics.hit_ratio == pytest.approx(0.5)
        assert metrics.mean_latency_s > 0
        assert "p50_latency_ms" in metrics.summary()
