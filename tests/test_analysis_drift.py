"""Tests for repro.analysis.drift."""

import pytest

from repro.analysis.drift import MetricDelta, compare_traffic, traffic_metrics
from repro.logs.record import CacheStatus, HttpMethod
from tests.conftest import make_log


def batch(count, **overrides):
    return [make_log(timestamp=float(i), **overrides) for i in range(count)]


class TestTrafficMetrics:
    def test_metric_vector_keys(self, short_dataset):
        metrics = traffic_metrics(short_dataset.logs[:5000])
        for key in (
            "json_share",
            "mobile_share",
            "get_share",
            "uncacheable_share",
            "mean_json_bytes",
        ):
            assert key in metrics

    def test_empty_json(self):
        metrics = traffic_metrics(batch(3, mime_type="text/html"))
        assert metrics == {"json_share": 0.0}

    def test_json_share(self):
        logs = batch(3) + batch(1, mime_type="text/html")
        assert traffic_metrics(logs)["json_share"] == pytest.approx(0.75)


class TestMetricDelta:
    def test_absolute_and_relative(self):
        delta = MetricDelta("x", 2.0, 3.0)
        assert delta.absolute == pytest.approx(1.0)
        assert delta.relative == pytest.approx(0.5)

    def test_zero_before(self):
        assert MetricDelta("x", 0.0, 1.0).relative == float("inf")
        assert MetricDelta("x", 0.0, 0.0).relative == 0.0

    def test_render_direction(self):
        assert "↑" in MetricDelta("x", 1.0, 2.0).render()
        assert "↓" in MetricDelta("x", 2.0, 1.0).render()


class TestCompareTraffic:
    def test_identical_collections_stable(self, short_dataset):
        sample = short_dataset.logs[:4000]
        report = compare_traffic(sample, sample)
        assert report.stable
        assert all(delta.absolute == 0 for delta in report.deltas)

    def test_method_shift_detected(self):
        before = batch(100, method=HttpMethod.GET)
        after = batch(60, method=HttpMethod.GET) + batch(
            40, method=HttpMethod.POST, request_bytes=10
        )
        report = compare_traffic(before, after, threshold=0.10)
        get_delta = report.get("get_share")
        assert get_delta is not None
        assert get_delta.after == pytest.approx(0.6)
        assert get_delta in report.drifted()

    def test_size_shrink_detected(self):
        before = batch(100, response_bytes=2000)
        after = batch(100, response_bytes=1440)  # the paper's -28%
        report = compare_traffic(before, after)
        delta = report.get("mean_json_bytes")
        assert delta.relative == pytest.approx(-0.28)
        assert delta in report.drifted()

    def test_cacheability_shift_detected(self):
        before = batch(100, cache_status=CacheStatus.HIT)
        after = batch(
            100, cache_status=CacheStatus.NO_STORE, ttl_seconds=None
        )
        report = compare_traffic(before, after)
        assert report.get("uncacheable_share").after == 1.0
        assert not report.stable

    def test_render_summary_line(self, short_dataset):
        sample = short_dataset.logs[:2000]
        text = compare_traffic(sample, sample).render()
        assert "metrics drifted" in text

    def test_split_dataset_halves_are_similar(self, short_dataset):
        logs = short_dataset.logs
        midpoint = len(logs) // 2
        report = compare_traffic(logs[:midpoint], logs[midpoint:],
                                 threshold=0.25)
        # Same generator, same window → structural metrics stable.
        structural = [
            report.get(name)
            for name in ("mobile_share", "get_share", "non_browser_share")
        ]
        assert all(abs(delta.relative) < 0.25 for delta in structural)
