"""Tests for repro.analysis.drift."""

import pytest

from repro.analysis.drift import (
    METRIC_NAMES,
    MetricDelta,
    compare_metrics,
    compare_traffic,
    traffic_metrics,
)
from repro.logs.record import CacheStatus, HttpMethod
from tests.conftest import make_log


def batch(count, **overrides):
    return [make_log(timestamp=float(i), **overrides) for i in range(count)]


class TestTrafficMetrics:
    def test_metric_vector_keys(self, short_dataset):
        metrics = traffic_metrics(short_dataset.logs[:5000])
        for key in (
            "json_share",
            "mobile_share",
            "get_share",
            "uncacheable_share",
            "mean_json_bytes",
        ):
            assert key in metrics

    def test_empty_json_emits_full_stable_vector(self):
        # A collection with no JSON records must still report every
        # metric: shares measure zero, size statistics are undefined
        # (None).  Truncating the vector here used to silently drop
        # eight metrics from quiet-window drift reports.
        metrics = traffic_metrics(batch(3, mime_type="text/html"))
        assert set(metrics) == set(METRIC_NAMES)
        assert metrics["json_share"] == 0.0
        assert metrics["get_share"] == 0.0
        assert metrics["mean_json_bytes"] is None
        assert metrics["p50_json_bytes"] is None
        defined = {
            name: value
            for name, value in metrics.items()
            if name not in ("mean_json_bytes", "p50_json_bytes")
        }
        assert all(value == 0.0 for value in defined.values())

    def test_json_share(self):
        logs = batch(3) + batch(1, mime_type="text/html")
        assert traffic_metrics(logs)["json_share"] == pytest.approx(0.75)


class TestMetricDelta:
    def test_absolute_and_relative(self):
        delta = MetricDelta("x", 2.0, 3.0)
        assert delta.absolute == pytest.approx(1.0)
        assert delta.relative == pytest.approx(0.5)

    def test_zero_before(self):
        assert MetricDelta("x", 0.0, 1.0).relative == float("inf")
        assert MetricDelta("x", 0.0, 0.0).relative == 0.0

    def test_render_direction(self):
        assert "↑" in MetricDelta("x", 1.0, 2.0).render()
        assert "↓" in MetricDelta("x", 2.0, 1.0).render()

    def test_none_sides_are_explicit(self):
        # Undefined-on-both-sides: nothing moved.
        both = MetricDelta("x", None, None)
        assert both.absolute is None
        assert both.relative == 0.0
        # Appearing or disappearing is always reportable drift.
        appeared = MetricDelta("x", None, 3.0)
        disappeared = MetricDelta("x", 3.0, None)
        assert appeared.absolute is None
        assert appeared.relative == float("inf")
        assert disappeared.relative == float("inf")
        # render must not crash on undefined sides.
        assert "n/a" in appeared.render()
        assert "n/a" in disappeared.render()
        assert "n/a" in both.render()


class TestCompareTraffic:
    def test_identical_collections_stable(self, short_dataset):
        sample = short_dataset.logs[:4000]
        report = compare_traffic(sample, sample)
        assert report.stable
        assert all(delta.absolute == 0 for delta in report.deltas)

    def test_method_shift_detected(self):
        before = batch(100, method=HttpMethod.GET)
        after = batch(60, method=HttpMethod.GET) + batch(
            40, method=HttpMethod.POST, request_bytes=10
        )
        report = compare_traffic(before, after, threshold=0.10)
        get_delta = report.get("get_share")
        assert get_delta is not None
        assert get_delta.after == pytest.approx(0.6)
        assert get_delta in report.drifted()

    def test_size_shrink_detected(self):
        before = batch(100, response_bytes=2000)
        after = batch(100, response_bytes=1440)  # the paper's -28%
        report = compare_traffic(before, after)
        delta = report.get("mean_json_bytes")
        assert delta.relative == pytest.approx(-0.28)
        assert delta in report.drifted()

    def test_cacheability_shift_detected(self):
        before = batch(100, cache_status=CacheStatus.HIT)
        after = batch(
            100, cache_status=CacheStatus.NO_STORE, ttl_seconds=None
        )
        report = compare_traffic(before, after)
        assert report.get("uncacheable_share").after == 1.0
        assert not report.stable

    def test_render_summary_line(self, short_dataset):
        sample = short_dataset.logs[:2000]
        text = compare_traffic(sample, sample).render()
        assert "metrics drifted" in text

    def test_no_json_window_vs_normal_window(self):
        # The quiet-window regression: before the fix, a no-JSON
        # collection emitted only {"json_share": 0.0} and the other
        # eight metrics vanished from the drift report entirely.
        quiet = batch(50, mime_type="text/html")
        busy = batch(50)
        report = compare_traffic(quiet, busy)
        assert {delta.name for delta in report.deltas} == set(METRIC_NAMES)
        json_share = report.get("json_share")
        assert json_share.before == 0.0
        assert json_share.after == 1.0
        # Size statistics went from undefined to defined: flagged as
        # drift (inf), never silently treated as a move from zero.
        mean_bytes = report.get("mean_json_bytes")
        assert mean_bytes.before is None
        assert mean_bytes.after is not None
        assert mean_bytes.relative == float("inf")
        assert mean_bytes in report.drifted()
        # The reverse direction (busy → quiet) is symmetric.
        reverse = compare_traffic(busy, quiet)
        assert reverse.get("mean_json_bytes").relative == float("inf")
        assert reverse.render()  # full report renders with n/a cells

    def test_compare_metrics_missing_key_is_undefined(self):
        report = compare_metrics({"a": 1.0}, {"a": 1.0, "b": 2.0})
        b = report.get("b")
        assert b.before is None
        assert b.relative == float("inf")

    def test_split_dataset_halves_are_similar(self, short_dataset):
        logs = short_dataset.logs
        midpoint = len(logs) // 2
        report = compare_traffic(logs[:midpoint], logs[midpoint:],
                                 threshold=0.25)
        # Same generator, same window → structural metrics stable.
        structural = [
            report.get(name)
            for name in ("mobile_share", "get_share", "non_browser_share")
        ]
        assert all(abs(delta.relative) < 0.25 for delta in structural)
