"""Unit tests for repro.core.report and repro.core.stats."""

import pytest

from repro.core.report import (
    format_pct,
    render_bar_chart,
    render_heatmap,
    render_table,
)
from repro.core.stats import ecdf, histogram, relative_error, within


class TestStats:
    def test_ecdf_reaches_one(self):
        points = ecdf([3.0, 1.0, 2.0])
        assert points[0] == (1.0, pytest.approx(1 / 3))
        assert points[-1] == (3.0, pytest.approx(1.0))

    def test_ecdf_sorted(self):
        values = [value for value, _ in ecdf([5, 1, 9, 2])]
        assert values == sorted(values)

    def test_histogram_buckets(self):
        bars = histogram([1, 2, 11, 12, 13], bin_width=10)
        assert bars == [(0.0, 2), (10.0, 3)]

    def test_histogram_validates(self):
        with pytest.raises(ValueError):
            histogram([1.0], 0)

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")

    def test_within(self):
        assert within(0.55, 0.553, 0.01)
        assert not within(0.55, 0.60, 0.01)


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]])
        assert "a" in text and "bb" in text
        assert "333" in text

    def test_title_on_first_line(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = render_table(["x", "y"], [])
        assert "x" in text


class TestRenderBarChart:
    def test_bars_proportional(self):
        text = render_bar_chart([("big", 100.0), ("small", 10.0)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty(self):
        assert render_bar_chart([], title="none") == "none"

    def test_value_format(self):
        text = render_bar_chart([("x", 0.5)], value_format="{:.2f}x")
        assert "0.50x" in text


class TestRenderHeatmap:
    def test_rows_and_columns_present(self):
        text = render_heatmap(
            [("Gaming", {"never": 0.9, "always": 0.1})],
            columns=["never", "always"],
        )
        assert "Gaming" in text
        assert "never" in text
        assert "90%" in text

    def test_title(self):
        text = render_heatmap([], columns=["a"], title="Figure 4")
        assert text.startswith("Figure 4")


class TestFormatPct:
    def test_basic(self):
        assert format_pct(0.553) == "55.3%"

    def test_digits(self):
        assert format_pct(0.5, digits=0) == "50%"
