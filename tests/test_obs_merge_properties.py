"""Merge-algebra properties of the observability accumulators.

The engine folds per-shard metric registries in plan order, exactly
as it folds analysis states — so :class:`~repro.obs.sketch.QuantileSketch`
and :class:`~repro.obs.registry.MetricsRegistry` must satisfy the
same commutative-monoid contract ``tests/test_engine_merge_properties.py``
pins for the analysis states: merge in any order, any grouping, with
empty states interleaved, equals the single-stream fold; and states
survive the process-pool pickle boundary.

Observations are integer-valued so every canonical projection —
bucket counts *and* running sums — compares exactly, with no
float-association caveats.
"""

from __future__ import annotations

import pickle
import random

from repro.obs.registry import MetricsRegistry
from repro.obs.sketch import QuantileSketch

TRIALS = 20


def random_split(items, rng, parts):
    buckets = [[] for _ in range(parts)]
    for item in items:
        buckets[rng.randrange(parts)].append(item)
    return buckets


def roundtrip(state):
    return pickle.loads(pickle.dumps(state))


class TestQuantileSketchAlgebra:
    def stream(self, rng):
        return [float(rng.randrange(1, 10_000)) for _ in range(rng.randrange(5, 120))]

    def build(self, values):
        return QuantileSketch().update(values)

    def canonical(self, sketch):
        return sketch.to_dict()

    def test_commutative(self):
        rng = random.Random(101)
        for _ in range(TRIALS):
            left, right = random_split(self.stream(rng), rng, 2)
            ab = self.build(left).merge(self.build(right))
            ba = self.build(right).merge(self.build(left))
            assert self.canonical(ab) == self.canonical(ba)

    def test_associative(self):
        rng = random.Random(202)
        for _ in range(TRIALS):
            a, b, c = random_split(self.stream(rng), rng, 3)
            left = self.build(a).merge(self.build(b)).merge(self.build(c))
            right = self.build(a).merge(self.build(b).merge(self.build(c)))
            assert self.canonical(left) == self.canonical(right)

    def test_identity(self):
        rng = random.Random(303)
        values = self.stream(rng)
        expected = self.canonical(self.build(values))
        assert self.canonical(
            self.build(values).merge(QuantileSketch())
        ) == expected
        assert self.canonical(
            QuantileSketch().merge(self.build(values))
        ) == expected

    def test_split_invariant(self):
        rng = random.Random(404)
        for _ in range(TRIALS):
            values = self.stream(rng)
            expected = self.canonical(self.build(values))
            merged = QuantileSketch()
            for part in random_split(values, rng, rng.randrange(2, 6)):
                merged.merge(self.build(part))
            assert self.canonical(merged) == expected

    def test_pickle_roundtrip(self):
        rng = random.Random(505)
        values = self.stream(rng)
        sketch = self.build(values)
        assert self.canonical(roundtrip(sketch)) == self.canonical(sketch)
        left, right = random_split(values, rng, 2)
        merged = roundtrip(self.build(left)).merge(roundtrip(self.build(right)))
        assert self.canonical(merged) == self.canonical(self.build(values))


class TestRegistryAlgebra:
    """One trial item = one metric event; a registry accumulates them."""

    def stream(self, rng):
        events = []
        for _ in range(rng.randrange(5, 80)):
            kind = rng.randrange(3)
            if kind == 0:
                events.append(
                    ("inc", f"c.{rng.randrange(4)}", rng.randrange(1, 5))
                )
            elif kind == 1:
                events.append(
                    ("observe", f"h.{rng.randrange(3)}",
                     float(rng.randrange(1, 1000)))
                )
            else:
                events.append(
                    ("max_gauge", f"g.{rng.randrange(2)}",
                     float(rng.randrange(100)))
                )
        return events

    def build(self, events):
        registry = MetricsRegistry()
        for kind, name, value in events:
            getattr(registry, kind)(name, value)
        return registry

    def canonical(self, registry):
        snap = registry.snapshot()
        return (snap["counters"], snap["gauges"], snap["histograms"])

    def test_commutative(self):
        rng = random.Random(111)
        for _ in range(TRIALS):
            left, right = random_split(self.stream(rng), rng, 2)
            ab = self.build(left).merge(self.build(right))
            ba = self.build(right).merge(self.build(left))
            assert self.canonical(ab) == self.canonical(ba)

    def test_associative(self):
        rng = random.Random(222)
        for _ in range(TRIALS):
            a, b, c = random_split(self.stream(rng), rng, 3)
            left = self.build(a).merge(self.build(b)).merge(self.build(c))
            right = self.build(a).merge(self.build(b).merge(self.build(c)))
            assert self.canonical(left) == self.canonical(right)

    def test_identity(self):
        rng = random.Random(333)
        events = self.stream(rng)
        expected = self.canonical(self.build(events))
        assert self.canonical(
            self.build(events).merge(MetricsRegistry())
        ) == expected
        assert self.canonical(
            MetricsRegistry().merge(self.build(events))
        ) == expected

    def test_split_invariant(self):
        rng = random.Random(444)
        for _ in range(TRIALS):
            events = self.stream(rng)
            expected = self.canonical(self.build(events))
            merged = MetricsRegistry()
            for part in random_split(events, rng, rng.randrange(2, 6)):
                merged.merge(self.build(part))
            assert self.canonical(merged) == expected

    def test_pickle_roundtrip(self):
        rng = random.Random(555)
        events = self.stream(rng)
        registry = self.build(events)
        assert self.canonical(roundtrip(registry)) == self.canonical(registry)
        left, right = random_split(events, rng, 2)
        merged = roundtrip(self.build(left)).merge(
            roundtrip(self.build(right))
        )
        assert self.canonical(merged) == self.canonical(self.build(events))

    def test_spans_concatenate_in_merge_order(self):
        left = MetricsRegistry()
        left.record_span({"name": "a"})
        right = MetricsRegistry()
        right.record_span({"name": "b"})
        merged = left.merge(right)
        assert [s["name"] for s in merged.spans] == ["a", "b"]
