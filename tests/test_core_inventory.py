"""Self-consistency tests for the experiment inventory."""

import importlib
from pathlib import Path

import pytest

from repro.core.inventory import EXPERIMENTS, experiments_by_kind

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestInventoryIntegrity:
    def test_ids_unique(self):
        ids = [exp.experiment_id for exp in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_every_benchmark_file_exists(self):
        for exp in EXPERIMENTS:
            assert (REPO_ROOT / exp.benchmark).is_file(), exp.benchmark

    def test_every_benchmark_file_is_indexed(self):
        indexed = {exp.benchmark for exp in EXPERIMENTS}
        on_disk = {
            f"benchmarks/{path.name}"
            for path in (REPO_ROOT / "benchmarks").glob("test_*.py")
        }
        assert on_disk == indexed

    def test_every_module_importable(self):
        for exp in EXPERIMENTS:
            for module in exp.modules:
                importlib.import_module(module)

    def test_kinds_valid(self):
        for exp in EXPERIMENTS:
            assert exp.kind in ("paper", "extension", "ablation", "performance")

    def test_paper_artifacts_cover_every_table_and_figure(self):
        references = " ".join(
            exp.paper_reference for exp in experiments_by_kind("paper")
        )
        for artifact in ("Figure 1", "Figure 3", "Figure 4", "Figure 5",
                         "Figure 6", "Table 2", "Table 3", "§4"):
            assert artifact in references, artifact

    def test_by_kind_partition(self):
        total = sum(
            len(experiments_by_kind(kind))
            for kind in ("paper", "extension", "ablation", "performance")
        )
        assert total == len(EXPERIMENTS)


class TestInventoryCli:
    def test_listing(self, capsys):
        from repro.cli import main

        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Experiment inventory" in out
        for exp_id in ("F1", "T3", "X1", "A5"):
            assert exp_id in out
