"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "long", "--requests", "123",
             "--out", "x.jsonl"]
        )
        assert args.command == "generate"
        assert args.dataset == "long"
        assert args.requests == 123

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--dataset", "medium"])

    @pytest.mark.parametrize(
        "command", ["characterize", "patterns", "windows", "paper", "replay",
                    "engine-bench"]
    )
    def test_engine_args_on_analysis_commands(self, command):
        args = build_parser().parse_args(
            [command, "--workers", "3", "--logs-dir", "parts/"]
        )
        assert args.workers == 3
        assert args.logs_dir == "parts/"

    def test_workers_default_serial(self):
        args = build_parser().parse_args(["characterize"])
        assert args.workers == 1
        assert args.logs_dir is None

    def test_engine_bench_defaults(self):
        args = build_parser().parse_args(["engine-bench"])
        assert args.workers == 4
        assert args.backend == "auto"

    def test_engine_bench_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine-bench", "--backend", "gpu"])

    def test_characterize_checkpoint_dir(self):
        args = build_parser().parse_args(
            ["characterize", "--checkpoint-dir", "ckpt/"]
        )
        assert args.checkpoint_dir == "ckpt/"

    def test_generate_has_no_engine_args(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--out", "x.jsonl", "--workers", "2"]
            )

    def test_zero_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--requests", "100", "--workers", "0"])

    def test_logs_and_logs_dir_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--logs", "a.jsonl", "--logs-dir", "b/"])


class TestCommands:
    def test_trend(self, capsys):
        assert main(["trend"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "growth over window" in out

    def test_generate_and_characterize(self, tmp_path, capsys):
        out_file = tmp_path / "logs.jsonl.gz"
        assert main(
            ["generate", "--requests", "2000", "--seed", "3",
             "--out", str(out_file)]
        ) == 0
        assert out_file.exists()
        capsys.readouterr()
        assert main(["characterize", "--logs", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Table 2" in out

    def test_characterize_generates_when_no_logs(self, capsys):
        assert main(
            ["characterize", "--requests", "2000", "--seed", "1"]
        ) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_windows_command(self, capsys):
        assert main(
            ["windows", "--requests", "2000", "--seed", "5", "--window", "120"]
        ) == 0
        out = capsys.readouterr().out
        assert "Traffic time series" in out
        assert "json:html" in out

    def test_validate_command(self, capsys):
        assert main(["validate", "--requests", "6000", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "calibration checks passed" in out
        assert "device share: mobile" in out

    def test_patterns_command_small(self, capsys):
        assert main(
            ["patterns", "--dataset", "long", "--requests", "3000",
             "--seed", "2", "--permutations", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "§5.1" in out
        assert "Table 3" in out

    def test_replay_command(self, capsys):
        assert main(
            ["replay", "--dataset", "long", "--requests", "2500",
             "--seed", "4", "--ttls", "60,600", "--edges", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "What-if TTL sweep" in out
        assert "ttl=60s" in out and "ttl=600s" in out

    def test_characterize_with_workers(self, capsys):
        assert main(
            ["characterize", "--requests", "2000", "--seed", "1",
             "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Table 2" in out

    def test_characterize_from_logs_dir(self, tmp_path, capsys):
        from repro.logs.partition import write_partitioned
        from repro.synth.workload import WorkloadBuilder, short_term_config

        dataset = WorkloadBuilder(short_term_config(1500, seed=6)).build()
        root = tmp_path / "parts"
        write_partitioned(dataset.logs, root)
        assert main(
            ["characterize", "--logs-dir", str(root), "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_engine_bench_smoke(self, capsys):
        assert main(
            ["engine-bench", "--requests", "1500", "--seed", "3",
             "--workers", "2", "--backend", "thread"]
        ) == 0
        out = capsys.readouterr().out
        assert "Engine benchmark" in out
        assert "counter metrics identical to serial: True" in out
        assert "HLL estimate" in out
