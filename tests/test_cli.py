"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "long", "--requests", "123",
             "--out", "x.jsonl"]
        )
        assert args.command == "generate"
        assert args.dataset == "long"
        assert args.requests == 123

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--dataset", "medium"])

    @pytest.mark.parametrize(
        "command", ["characterize", "patterns", "periodicity", "ngram",
                    "windows", "paper", "replay", "engine-bench"]
    )
    def test_engine_args_on_analysis_commands(self, command):
        args = build_parser().parse_args(
            [command, "--workers", "3", "--logs-dir", "parts/"]
        )
        assert args.workers == 3
        assert args.logs_dir == "parts/"

    @pytest.mark.parametrize(
        "command", ["characterize", "patterns", "periodicity", "ngram"]
    )
    def test_checkpoint_dir_on_engine_commands(self, command):
        args = build_parser().parse_args([command, "--checkpoint-dir", "ckpt/"])
        assert args.checkpoint_dir == "ckpt/"

    def test_periodicity_permutations_arg(self):
        args = build_parser().parse_args(["periodicity", "--permutations", "25"])
        assert args.permutations == 25

    def test_ngram_order_arg(self):
        args = build_parser().parse_args(["ngram", "--order", "2"])
        assert args.order == 2

    def test_engine_bench_pipeline_choices(self):
        args = build_parser().parse_args(["engine-bench", "--pipeline", "all"])
        assert args.pipeline == "all"
        assert build_parser().parse_args(["engine-bench"]).pipeline == (
            "characterization"
        )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine-bench", "--pipeline", "nope"])

    def test_workers_default_serial(self):
        args = build_parser().parse_args(["characterize"])
        assert args.workers == 1
        assert args.logs_dir is None

    def test_engine_bench_defaults(self):
        args = build_parser().parse_args(["engine-bench"])
        assert args.workers == 4
        assert args.backend == "auto"

    def test_engine_bench_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine-bench", "--backend", "gpu"])

    def test_characterize_checkpoint_dir(self):
        args = build_parser().parse_args(
            ["characterize", "--checkpoint-dir", "ckpt/"]
        )
        assert args.checkpoint_dir == "ckpt/"

    def test_generate_has_no_engine_args(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--out", "x.jsonl", "--workers", "2"]
            )

    def test_zero_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--requests", "100", "--workers", "0"])

    def test_logs_and_logs_dir_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--logs", "a.jsonl", "--logs-dir", "b/"])

    @pytest.mark.parametrize(
        "command", ["characterize", "patterns", "periodicity", "ngram"]
    )
    def test_hardening_flags_parse(self, command):
        args = build_parser().parse_args(
            [command, "--shard-timeout", "30", "--retries", "2", "--lenient"]
        )
        assert args.shard_timeout == 30.0
        assert args.retries == 2
        assert args.lenient is True

    def test_hardening_flags_default_off(self):
        args = build_parser().parse_args(["characterize"])
        assert args.shard_timeout is None
        assert args.retries == 0
        assert args.lenient is False

    def test_negative_retries_rejected(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--requests", "100", "--retries", "-1"])

    def test_nonpositive_shard_timeout_rejected(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--requests", "100", "--shard-timeout", "0"])


class TestCommands:
    def test_trend(self, capsys):
        assert main(["trend"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "growth over window" in out

    def test_generate_and_characterize(self, tmp_path, capsys):
        out_file = tmp_path / "logs.jsonl.gz"
        assert main(
            ["generate", "--requests", "2000", "--seed", "3",
             "--out", str(out_file)]
        ) == 0
        assert out_file.exists()
        capsys.readouterr()
        assert main(["characterize", "--logs", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Table 2" in out

    def test_characterize_generates_when_no_logs(self, capsys):
        assert main(
            ["characterize", "--requests", "2000", "--seed", "1"]
        ) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_lenient_skips_malformed_lines(self, tmp_path, capsys):
        out_file = tmp_path / "logs.jsonl"
        assert main(
            ["generate", "--requests", "1000", "--seed", "3",
             "--out", str(out_file)]
        ) == 0
        with open(out_file, "a", encoding="utf-8") as handle:
            handle.write('{"torn mid-write\n')
        capsys.readouterr()
        # Strict (default) ingest refuses the damaged file...
        with pytest.raises(ValueError, match="malformed JSONL"):
            main(["characterize", "--logs", str(out_file)])
        # ...lenient skips the bad line and analyzes the rest.
        assert main(
            ["characterize", "--logs", str(out_file), "--lenient"]
        ) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_windows_command(self, capsys):
        assert main(
            ["windows", "--requests", "2000", "--seed", "5", "--window", "120"]
        ) == 0
        out = capsys.readouterr().out
        assert "Traffic time series" in out
        assert "json:html" in out

    def test_validate_command(self, capsys):
        assert main(["validate", "--requests", "6000", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "calibration checks passed" in out
        assert "device share: mobile" in out

    def test_patterns_command_small(self, capsys):
        assert main(
            ["patterns", "--dataset", "long", "--requests", "3000",
             "--seed", "2", "--permutations", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "§5.1" in out
        assert "Table 3" in out

    def test_replay_command(self, capsys):
        assert main(
            ["replay", "--dataset", "long", "--requests", "2500",
             "--seed", "4", "--ttls", "60,600", "--edges", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "What-if TTL sweep" in out
        assert "ttl=60s" in out and "ttl=600s" in out

    def test_characterize_with_workers(self, capsys):
        assert main(
            ["characterize", "--requests", "2000", "--seed", "1",
             "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Table 2" in out

    def test_characterize_from_logs_dir(self, tmp_path, capsys):
        from repro.logs.partition import write_partitioned
        from repro.synth.workload import WorkloadBuilder, short_term_config

        dataset = WorkloadBuilder(short_term_config(1500, seed=6)).build()
        root = tmp_path / "parts"
        write_partitioned(dataset.logs, root)
        assert main(
            ["characterize", "--logs-dir", str(root), "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_engine_bench_smoke(self, capsys):
        assert main(
            ["engine-bench", "--requests", "1500", "--seed", "3",
             "--workers", "2", "--backend", "thread"]
        ) == 0
        out = capsys.readouterr().out
        assert "Engine benchmark" in out
        assert "characterization results identical to serial: True" in out
        assert "HLL estimate" in out

    def test_periodicity_command_small(self, capsys):
        assert main(
            ["periodicity", "--dataset", "long", "--requests", "3000",
             "--seed", "2", "--permutations", "10", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "§5.1 — periodicity" in out
        assert "periodic JSON requests" in out

    def test_periodicity_checkpoint_resume(self, tmp_path, capsys):
        argv = ["periodicity", "--dataset", "long", "--requests", "2500",
                "--seed", "2", "--permutations", "5",
                "--checkpoint-dir", str(tmp_path / "ckpt")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert (tmp_path / "ckpt" / "periodicity-flows").is_dir()
        assert (tmp_path / "ckpt" / "periodicity-detect").is_dir()

    def test_ngram_command_small(self, capsys):
        assert main(
            ["ngram", "--dataset", "long", "--requests", "3000",
             "--seed", "2", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "clustered" in out

    def test_patterns_with_workers_matches_serial(self, capsys):
        argv_tail = ["--dataset", "long", "--requests", "3000",
                     "--seed", "2", "--permutations", "10"]
        assert main(["patterns"] + argv_tail) == 0
        serial_out = capsys.readouterr().out
        assert main(["patterns", "--workers", "2"] + argv_tail) == 0
        assert capsys.readouterr().out == serial_out

    def test_engine_bench_ngram_pipeline(self, capsys):
        assert main(
            ["engine-bench", "--requests", "1500", "--seed", "3",
             "--workers", "2", "--backend", "thread",
             "--pipeline", "ngram"]
        ) == 0
        out = capsys.readouterr().out
        assert "ngram results identical to serial: True" in out
        assert "characterization" not in out
