"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "long", "--requests", "123",
             "--out", "x.jsonl"]
        )
        assert args.command == "generate"
        assert args.dataset == "long"
        assert args.requests == 123

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--dataset", "medium"])


class TestCommands:
    def test_trend(self, capsys):
        assert main(["trend"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "growth over window" in out

    def test_generate_and_characterize(self, tmp_path, capsys):
        out_file = tmp_path / "logs.jsonl.gz"
        assert main(
            ["generate", "--requests", "2000", "--seed", "3",
             "--out", str(out_file)]
        ) == 0
        assert out_file.exists()
        capsys.readouterr()
        assert main(["characterize", "--logs", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Table 2" in out

    def test_characterize_generates_when_no_logs(self, capsys):
        assert main(
            ["characterize", "--requests", "2000", "--seed", "1"]
        ) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_windows_command(self, capsys):
        assert main(
            ["windows", "--requests", "2000", "--seed", "5", "--window", "120"]
        ) == 0
        out = capsys.readouterr().out
        assert "Traffic time series" in out
        assert "json:html" in out

    def test_validate_command(self, capsys):
        assert main(["validate", "--requests", "6000", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "calibration checks passed" in out
        assert "device share: mobile" in out

    def test_patterns_command_small(self, capsys):
        assert main(
            ["patterns", "--dataset", "long", "--requests", "3000",
             "--seed", "2", "--permutations", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "§5.1" in out
        assert "Table 3" in out

    def test_replay_command(self, capsys):
        assert main(
            ["replay", "--dataset", "long", "--requests", "2500",
             "--seed", "4", "--ttls", "60,600", "--edges", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "What-if TTL sweep" in out
        assert "ttl=60s" in out and "ttl=600s" in out
