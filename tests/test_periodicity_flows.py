"""Unit tests for repro.periodicity.flows and .results."""

import numpy as np
import pytest

from repro.logs.record import CacheStatus, HttpMethod
from repro.periodicity.flows import FlowFilter, extract_flows
from repro.periodicity.results import analyze_flows, analyze_logs
from tests.conftest import make_log


def flow_logs(object_url, client, count, start=0.0, step=60.0, **overrides):
    """`count` requests from one client to one object, fixed spacing."""
    return [
        make_log(
            timestamp=start + i * step,
            url=object_url,
            client_ip_hash=client,
            **overrides,
        )
        for i in range(count)
    ]


class TestExtraction:
    def test_client_flow_below_threshold_dropped(self):
        logs = flow_logs("/api/v1/poll", "c1", count=5)
        assert extract_flows(logs) == {}

    def test_object_below_client_threshold_dropped(self):
        logs = []
        for i in range(5):  # only 5 clients with >=10 requests
            logs += flow_logs("/api/v1/poll", f"c{i}", count=12)
        assert extract_flows(logs) == {}

    def test_passing_flows_extracted(self):
        logs = []
        for i in range(10):
            logs += flow_logs("/api/v1/poll", f"c{i}", count=10)
        flows = extract_flows(logs)
        assert len(flows) == 1
        flow = next(iter(flows.values()))
        assert flow.client_count == 10
        assert flow.request_count == 100

    def test_custom_filter(self):
        logs = []
        for i in range(3):
            logs += flow_logs("/api/v1/poll", f"c{i}", count=4)
        flows = extract_flows(
            logs,
            FlowFilter(min_requests_per_client_flow=3, min_clients_per_object_flow=3),
        )
        assert len(flows) == 1

    def test_non_json_excluded_by_default(self):
        logs = []
        for i in range(10):
            logs += flow_logs("/page", f"c{i}", count=10, mime_type="text/html")
        assert extract_flows(logs) == {}

    def test_non_json_included_when_disabled(self):
        logs = []
        for i in range(10):
            logs += flow_logs("/page", f"c{i}", count=10, mime_type="text/html")
        flows = extract_flows(logs, FlowFilter(json_only=False))
        assert len(flows) == 1

    def test_timestamps_sorted_within_flow(self):
        logs = flow_logs("/api/v1/poll", "c1", count=10)[::-1]
        for i in range(9):
            logs += flow_logs("/api/v1/poll", f"x{i}", count=10)
        flows = extract_flows(logs)
        flow = next(iter(flows.values()))
        timestamps = flow.client_flows[
            [c for c in flow.client_flows if c.startswith("c1")][0]
        ].timestamps
        assert list(timestamps) == sorted(timestamps)

    def test_upload_and_uncacheable_counts(self):
        logs = flow_logs(
            "/api/v1/telemetry",
            "c1",
            count=10,
            method=HttpMethod.POST,
            request_bytes=64,
            cache_status=CacheStatus.NO_STORE,
            ttl_seconds=None,
        )
        for i in range(9):
            logs += flow_logs("/api/v1/telemetry", f"x{i}", count=10)
        flows = extract_flows(logs)
        flow = next(iter(flows.values()))
        client_flow = [
            cf for cid, cf in flow.client_flows.items() if cid.startswith("c1")
        ][0]
        assert client_flow.upload_count == 10
        assert client_flow.uncacheable_count == 10

    def test_merged_timestamps_sorted(self):
        logs = []
        for i in range(10):
            logs += flow_logs("/api/v1/poll", f"c{i}", count=10, start=float(i))
        flow = next(iter(extract_flows(logs).values()))
        merged = flow.merged_timestamps()
        assert merged.size == 100
        assert list(merged) == sorted(merged)


class TestAnalysis:
    def _periodic_logs(self, num_clients=10, period=60.0, count=20):
        logs = []
        rng = np.random.default_rng(3)
        for i in range(num_clients):
            phase = float(rng.uniform(0, period))
            for j in range(count):
                logs.append(
                    make_log(
                        timestamp=phase + j * period + float(rng.normal(0, 0.2)),
                        url="/api/v1/poll",
                        client_ip_hash=f"c{i}",
                    )
                )
        return logs

    def test_periodic_object_detected(self):
        report = analyze_logs(self._periodic_logs())
        assert len(report.objects) == 1
        outcome = next(iter(report.objects.values()))
        assert outcome.object_period is not None
        assert abs(outcome.object_period.period_s - 60.0) <= 1.5

    def test_all_clients_labeled_periodic(self):
        report = analyze_logs(self._periodic_logs())
        outcome = next(iter(report.objects.values()))
        assert outcome.periodic_client_share > 0.8

    def test_periodic_fraction_accounts_requests(self):
        logs = self._periodic_logs()
        report = analyze_logs(logs)
        assert report.total_json_requests == len(logs)
        assert report.periodic_request_fraction > 0.8

    def test_poisson_object_not_periodic(self):
        rng = np.random.default_rng(9)
        logs = []
        for i in range(10):
            for t in sorted(rng.uniform(0, 7200, 15)):
                logs.append(
                    make_log(
                        timestamp=float(t),
                        url="/api/v1/feed",
                        client_ip_hash=f"c{i}",
                    )
                )
        report = analyze_logs(logs)
        assert report.periodic_request_fraction < 0.2

    def test_histogram_buckets_periods(self):
        report = analyze_logs(self._periodic_logs())
        histogram = report.period_histogram(10.0)
        assert histogram
        assert histogram[0][0] == 60.0

    def test_share_cdf_monotonic(self):
        report = analyze_logs(self._periodic_logs())
        cdf = report.share_cdf()
        fractions = [fraction for _, fraction in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_upload_fraction_of_periodic_traffic(self):
        logs = []
        rng = np.random.default_rng(3)
        for i in range(10):
            phase = float(rng.uniform(0, 60))
            for j in range(20):
                logs.append(
                    make_log(
                        timestamp=phase + j * 60.0 + float(rng.normal(0, 0.2)),
                        url="/api/v1/events",
                        client_ip_hash=f"c{i}",
                        method=HttpMethod.POST,
                        request_bytes=10,
                    )
                )
        report = analyze_logs(logs)
        assert report.periodic_upload_fraction > 0.9

    def test_empty_logs(self):
        report = analyze_logs([])
        assert report.periodic_request_fraction == 0.0
        assert report.period_histogram() == []
        assert report.majority_periodic_fraction() == 0.0
