"""Unit tests for repro.logs.summary."""

import pytest

from repro.logs.record import CacheStatus, HttpMethod
from repro.logs.summary import DatasetSummary, summarize
from tests.conftest import make_log


@pytest.fixture
def summary():
    logs = [
        make_log(timestamp=100.0),
        make_log(
            timestamp=160.0,
            method=HttpMethod.POST,
            request_bytes=50,
            cache_status=CacheStatus.NO_STORE,
            ttl_seconds=None,
            mime_type="text/html",
            domain="b.example.com",
            client_ip_hash="other",
        ),
        make_log(timestamp=130.0, cache_status=CacheStatus.MISS, url="/api/v1/x"),
    ]
    return summarize(logs)


class TestCounts:
    def test_total_logs(self, summary):
        assert summary.total_logs == 3

    def test_duration_spans_min_to_max(self, summary):
        assert summary.duration_seconds == 60.0

    def test_domains_clients_objects(self, summary):
        assert summary.num_domains == 2
        assert summary.num_clients == 2
        assert summary.num_objects == 3

    def test_byte_totals(self, summary):
        assert summary.total_response_bytes == 3 * 2048
        assert summary.total_request_bytes == 50


class TestFractions:
    def test_json_fraction(self, summary):
        assert summary.json_fraction == pytest.approx(2 / 3)

    def test_get_fraction(self, summary):
        assert summary.get_fraction == pytest.approx(2 / 3)

    def test_uncacheable_fraction(self, summary):
        assert summary.uncacheable_fraction == pytest.approx(1 / 3)

    def test_hit_ratio_over_cacheable_only(self, summary):
        # 1 hit, 1 miss, 1 no-store → 0.5
        assert summary.hit_ratio == pytest.approx(0.5)


class TestEdgeCases:
    def test_empty_summary(self):
        empty = DatasetSummary()
        assert empty.total_logs == 0
        assert empty.duration_seconds == 0.0
        assert empty.json_fraction == 0.0
        assert empty.hit_ratio == 0.0

    def test_single_record_duration_zero(self):
        summary = summarize([make_log()])
        assert summary.duration_seconds == 0.0

    def test_update_returns_self_for_chaining(self):
        summary = DatasetSummary()
        assert summary.update([make_log()]) is summary

    def test_table_row_fields(self, summary):
        row = summary.to_table_row("short-term")
        assert row["dataset"] == "short-term"
        assert row["num_logs"] == 3
        assert row["num_domains"] == 2


class TestOnSyntheticDataset:
    def test_summary_matches_config(self, short_dataset):
        summary = summarize(short_dataset.logs)
        assert summary.total_logs == len(short_dataset.logs)
        assert summary.duration_seconds <= short_dataset.config.duration_s
        assert summary.num_domains <= short_dataset.config.num_domains

    def test_json_majority(self, short_dataset):
        summary = summarize(short_dataset.logs)
        assert summary.json_fraction > 0.4
